//! The replay environment against the live one: a store populated from a
//! live episode must replay the same seed to a bit-identical episode
//! (rewards, observations, done flags), and anything the store cannot
//! answer must fall through to the live compiler gracefully — an honest
//! miss, never an error.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use cg_core::Observation;
use cg_stdb::{StoreConfig, StoreSink, TransitionStore};

/// The global transition sink is process state; serialize the tests that
/// install one.
fn sink_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-replay-env-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One deterministic action schedule shared by the live and replay arms.
fn actions(seed: u64, n: usize, steps: usize) -> Vec<usize> {
    use cg_core::retry::splitmix64;
    (0..steps)
        .map(|s| (splitmix64(seed ^ (s as u64).wrapping_mul(0x9E37)) % n as u64) as usize)
        .collect()
}

struct EpisodeTrace {
    rewards: Vec<f64>,
    done: Vec<bool>,
    observations: Vec<Observation>,
    episode_reward: f64,
}

fn run(env: &mut cg_core::CompilerEnv, schedule: &[usize]) -> EpisodeTrace {
    env.reset().expect("reset");
    let mut trace = EpisodeTrace {
        rewards: Vec::new(),
        done: Vec::new(),
        observations: Vec::new(),
        episode_reward: 0.0,
    };
    for &a in schedule {
        let step = env.step(a).expect("step");
        trace.rewards.push(step.reward);
        trace.done.push(step.done);
        trace.observations.push(step.observation);
        if step.done {
            break;
        }
    }
    trace.episode_reward = env.episode_reward();
    trace
}

/// Same store, same seed ⇒ the replay environment reproduces the live
/// episode bit for bit: every step reward, every Autophase observation,
/// every done flag, and the episode total.
#[test]
fn replay_reproduces_live_episode_exactly() {
    let _guard = sink_lock().lock().unwrap();
    cg_stdb::install();
    let dir = fresh_dir("determinism");
    let benchmark = "benchmark://cbench-v1/qsort";

    // Live arm, with every transition flowing into the store.
    let store = TransitionStore::open_shared(&dir, StoreConfig::default()).expect("open store");
    cg_core::install_transition_sink(Arc::new(StoreSink(Arc::clone(&store))));
    let mut live = cg_core::make("llvm-v0").expect("live env");
    live.set_benchmark(benchmark);
    let schedule = actions(41, live.action_space().len(), 10);
    let live_trace = run(&mut live, &schedule);
    drop(live);
    store.flush();
    cg_core::clear_transition_sink();
    drop(store);

    // Replay arm over the same trajectory.
    let uri = format!("replay://llvm-v0?dir={}", dir.display());
    let mut replay = cg_core::make(&uri).expect("replay env");
    replay.set_benchmark(benchmark);
    let replay_trace = run(&mut replay, &schedule);
    drop(replay);

    assert_eq!(
        live_trace.rewards, replay_trace.rewards,
        "step rewards diverged"
    );
    assert_eq!(live_trace.done, replay_trace.done, "done flags diverged");
    assert_eq!(
        live_trace.observations, replay_trace.observations,
        "observations diverged"
    );
    assert!(
        (live_trace.episode_reward - replay_trace.episode_reward).abs() == 0.0,
        "episode reward diverged: live {} vs replay {}",
        live_trace.episode_reward,
        replay_trace.episode_reward
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store that has never seen the benchmark or the trajectory still
/// serves complete episodes: every miss falls through to the live
/// compiler, and the fall-through episode matches a purely live one.
#[test]
fn unseen_trajectories_fall_through_to_live() {
    let _guard = sink_lock().lock().unwrap();
    cg_stdb::install();
    cg_core::clear_transition_sink();
    let dir = fresh_dir("fallthrough");

    // Seed the store with one qsort trajectory only.
    let store = TransitionStore::open_shared(&dir, StoreConfig::default()).expect("open store");
    cg_core::install_transition_sink(Arc::new(StoreSink(Arc::clone(&store))));
    let mut live = cg_core::make("llvm-v0").expect("live env");
    live.set_benchmark("benchmark://cbench-v1/qsort");
    let seen = actions(41, live.action_space().len(), 6);
    run(&mut live, &seen);
    store.flush();
    cg_core::clear_transition_sink();

    // Reference episodes from a live environment, no sink.
    let unseen = actions(97, live.action_space().len(), 6);
    live.set_benchmark("benchmark://cbench-v1/sha");
    let live_other_bench = run(&mut live, &seen);
    live.set_benchmark("benchmark://cbench-v1/qsort");
    let live_other_actions = run(&mut live, &unseen);
    drop(live);
    drop(store);

    let uri = format!("replay://llvm-v0?dir={}", dir.display());
    let mut replay = cg_core::make(&uri).expect("replay env");

    // Unseen benchmark: init itself is a miss; the whole episode is live.
    replay.set_benchmark("benchmark://cbench-v1/sha");
    let via_fallthrough_bench = run(&mut replay, &seen);
    assert_eq!(
        live_other_bench.rewards, via_fallthrough_bench.rewards,
        "fall-through episode must match a live one"
    );

    // Seen benchmark, unseen actions: falls through mid-episode.
    replay.set_benchmark("benchmark://cbench-v1/qsort");
    let via_fallthrough_actions = run(&mut replay, &unseen);
    assert_eq!(
        live_other_actions.rewards, via_fallthrough_actions.rewards,
        "mid-episode fall-through must match a live episode"
    );
    drop(replay);
    let _ = std::fs::remove_dir_all(&dir);
}
