//! Crash-recovery properties of the transition store's WAL: damage a real
//! log at a random byte offset (truncation or a bit flip), reopen, and
//! prove the committed prefix survives, the damage is detected — torn
//! tails truncated, corrupt frames quarantined, never silently skipped —
//! and scrub's accounting agrees with recovery's.

use std::path::{Path, PathBuf};

use cg_stdb::{scrub_dir, StoreConfig, TransitionStore, WalConfig};

use proptest::prelude::*;

// The repo's IR dialect (numbered values, `bbN:` labels).
const IR_A: &str =
    "module \"t\"\ndefine i64 @f(i64 %0) {\nbb0:\n  %1 = add i64 %0, 1\n  ret %1\n}\n";
const IR_B: &str = "module \"t\"\ndefine i64 @f(i64 %0) {\nbb0:\n  ret %0\n}\n";

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-wal-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populates a store with a deterministic mix of resets, steps, and the
/// observations the writer derives from them, then closes it cleanly.
fn populate(dir: &Path, steps: u64) {
    let store = TransitionStore::open(dir, StoreConfig::default()).expect("open store");
    let mut from = store.log_reset("benchmark://cbench-v1/qsort", IR_A);
    for i in 0..steps {
        let ir = if i % 2 == 0 { IR_B } else { IR_A };
        from = store.log_step(
            "benchmark://cbench-v1/qsort",
            &[format!("-p{i}")],
            from,
            ir,
            1.0 + i as f64,
        );
    }
    store.flush();
    drop(store);
}

/// The only segment file in a single-segment store.
fn only_segment(dir: &Path) -> PathBuf {
    let segs = cg_stdb::log::list_segments(dir).expect("list segments");
    assert_eq!(segs.len(), 1, "test stores fit one segment");
    segs[0].1.clone()
}

/// Byte ranges `(start, end)` of every complete frame in a segment image,
/// walked with the on-disk layout: 8 bytes of magic, then
/// `[len u32 LE][crc u32 LE][payload]` frames.
fn frame_ranges(bytes: &[u8]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut off = 8u64;
    while off + 8 <= bytes.len() as u64 {
        let at = off as usize;
        let len = u64::from(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()));
        let end = off + 8 + len;
        if end > bytes.len() as u64 {
            break;
        }
        out.push((off, end));
        off = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Kill-mid-write, modeled as damage at a random byte offset. For any
    /// offset and either damage mode:
    ///   1. reopen succeeds and recovers at least every frame that ends
    ///      before the damage (the committed prefix),
    ///   2. lost data is *accounted* — a torn tail or a quarantined
    ///      frame, never a silent skip,
    ///   3. scrub agrees with recovery, and `scrub --repair` leaves a
    ///      store that verifies clean and reopens with exactly the
    ///      scrubbed record count.
    #[test]
    fn random_damage_recovers_committed_prefix(
        seed in 0u64..1_000_000,
        steps in 1u64..6,
        mode in 0usize..2,
    ) {
        let dir = fresh_dir(&format!("{seed}-{steps}-{mode}"));
        populate(&dir, steps);

        let segment = only_segment(&dir);
        let original = std::fs::read(&segment).expect("read segment");
        let frames = frame_ranges(&original);
        let total = frames.len() as u64;
        prop_assert!(total >= steps, "at least one frame per step");

        // Damage offset inside the frame region (never the magic).
        let file_len = original.len() as u64;
        let offset = 9 + seed % (file_len - 9);
        let damages_a_frame = frames.iter().any(|&(_, end)| end > offset);
        if mode == 0 {
            // Truncation: everything from `offset` on is gone.
            std::fs::OpenOptions::new()
                .write(true)
                .open(&segment)
                .expect("open segment")
                .set_len(offset)
                .expect("truncate");
        } else {
            // Bit flip: one byte of one frame is wrong.
            let mut bytes = original.clone();
            bytes[offset as usize] ^= 0x10;
            std::fs::write(&segment, &bytes).expect("write flipped segment");
        }
        let committed_prefix = frames.iter().filter(|&&(_, end)| end <= offset).count() as u64;

        // Reopen: recovery must keep the committed prefix and account for
        // every lost byte.
        let store = TransitionStore::open(&dir, StoreConfig::default()).expect("reopen");
        let recovery = store.recovery().clone();
        drop(store);
        prop_assert!(
            recovery.records >= committed_prefix,
            "committed prefix lost: recovered {} of {committed_prefix} pre-damage frames",
            recovery.records
        );
        prop_assert!(recovery.records <= total);
        if damages_a_frame {
            prop_assert!(
                recovery.torn_tails + recovery.quarantined >= 1,
                "damage at offset {offset} was silently skipped: {recovery:?}"
            );
        }

        // Scrub's view must match recovery's: same intact count, and any
        // in-place corrupt frames (bit-flip mode) re-detected.
        let verify = scrub_dir(&dir, &WalConfig::default(), false, None).expect("scrub");
        prop_assert_eq!(verify.records_ok, recovery.records);
        prop_assert_eq!(verify.torn_tails, 0, "reopen already truncated the tail");
        if mode == 1 && damages_a_frame {
            prop_assert!(verify.records_corrupt >= 1);
        }

        // Repair, then the store must verify clean and reopen with exactly
        // the surviving records.
        scrub_dir(&dir, &WalConfig::default(), true, None).expect("scrub --repair");
        let clean = scrub_dir(&dir, &WalConfig::default(), false, None).expect("verify");
        prop_assert!(clean.is_clean(), "store still dirty after repair: {clean:?}");
        let reopened = TransitionStore::open(&dir, StoreConfig::default()).expect("final reopen");
        prop_assert_eq!(reopened.recovery().records, clean.records_ok);
        prop_assert_eq!(reopened.recovery().quarantined, 0);
        prop_assert_eq!(reopened.recovery().torn_tails, 0);

        // And it still takes writes: the log is a log again.
        let before = clean.records_ok;
        reopened.log_reset("benchmark://cbench-v1/crc32", IR_A);
        reopened.flush();
        drop(reopened);
        let last = TransitionStore::open(&dir, StoreConfig::default()).expect("post-append reopen");
        prop_assert!(last.recovery().records > before);
        drop(last);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncating exactly at a frame boundary is a clean end, not a torn tail.
#[test]
fn truncation_at_frame_boundary_is_clean() {
    let dir = fresh_dir("boundary");
    populate(&dir, 3);
    let segment = only_segment(&dir);
    let bytes = std::fs::read(&segment).expect("read segment");
    let frames = frame_ranges(&bytes);
    assert!(frames.len() >= 2);
    let cut = frames[frames.len() - 2].1;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .expect("open")
        .set_len(cut)
        .expect("truncate");

    let store = TransitionStore::open(&dir, StoreConfig::default()).expect("reopen");
    assert_eq!(store.recovery().records, frames.len() as u64 - 1);
    assert_eq!(store.recovery().torn_tails, 0);
    assert_eq!(store.recovery().quarantined, 0);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
