//! The durable, self-verifying write-ahead log under the transition store.
//!
//! # On-disk format
//!
//! A log is a directory of segment files named `wal-<seq:08>.log`. Every
//! segment starts with the 8-byte magic `CGWALv1\n`, followed by a run of
//! length-prefixed, checksummed record frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE polynomial, the zlib/ethernet one) over the
//! payload bytes only. The frame header doubles as a *content address*: an
//! intact record elsewhere in the log with the same `(len, crc)` pair can
//! supply the payload for a corrupt copy — that is what makes
//! [`scrub`]-with-repair possible for deduplicated stores, which naturally
//! contain redundant copies of hot records.
//!
//! # Recovery ladder (applied at [`Wal::open`] and by [`scrub`])
//!
//! 1. **Transient read fault** — a scan that surfaces any anomaly is
//!    retried once with a fresh read; anomalies that vanish on re-read are
//!    counted (`transient_read_faults`) and otherwise ignored.
//! 2. **Torn tail** — a frame in the *last* segment that runs past EOF (or
//!    an implausible header at the tail) is an uncommitted append cut short
//!    by a crash: the file is truncated back to the last whole frame and
//!    the dropped bytes are counted (`torn_tails`, `torn_tail_bytes`).
//!    Truncation is the only mutation recovery performs.
//! 3. **Corrupt record** — a whole frame whose payload fails its CRC is
//!    *quarantined, never silently skipped*: the frame bytes are copied to
//!    `quarantine/seg<seq>-off<offset>.rec`, the counters advance, and the
//!    scan resyncs at the frame's claimed end. `scrub --repair` later
//!    excises quarantined frames (replacing them from redundant copies
//!    where the content address matches).
//! 4. **Unparseable region** — trailing bytes of a *non-last* segment that
//!    do not frame (mid-file truncation, magic damage) are quarantined as
//!    one span.
//!
//! # Durability
//!
//! [`FsyncPolicy`] decides when `fsync` runs: `EveryRecord` gives
//! crash-durability per append, `EveryN` amortizes, `Never` leaves
//! durability to the OS (still torn-tail-safe on process crash, not on
//! power loss). Segment rotation always syncs the finished segment.

use std::fs;
use std::fs::{File, OpenOptions};
use std::io;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cg_core::chaos::{IoFaultInjector, IoFaultKind};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CGWALv1\n";
/// Bytes of frame header preceding every payload.
pub const FRAME_HEADER: u64 = 8;

/// When the log calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never sync explicitly; the OS flushes on its own schedule.
    Never,
    /// Sync after every appended record (maximum durability).
    EveryRecord,
    /// Sync after every N appended records.
    EveryN(u32),
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one exceeds this.
    pub segment_bytes: u64,
    /// Reject (and treat as implausible during recovery) any record whose
    /// claimed length exceeds this.
    pub max_record_bytes: u64,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            segment_bytes: 8 << 20,
            max_record_bytes: 64 << 20,
            fsync: FsyncPolicy::EveryN(64),
        }
    }
}

/// What [`Wal::open`] found and did while recovering a log directory.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments: u64,
    /// Intact records recovered (CRC verified).
    pub records: u64,
    /// Payload bytes of intact records.
    pub record_bytes: u64,
    /// Torn tails truncated (at most one, in the last segment).
    pub torn_tails: u64,
    /// Bytes dropped by torn-tail truncation.
    pub torn_tail_bytes: u64,
    /// Corrupt frames / unparseable spans copied to `quarantine/`.
    pub quarantined: u64,
    /// Bytes quarantined.
    pub quarantined_bytes: u64,
    /// Anomalies that disappeared on re-read (rung 1 of the ladder).
    pub transient_read_faults: u64,
    /// Stale segments deleted because a compaction manifest superseded
    /// them (a crash between manifest write and segment deletion).
    pub stale_segments_removed: u64,
}

/// What [`scrub`] found (and, with `repair`, fixed).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ScrubReport {
    /// Segments scanned.
    pub segments: u64,
    /// Records whose CRC verified.
    pub records_ok: u64,
    /// Records whose CRC failed.
    pub records_corrupt: u64,
    /// Corrupt records rewritten from a redundant intact copy.
    pub repaired: u64,
    /// Corrupt frames excised to `quarantine/` (repair mode only).
    pub quarantined: u64,
    /// Torn tails found (truncated in repair mode).
    pub torn_tails: u64,
    /// Bytes in torn tails.
    pub torn_tail_bytes: u64,
    /// Anomalies healed by re-read.
    pub transient_read_faults: u64,
    /// Total payload bytes verified.
    pub bytes_verified: u64,
}

impl ScrubReport {
    /// True when every record verified and no tail was torn.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.records_corrupt == 0 && self.torn_tails == 0
    }
}

// CRC-32 (IEEE 802.3 polynomial 0xEDB88320, reflected), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Segment file name for a sequence number.
#[must_use]
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// Lists segment files in `dir`, sorted by sequence number.
///
/// # Errors
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// The compaction manifest: the set of segments that survive a compaction.
/// Written atomically (temp file + rename); at open, segments with a
/// sequence number at or below the manifest's maximum that are *not*
/// listed are stale leftovers of an interrupted compaction and are
/// deleted. Segments numbered above the manifest's maximum were appended
/// after the compaction and are always live.
const MANIFEST: &str = "MANIFEST";

/// Atomically records `live` as the surviving segment set.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_manifest(dir: &Path, live: &[String]) -> io::Result<()> {
    let mut body = String::from("{\"live\":[");
    for (i, name) in live.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(name);
        body.push('"');
    }
    body.push_str("]}");
    let tmp = dir.join(format!("{MANIFEST}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST))
}

fn read_manifest(dir: &Path) -> Option<Vec<String>> {
    let text = fs::read_to_string(dir.join(MANIFEST)).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    let arr = v.get("live")?.as_array()?;
    let mut names = Vec::new();
    for item in arr {
        names.push(item.as_str()?.to_string());
    }
    Some(names)
}

/// One frame found by a segment scan.
struct ScanRecord {
    /// Byte offset of the frame header within the segment.
    offset: u64,
    /// Claimed CRC from the header.
    crc: u32,
    /// Payload bytes (claimed length; may fail the CRC).
    payload: Vec<u8>,
    /// Whether the payload's CRC matched the claim.
    ok: bool,
}

struct ScanOutcome {
    records: Vec<ScanRecord>,
    /// Offset just past the last whole frame (valid truncation point).
    parse_end: u64,
    /// Bytes in the file when scanned.
    file_len: u64,
    /// True when bytes past `parse_end` exist but do not frame.
    torn: bool,
    /// True when the magic header itself was damaged or missing.
    bad_magic: bool,
}

impl ScanOutcome {
    fn has_anomaly(&self) -> bool {
        self.torn || self.bad_magic || self.records.iter().any(|r| !r.ok)
    }
}

fn scan_bytes(bytes: &[u8], max_record_bytes: u64) -> ScanOutcome {
    let file_len = bytes.len() as u64;
    if file_len < SEGMENT_MAGIC.len() as u64 || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return ScanOutcome {
            records: Vec::new(),
            parse_end: 0,
            file_len,
            torn: file_len > 0,
            bad_magic: true,
        };
    }
    let mut records = Vec::new();
    let mut off = SEGMENT_MAGIC.len() as u64;
    let mut torn = false;
    while off < file_len {
        if off + FRAME_HEADER > file_len {
            torn = true;
            break;
        }
        let at = off as usize;
        let len = u64::from(u32::from_le_bytes([
            bytes[at],
            bytes[at + 1],
            bytes[at + 2],
            bytes[at + 3],
        ]));
        let crc = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        if len > max_record_bytes || off + FRAME_HEADER + len > file_len {
            // Implausible or incomplete frame: everything from here on is
            // either a torn append (last segment) or damage (mid-file).
            torn = true;
            break;
        }
        let start = at + FRAME_HEADER as usize;
        let payload = bytes[start..start + len as usize].to_vec();
        let ok = crc32(&payload) == crc;
        records.push(ScanRecord {
            offset: off,
            crc,
            payload,
            ok,
        });
        off += FRAME_HEADER + len;
    }
    ScanOutcome {
        records,
        parse_end: off.min(file_len),
        file_len,
        torn,
        bad_magic: false,
    }
}

fn read_with_faults(path: &Path, injector: Option<&IoFaultInjector>) -> io::Result<Vec<u8>> {
    let mut bytes = fs::read(path)?;
    if let Some(inj) = injector {
        match inj.fault_for_read() {
            Some(IoFaultKind::ShortRead) => {
                let keep = inj.fault_offset(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
            Some(IoFaultKind::BitFlip) if !bytes.is_empty() => {
                let bit = inj.fault_offset(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            _ => {}
        }
    }
    Ok(bytes)
}

/// Scans a segment, retrying once with a trusted (fault-free) re-read when
/// the first pass surfaces an anomaly — rung 1 of the recovery ladder.
/// Returns the outcome plus how many anomalies re-reading healed.
fn scan_segment(
    path: &Path,
    max_record_bytes: u64,
    injector: Option<&IoFaultInjector>,
) -> io::Result<(ScanOutcome, u64)> {
    let first = scan_bytes(&read_with_faults(path, injector)?, max_record_bytes);
    if !first.has_anomaly() {
        return Ok((first, 0));
    }
    let second = scan_bytes(&fs::read(path)?, max_record_bytes);
    let healed = u64::from(!second.has_anomaly() || second.parse_end > first.parse_end);
    Ok((second, healed))
}

fn quarantine_span(
    dir: &Path,
    seq: u64,
    offset: u64,
    bytes: &[u8],
    report_count: &mut u64,
    report_bytes: &mut u64,
) -> io::Result<()> {
    let qdir = dir.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let name = qdir.join(format!("seg{seq:08}-off{offset}.rec"));
    if !name.exists() {
        fs::write(&name, bytes)?;
    }
    *report_count += 1;
    *report_bytes += bytes.len() as u64;
    Ok(())
}

/// An open, appendable write-ahead log.
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    file: File,
    seq: u64,
    offset: u64,
    unsynced: u32,
    injector: Option<IoFaultInjector>,
}

impl Wal {
    /// Opens (creating if needed) the log at `dir`, running recovery on
    /// every existing segment. Each intact record's payload is handed to
    /// `on_record` in log order; anomalies are truncated or quarantined
    /// per the recovery ladder and tallied in the returned report.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(
        dir: &Path,
        cfg: WalConfig,
        injector: Option<IoFaultInjector>,
        mut on_record: impl FnMut(&[u8]),
    ) -> io::Result<(Wal, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let mut report = RecoveryReport::default();

        // Honor an interrupted compaction: drop segments the manifest
        // superseded before the crash got around to deleting them.
        let mut segments = list_segments(dir)?;
        if let Some(live) = read_manifest(dir) {
            let max_live = live
                .iter()
                .filter_map(|n| parse_segment_seq(n))
                .max()
                .unwrap_or(0);
            segments.retain(|(seq, path)| {
                let name = segment_name(*seq);
                if *seq <= max_live && !live.contains(&name) {
                    if fs::remove_file(path).is_ok() {
                        report.stale_segments_removed += 1;
                    }
                    false
                } else {
                    true
                }
            });
        }

        let last_index = segments.len().saturating_sub(1);
        for (i, (seq, path)) in segments.iter().enumerate() {
            let is_last = i == last_index;
            let (outcome, healed) = scan_segment(path, cfg.max_record_bytes, injector.as_ref())?;
            report.segments += 1;
            report.transient_read_faults += healed;
            if outcome.bad_magic {
                // The segment header itself is damaged: preserve the bytes
                // and retire the file from the live set.
                let bytes = fs::read(path)?;
                quarantine_span(
                    dir,
                    *seq,
                    0,
                    &bytes,
                    &mut report.quarantined,
                    &mut report.quarantined_bytes,
                )?;
                if is_last {
                    // Reinitialize so appends can continue in place.
                    let mut f = File::create(path)?;
                    f.write_all(SEGMENT_MAGIC)?;
                    f.sync_all()?;
                }
                continue;
            }
            for rec in &outcome.records {
                if rec.ok {
                    report.records += 1;
                    report.record_bytes += rec.payload.len() as u64;
                    on_record(&rec.payload);
                } else {
                    let mut frame = Vec::with_capacity(FRAME_HEADER as usize + rec.payload.len());
                    frame.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
                    frame.extend_from_slice(&rec.crc.to_le_bytes());
                    frame.extend_from_slice(&rec.payload);
                    quarantine_span(
                        dir,
                        *seq,
                        rec.offset,
                        &frame,
                        &mut report.quarantined,
                        &mut report.quarantined_bytes,
                    )?;
                }
            }
            if outcome.torn {
                if is_last {
                    // Rung 2: an uncommitted append cut short — truncate.
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(outcome.parse_end)?;
                    f.sync_all()?;
                    report.torn_tails += 1;
                    report.torn_tail_bytes += outcome.file_len - outcome.parse_end;
                } else {
                    // Rung 4: mid-file damage — quarantine the span.
                    let bytes = fs::read(path)?;
                    let span = &bytes[outcome.parse_end.min(bytes.len() as u64) as usize..];
                    quarantine_span(
                        dir,
                        *seq,
                        outcome.parse_end,
                        span,
                        &mut report.quarantined,
                        &mut report.quarantined_bytes,
                    )?;
                }
            }
        }

        // Open (or create) the active segment: the highest sequence.
        let (seq, path) = match segments.last() {
            Some((seq, path)) => (*seq, path.clone()),
            None => {
                let seq = 1;
                let path = dir.join(segment_name(seq));
                let mut f = File::create(&path)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.sync_all()?;
                (seq, path)
            }
        };
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        let offset = file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                cfg,
                file,
                seq,
                offset,
                unsynced: 0,
                injector,
            },
            report,
        ))
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's sequence number.
    #[must_use]
    pub fn active_segment(&self) -> u64 {
        self.seq
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.seq += 1;
        let path = self.dir.join(segment_name(self.seq));
        let mut f = File::create(&path)?;
        f.write_all(SEGMENT_MAGIC)?;
        f.sync_all()?;
        self.file = OpenOptions::new().read(true).append(true).open(&path)?;
        self.offset = SEGMENT_MAGIC.len() as u64;
        self.unsynced = 0;
        Ok(())
    }

    /// Appends one record, returning the frame's byte size.
    ///
    /// # Errors
    /// * [`io::ErrorKind::InvalidInput`] — payload exceeds
    ///   `max_record_bytes`.
    /// * [`io::ErrorKind::Interrupted`] — a (chaos-injected) torn write
    ///   was detected and rolled back; the append may be retried.
    /// * [`io::ErrorKind::WriteZero`] — a (chaos-injected) `ENOSPC`; the
    ///   record was not written.
    /// * Anything else the filesystem reports.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        if payload.len() as u64 > self.cfg.max_record_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds max_record_bytes", payload.len()),
            ));
        }
        let frame_len = FRAME_HEADER + payload.len() as u64;
        if self.offset > SEGMENT_MAGIC.len() as u64
            && self.offset + frame_len > self.cfg.segment_bytes
        {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(frame_len as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        if let Some(inj) = &self.injector {
            match inj.fault_for_write() {
                Some(IoFaultKind::Enospc) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "chaos: no space left on device",
                    ));
                }
                Some(IoFaultKind::TornWrite) => {
                    // Land a partial frame (what a crash mid-write leaves),
                    // detect it (a short write is observable), and roll the
                    // segment back to the frame start so a retry is clean.
                    let cut = (inj.fault_offset(frame_len) as usize).min(frame.len());
                    self.file.write_all(&frame[..cut])?;
                    self.file.sync_data()?;
                    self.file.set_len(self.offset)?;
                    self.file.seek(SeekFrom::End(0))?;
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "chaos: torn write rolled back",
                    ));
                }
                _ => {}
            }
        }

        self.file.write_all(&frame)?;
        self.offset += frame_len;
        match self.cfg.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::EveryRecord => self.file.sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file.sync_data()?;
                    self.unsynced = 0;
                }
            }
        }
        Ok(frame_len)
    }

    /// Forces everything appended so far to disk.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.file.sync_all()
    }
}

/// Total bytes across all segment files in `dir`.
///
/// # Errors
/// Propagates directory-read failures.
pub fn dir_bytes(dir: &Path) -> io::Result<u64> {
    let mut total = 0;
    for (_, path) in list_segments(dir)? {
        total += fs::metadata(&path)?.len();
    }
    Ok(total)
}

/// Reads every intact record in `dir` in log order (no mutation, no
/// quarantine — a pure scan). Corrupt frames and torn tails are skipped
/// but counted in the returned `(corrupt, torn)` pair.
///
/// # Errors
/// Propagates I/O failures.
pub fn read_records(
    dir: &Path,
    cfg: &WalConfig,
    mut on_record: impl FnMut(&[u8]),
) -> io::Result<(u64, u64)> {
    let mut corrupt = 0;
    let mut torn = 0;
    for (_, path) in list_segments(dir)? {
        let outcome = scan_bytes(&fs::read(&path)?, cfg.max_record_bytes);
        for rec in &outcome.records {
            if rec.ok {
                on_record(&rec.payload);
            } else {
                corrupt += 1;
            }
        }
        if outcome.torn || outcome.bad_magic {
            torn += 1;
        }
    }
    Ok((corrupt, torn))
}

/// Verifies every checksum in the log; with `repair`, additionally
/// truncates torn tails, excises corrupt frames to `quarantine/`, and
/// rewrites any corrupt record whose `(len, crc)` content address matches
/// an intact copy elsewhere in the log. Repairs rewrite whole segments via
/// temp file + rename, so a crash mid-scrub never loses intact records.
///
/// Must not run concurrently with an appender on the same directory.
///
/// # Errors
/// Propagates I/O failures.
pub fn scrub(
    dir: &Path,
    cfg: &WalConfig,
    repair: bool,
    injector: Option<&IoFaultInjector>,
) -> io::Result<ScrubReport> {
    let mut report = ScrubReport::default();
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Ok(report);
    }

    // Pass 1: scan everything, indexing intact payloads by content
    // address so pass 2 can repair corrupt twins.
    let mut outcomes = Vec::new();
    let mut intact: std::collections::HashMap<(u32, u64), Vec<u8>> =
        std::collections::HashMap::new();
    for (seq, path) in &segments {
        let (outcome, healed) = scan_segment(path, cfg.max_record_bytes, injector)?;
        report.segments += 1;
        report.transient_read_faults += healed;
        for rec in &outcome.records {
            if rec.ok {
                report.records_ok += 1;
                report.bytes_verified += rec.payload.len() as u64;
                intact
                    .entry((rec.crc, rec.payload.len() as u64))
                    .or_insert_with(|| rec.payload.clone());
            } else {
                report.records_corrupt += 1;
            }
        }
        if outcome.torn || outcome.bad_magic {
            report.torn_tails += 1;
            report.torn_tail_bytes += outcome.file_len - outcome.parse_end;
        }
        outcomes.push((*seq, path.clone(), outcome));
    }
    if !repair {
        return Ok(report);
    }

    // Pass 2: rewrite damaged segments, repairing where the content
    // address has an intact twin and quarantining where it does not.
    for (seq, path, outcome) in &outcomes {
        if !outcome.has_anomaly() {
            continue;
        }
        let tmp = path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SEGMENT_MAGIC)?;
            for rec in &outcome.records {
                let payload: &[u8] = if rec.ok {
                    &rec.payload
                } else if let Some(twin) = intact.get(&(rec.crc, rec.payload.len() as u64)) {
                    report.repaired += 1;
                    twin
                } else {
                    let mut frame = Vec::with_capacity(FRAME_HEADER as usize + rec.payload.len());
                    frame.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
                    frame.extend_from_slice(&rec.crc.to_le_bytes());
                    frame.extend_from_slice(&rec.payload);
                    let mut n = 0;
                    let mut b = 0;
                    quarantine_span(dir, *seq, rec.offset, &frame, &mut n, &mut b)?;
                    report.quarantined += n;
                    continue;
                };
                f.write_all(&(payload.len() as u32).to_le_bytes())?;
                f.write_all(&crc32(payload).to_le_bytes())?;
                f.write_all(payload)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cg-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = tmpdir("round-trip");
        let payloads: Vec<Vec<u8>> = (0u32..50)
            .map(|i| format!("record-{i}").into_bytes())
            .collect();
        {
            let (mut wal, rep) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            assert_eq!(rep.records, 0);
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.flush().unwrap();
        }
        let mut seen = Vec::new();
        let (_, rep) =
            Wal::open(&dir, WalConfig::default(), None, |p| seen.push(p.to_vec())).unwrap();
        assert_eq!(rep.records, 50);
        assert_eq!(rep.torn_tails, 0);
        assert_eq!(rep.quarantined, 0);
        assert_eq!(seen, payloads);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_preserves_order() {
        let dir = tmpdir("rotation");
        let cfg = WalConfig {
            segment_bytes: 128,
            ..WalConfig::default()
        };
        {
            let (mut wal, _) = Wal::open(&dir, cfg, None, |_| {}).unwrap();
            for i in 0u32..40 {
                wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
            assert!(wal.active_segment() > 1, "should have rotated");
        }
        let mut seen = Vec::new();
        let (_, rep) = Wal::open(&dir, cfg, None, |p| seen.push(p.to_vec())).unwrap();
        assert!(rep.segments > 1);
        assert_eq!(seen.len(), 40);
        assert_eq!(seen[0], b"payload-0000");
        assert_eq!(seen[39], b"payload-0039");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_committed_prefix_survives() {
        let dir = tmpdir("torn-tail");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            for i in 0u32..10 {
                wal.append(format!("rec-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: lop 3 bytes off the tail.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let mut seen = Vec::new();
        let (_, rep) =
            Wal::open(&dir, WalConfig::default(), None, |p| seen.push(p.to_vec())).unwrap();
        assert_eq!(rep.records, 9);
        assert_eq!(rep.torn_tails, 1);
        assert!(rep.torn_tail_bytes > 0);
        assert_eq!(seen.len(), 9);
        // A third open sees a clean log.
        let (_, rep) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
        assert_eq!(rep.records, 9);
        assert_eq!(rep.torn_tails, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_quarantined_not_skipped() {
        let dir = tmpdir("quarantine");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            for i in 0u32..5 {
                wal.append(format!("record-number-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
        }
        // Flip a payload byte in the middle of the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let mut seen = 0;
        let (_, rep) = Wal::open(&dir, WalConfig::default(), None, |_| seen += 1).unwrap();
        assert_eq!(rep.quarantined, 1);
        assert_eq!(rep.records + rep.quarantined, 5);
        assert_eq!(seen, rep.records);
        assert!(dir.join("quarantine").read_dir().unwrap().count() == 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_detects_and_repairs_from_redundant_copy() {
        let dir = tmpdir("scrub-repair");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            // Two identical copies of the hot record, plus bystanders.
            wal.append(b"hot-record-payload").unwrap();
            wal.append(b"bystander-1").unwrap();
            wal.append(b"hot-record-payload").unwrap();
            wal.append(b"bystander-2").unwrap();
            wal.flush().unwrap();
        }
        // Corrupt the first copy's payload.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let off = SEGMENT_MAGIC.len() + FRAME_HEADER as usize + 2;
        bytes[off] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let rep = scrub(&dir, &WalConfig::default(), false, None).unwrap();
        assert_eq!(rep.records_corrupt, 1);
        assert_eq!(rep.records_ok, 3);
        assert!(!rep.is_clean());

        let rep = scrub(&dir, &WalConfig::default(), true, None).unwrap();
        assert_eq!(rep.repaired, 1);
        assert_eq!(rep.quarantined, 0);

        // Post-repair the log verifies clean with all four records.
        let rep = scrub(&dir, &WalConfig::default(), false, None).unwrap();
        assert!(rep.is_clean());
        assert_eq!(rep.records_ok, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_unrepairable_records() {
        let dir = tmpdir("scrub-excise");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            wal.append(b"one-of-a-kind").unwrap();
            wal.append(b"also-unique!!").unwrap();
            wal.flush().unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let off = SEGMENT_MAGIC.len() + FRAME_HEADER as usize + 1;
        bytes[off] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let rep = scrub(&dir, &WalConfig::default(), true, None).unwrap();
        assert_eq!(rep.records_corrupt, 1);
        assert_eq!(rep.repaired, 0);
        assert_eq!(rep.quarantined, 1);
        // The survivor still verifies; the corrupt frame is preserved.
        let rep = scrub(&dir, &WalConfig::default(), false, None).unwrap();
        assert!(rep.is_clean());
        assert_eq!(rep.records_ok, 1);
        assert_eq!(dir.join("quarantine").read_dir().unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_drops_stale_segments_at_open() {
        let dir = tmpdir("manifest");
        let cfg = WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        };
        {
            let (mut wal, _) = Wal::open(&dir, cfg, None, |_| {}).unwrap();
            for i in 0u32..30 {
                wal.append(format!("row-{i:04}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Pretend a compaction kept only the last segment but crashed
        // before deleting the others.
        let keep = segment_name(segments.last().unwrap().0);
        write_manifest(&dir, &[keep]).unwrap();
        let (_, rep) = Wal::open(&dir, cfg, None, |_| {}).unwrap();
        assert_eq!(rep.stale_segments_removed as usize, segments.len() - 1);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_write_rolls_back_and_enospc_is_typed() {
        let dir = tmpdir("chaos-write");
        let inj = cg_core::chaos::IoFaultPlan::seeded(11)
            .with_torn_write_prob(1.0)
            .with_max_faults(1)
            .injector();
        let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
        wal.injector = Some(inj);
        let err = wal.append(b"first-attempt-is-torn").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // Budget spent: the retry succeeds, and recovery sees one record.
        wal.append(b"first-attempt-is-torn").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let mut seen = 0;
        let (_, rep) = Wal::open(&dir, WalConfig::default(), None, |_| seen += 1).unwrap();
        assert_eq!((rep.records, seen), (1, 1));
        assert_eq!(rep.torn_tails, 0);

        let inj = cg_core::chaos::IoFaultPlan::seeded(12)
            .with_enospc_prob(1.0)
            .injector();
        let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
        wal.injector = Some(inj);
        let err = wal.append(b"no-room").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_faults_are_healed_by_reread() {
        let dir = tmpdir("transient-read");
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default(), None, |_| {}).unwrap();
            for i in 0u32..8 {
                wal.append(format!("stable-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
        }
        let inj = cg_core::chaos::IoFaultPlan::seeded(5)
            .with_bit_flip_prob(1.0)
            .with_short_read_prob(0.0)
            .injector();
        let rep = scrub(&dir, &WalConfig::default(), false, Some(&inj)).unwrap();
        // Every anomaly the injector produced vanished on re-read.
        assert!(rep.is_clean(), "{rep:?}");
        assert_eq!(rep.records_ok, 8);
        assert!(rep.transient_read_faults >= 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
