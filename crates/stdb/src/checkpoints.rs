//! Crash-safe disk persistence for session checkpoints.
//!
//! The in-memory [`CheckpointStore`] ring dies with the client process; a
//! [`DiskCheckpoints`] directory survives it. Every checkpoint mirrored
//! through [`DiskCheckpoints::sink`] is written with the temp-file+rename
//! protocol — serialize to `<name>.tmp`, `fsync`-free atomic
//! `rename` into place — so a crash mid-write leaves either the previous
//! complete file or a stray `.tmp`, never a torn checkpoint. Loading
//! ignores `.tmp` strays and skips unreadable files (a corrupt checkpoint
//! costs a longer replay, never an error).
//!
//! File names are content-addressed by `(benchmark, action_space, actions)`
//! — the triple that fully determines a deterministic session's state — so
//! re-writing the same checkpoint is idempotent and two episodes on the
//! same prefix share one file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cg_core::checkpoint::{Checkpoint, CheckpointSink, CheckpointStore};

/// A directory of persisted checkpoints.
#[derive(Debug, Clone)]
pub struct DiskCheckpoints {
    dir: PathBuf,
}

/// The deterministic file name for a checkpoint: content-addressed by the
/// state-determining triple, not by the state bytes (the triple implies
/// the state for a deterministic session).
fn file_name(c: &Checkpoint) -> String {
    let mut tag = format!("{}|{}", c.benchmark, c.action_space);
    for a in &c.actions {
        tag.push('|');
        tag.push_str(&a.to_string());
    }
    format!("checkpoint-{:016x}.json", cg_ir::fnv1a(tag.as_bytes()))
}

impl DiskCheckpoints {
    /// Opens (creating if absent) a checkpoint directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCheckpoints> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCheckpoints { dir })
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one checkpoint crash-safely (temp file + atomic rename).
    ///
    /// # Errors
    /// Propagates serialization and filesystem failures.
    pub fn write(&self, c: &Checkpoint) -> io::Result<PathBuf> {
        let path = self.dir.join(file_name(c));
        let tmp = path.with_extension("json.tmp");
        let json = serde_json::to_string(c)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(&tmp, json)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads every complete checkpoint in the directory, shallowest first
    /// (so seeding a bounded ring keeps the deepest). Strays (`.tmp` files
    /// from an interrupted write) and unreadable or torn files are skipped,
    /// not errors: a lost checkpoint only costs a longer replay.
    #[must_use]
    pub fn load_all(&self) -> Vec<Checkpoint> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<Checkpoint> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .filter_map(|p| {
                let text = fs::read_to_string(&p).ok()?;
                serde_json::from_str::<Checkpoint>(&text).ok()
            })
            .collect();
        out.sort_by_key(Checkpoint::depth);
        out
    }

    /// A [`CheckpointSink`] that mirrors every checkpoint into this
    /// directory. Write failures are swallowed (checkpointing must never
    /// fail the step that triggered it); the in-memory ring still has the
    /// checkpoint.
    #[must_use]
    pub fn sink(&self) -> CheckpointSink {
        let this = self.clone();
        Arc::new(move |c: &Checkpoint| {
            let _ = this.write(c);
        })
    }

    /// Builds a [`CheckpointStore`] that persists to this directory and is
    /// pre-seeded with every checkpoint already on disk — the one-call path
    /// for resuming after a process crash.
    #[must_use]
    pub fn store(&self, capacity: usize, interval: u64) -> CheckpointStore {
        let store = CheckpointStore::new(capacity, interval).with_sink(self.sink());
        for c in self.load_all() {
            // Re-writing through the sink is idempotent (same name, same
            // bytes), so seeding does not churn the directory.
            store.put(c);
        }
        store
    }

    /// Removes every persisted checkpoint (and stray temp files).
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let ext = path.extension().and_then(|x| x.to_str());
            if matches!(ext, Some("json" | "tmp")) {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(actions: &[usize]) -> Checkpoint {
        Checkpoint {
            benchmark: "benchmark://cbench-v1/qsort".into(),
            action_space: 0,
            actions: actions.to_vec(),
            state: actions.iter().map(|a| (*a as u8) ^ 0x5a).collect(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-stdb-ckpt-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let disk = DiskCheckpoints::open(tmpdir("roundtrip")).unwrap();
        disk.write(&ck(&[1, 2, 3])).unwrap();
        disk.write(&ck(&[1, 2, 3, 4, 5])).unwrap();
        let loaded = disk.load_all();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], ck(&[1, 2, 3]), "shallowest first");
        assert_eq!(loaded[1], ck(&[1, 2, 3, 4, 5]));
        disk.clear().unwrap();
        assert!(disk.load_all().is_empty());
    }

    #[test]
    fn rewrite_is_idempotent() {
        let disk = DiskCheckpoints::open(tmpdir("idempotent")).unwrap();
        let p1 = disk.write(&ck(&[7, 8])).unwrap();
        let p2 = disk.write(&ck(&[7, 8])).unwrap();
        assert_eq!(p1, p2, "same triple, same file");
        assert_eq!(disk.load_all().len(), 1);
    }

    #[test]
    fn torn_and_stray_files_are_skipped() {
        let disk = DiskCheckpoints::open(tmpdir("torn")).unwrap();
        disk.write(&ck(&[1])).unwrap();
        // A crash mid-write leaves a stray temp file...
        fs::write(disk.dir().join("checkpoint-dead.json.tmp"), "{\"trunc").unwrap();
        // ...and a torn .json (e.g. non-atomic copy) must not poison loads.
        fs::write(disk.dir().join("checkpoint-torn.json"), "{\"benchmark\":").unwrap();
        let loaded = disk.load_all();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], ck(&[1]));
    }

    #[test]
    fn store_is_seeded_from_disk_and_persists_new_checkpoints() {
        let dir = tmpdir("seed");
        {
            let disk = DiskCheckpoints::open(&dir).unwrap();
            let store = disk.store(8, 5);
            store.put(ck(&[1, 2, 3, 4, 5]));
        }
        // A fresh process: the ring is empty until seeded from disk.
        let disk = DiskCheckpoints::open(&dir).unwrap();
        let store = disk.store(8, 5);
        let hit = store.latest_matching("benchmark://cbench-v1/qsort", 0, &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(hit.unwrap().depth(), 5, "checkpoint survived the 'crash'");
        let _ = fs::remove_dir_all(&dir);
    }
}
