//! Crash-safe disk persistence for session checkpoints.
//!
//! The in-memory [`CheckpointStore`] ring dies with the client process; a
//! [`DiskCheckpoints`] directory survives it. Every checkpoint mirrored
//! through [`DiskCheckpoints::sink`] is written with the temp-file+rename
//! protocol — serialize to `<name>.tmp`, atomic `rename` into place (with
//! an opt-in `fsync` of the temp file first, see
//! [`DiskCheckpoints::with_fsync`]) — so a crash mid-write leaves either
//! the previous complete file or a stray `.tmp`, never a torn checkpoint.
//!
//! Each file carries a CRC-32 over its payload, **verified on every
//! load**. A file that fails verification is rejected with a typed reason
//! ([`CheckpointReject`]), renamed to `<name>.corrupt` (quarantined, never
//! silently skipped), counted in the [`LoadReport`] and in the
//! `cg_stdb_checkpoint_rejects_total` metric — and the caller falls back
//! to the in-memory ring / a longer replay, never an error.
//!
//! File names are content-addressed by `(benchmark, action_space, actions)`
//! — the triple that fully determines a deterministic session's state — so
//! re-writing the same checkpoint is idempotent and two episodes on the
//! same prefix share one file.

use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cg_core::checkpoint::{Checkpoint, CheckpointSink, CheckpointStore};

use crate::log::crc32;

/// A directory of persisted checkpoints.
#[derive(Debug, Clone)]
pub struct DiskCheckpoints {
    dir: PathBuf,
    fsync: bool,
}

/// The on-disk envelope: the checkpoint's JSON plus a CRC-32 over it.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointFile {
    crc: u32,
    payload: String,
}

/// Why a checkpoint file was rejected at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointReject {
    /// The envelope JSON did not parse (torn or foreign file).
    Torn(String),
    /// The payload's CRC-32 did not match the recorded one.
    Checksum {
        /// CRC recorded in the envelope.
        expected: u32,
        /// CRC of the payload as found.
        actual: u32,
    },
    /// The (checksum-valid) payload did not decode as a checkpoint.
    Payload(String),
}

impl std::fmt::Display for CheckpointReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointReject::Torn(e) => write!(f, "torn envelope: {e}"),
            CheckpointReject::Checksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: recorded {expected:#010x}, found {actual:#010x}"
                )
            }
            CheckpointReject::Payload(e) => write!(f, "bad payload: {e}"),
        }
    }
}

/// What a verified load found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Checkpoints that verified and decoded.
    pub loaded: u64,
    /// Files rejected (torn, checksum, or payload failures).
    pub rejected: u64,
    /// Rejected files renamed to `<name>.corrupt` for inspection.
    pub quarantined: u64,
}

/// The deterministic file name for a checkpoint: content-addressed by the
/// state-determining triple, not by the state bytes (the triple implies
/// the state for a deterministic session).
fn file_name(c: &Checkpoint) -> String {
    let mut tag = format!("{}|{}", c.benchmark, c.action_space);
    for a in &c.actions {
        tag.push('|');
        tag.push_str(&a.to_string());
    }
    format!("checkpoint-{:016x}.json", cg_ir::fnv1a(tag.as_bytes()))
}

impl DiskCheckpoints {
    /// Opens (creating if absent) a checkpoint directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCheckpoints> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCheckpoints { dir, fsync: false })
    }

    /// Enables (or disables) `fsync`-before-rename: the temp file is
    /// forced to disk before the atomic rename, so a *power loss* right
    /// after the rename cannot leave a named-but-empty file. Off by
    /// default — process crashes are already covered by rename atomicity,
    /// and the sync costs milliseconds per checkpoint.
    #[must_use]
    pub fn with_fsync(mut self, on: bool) -> DiskCheckpoints {
        self.fsync = on;
        self
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one checkpoint crash-safely: checksummed envelope, temp
    /// file, optional fsync, atomic rename.
    ///
    /// # Errors
    /// Propagates serialization and filesystem failures.
    pub fn write(&self, c: &Checkpoint) -> io::Result<PathBuf> {
        let path = self.dir.join(file_name(c));
        let tmp = path.with_extension("json.tmp");
        let payload = serde_json::to_string(c)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let envelope = CheckpointFile {
            crc: crc32(payload.as_bytes()),
            payload,
        };
        let json = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            if self.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads and verifies one checkpoint file.
    ///
    /// # Errors
    /// A typed [`CheckpointReject`] explaining what failed.
    pub fn load_file(path: &Path) -> Result<Checkpoint, CheckpointReject> {
        let text = fs::read_to_string(path).map_err(|e| CheckpointReject::Torn(e.to_string()))?;
        let envelope: CheckpointFile =
            serde_json::from_str(&text).map_err(|e| CheckpointReject::Torn(e.to_string()))?;
        let actual = crc32(envelope.payload.as_bytes());
        if actual != envelope.crc {
            return Err(CheckpointReject::Checksum {
                expected: envelope.crc,
                actual,
            });
        }
        serde_json::from_str(&envelope.payload)
            .map_err(|e| CheckpointReject::Payload(e.to_string()))
    }

    /// Loads every checkpoint in the directory, verifying checksums,
    /// shallowest first (so seeding a bounded ring keeps the deepest).
    /// Stray `.tmp` files from an interrupted write are ignored; files
    /// that fail verification are quarantined as `<name>.corrupt`,
    /// counted in the report and in `cg_stdb_checkpoint_rejects_total` —
    /// a lost checkpoint costs a longer replay, never an error.
    #[must_use]
    pub fn load_verified(&self) -> (Vec<Checkpoint>, LoadReport) {
        let mut report = LoadReport::default();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (Vec::new(), report);
        };
        let mut out = Vec::new();
        for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            match DiskCheckpoints::load_file(&path) {
                Ok(c) => {
                    report.loaded += 1;
                    out.push(c);
                }
                Err(_reject) => {
                    report.rejected += 1;
                    cg_telemetry::global().stdb.checkpoint_rejects.inc();
                    if fs::rename(&path, path.with_extension("json.corrupt")).is_ok() {
                        report.quarantined += 1;
                    }
                }
            }
        }
        out.sort_by_key(Checkpoint::depth);
        (out, report)
    }

    /// [`DiskCheckpoints::load_verified`] without the report.
    #[must_use]
    pub fn load_all(&self) -> Vec<Checkpoint> {
        self.load_verified().0
    }

    /// A [`CheckpointSink`] that mirrors every checkpoint into this
    /// directory. Write failures are swallowed (checkpointing must never
    /// fail the step that triggered it); the in-memory ring still has the
    /// checkpoint.
    #[must_use]
    pub fn sink(&self) -> CheckpointSink {
        let this = self.clone();
        Arc::new(move |c: &Checkpoint| {
            let _ = this.write(c);
        })
    }

    /// Builds a [`CheckpointStore`] that persists to this directory and is
    /// pre-seeded with every checkpoint already on disk — the one-call path
    /// for resuming after a process crash. Corrupt files are rejected and
    /// quarantined during seeding; the ring simply starts without them.
    #[must_use]
    pub fn store(&self, capacity: usize, interval: u64) -> CheckpointStore {
        let store = CheckpointStore::new(capacity, interval).with_sink(self.sink());
        for c in self.load_all() {
            // Re-writing through the sink is idempotent (same name, same
            // bytes), so seeding does not churn the directory.
            store.put(c);
        }
        store
    }

    /// Removes every persisted checkpoint (plus stray temp files and
    /// quarantined rejects).
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let ext = path.extension().and_then(|x| x.to_str());
            if matches!(ext, Some("json" | "tmp" | "corrupt")) {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(actions: &[usize]) -> Checkpoint {
        Checkpoint {
            benchmark: "benchmark://cbench-v1/qsort".into(),
            action_space: 0,
            actions: actions.to_vec(),
            state: actions.iter().map(|a| (*a as u8) ^ 0x5a).collect(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-stdb-ckpt-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let disk = DiskCheckpoints::open(tmpdir("roundtrip")).unwrap();
        disk.write(&ck(&[1, 2, 3])).unwrap();
        disk.write(&ck(&[1, 2, 3, 4, 5])).unwrap();
        let (loaded, report) = disk.load_verified();
        assert_eq!(
            report,
            LoadReport {
                loaded: 2,
                rejected: 0,
                quarantined: 0
            }
        );
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], ck(&[1, 2, 3]), "shallowest first");
        assert_eq!(loaded[1], ck(&[1, 2, 3, 4, 5]));
        disk.clear().unwrap();
        assert!(disk.load_all().is_empty());
    }

    #[test]
    fn rewrite_is_idempotent() {
        let disk = DiskCheckpoints::open(tmpdir("idempotent")).unwrap();
        let p1 = disk.write(&ck(&[7, 8])).unwrap();
        let p2 = disk.write(&ck(&[7, 8])).unwrap();
        assert_eq!(p1, p2, "same triple, same file");
        assert_eq!(disk.load_all().len(), 1);
    }

    #[test]
    fn fsync_mode_round_trips_too() {
        let disk = DiskCheckpoints::open(tmpdir("fsync"))
            .unwrap()
            .with_fsync(true);
        disk.write(&ck(&[9])).unwrap();
        assert_eq!(disk.load_all(), vec![ck(&[9])]);
    }

    #[test]
    fn torn_and_stray_files_are_rejected_and_quarantined() {
        let disk = DiskCheckpoints::open(tmpdir("torn")).unwrap();
        disk.write(&ck(&[1])).unwrap();
        // A crash mid-write leaves a stray temp file (ignored)...
        fs::write(disk.dir().join("checkpoint-dead.json.tmp"), "{\"trunc").unwrap();
        // ...and a torn .json (e.g. non-atomic copy) must be rejected,
        // quarantined, and counted — never silently skipped.
        fs::write(disk.dir().join("checkpoint-torn.json"), "{\"crc\":").unwrap();
        let (loaded, report) = disk.load_verified();
        assert_eq!(loaded, vec![ck(&[1])]);
        assert_eq!(
            report,
            LoadReport {
                loaded: 1,
                rejected: 1,
                quarantined: 1
            }
        );
        assert!(disk.dir().join("checkpoint-torn.json.corrupt").exists());
        // The quarantined file no longer triggers rejects on later loads.
        let (_, report) = disk.load_verified();
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn corrupted_checkpoint_is_typed_rejected_and_ring_falls_back() {
        let dir = tmpdir("corrupt");
        let shallow = ck(&[1, 2, 3]);
        let deep = ck(&[1, 2, 3, 4, 5]);
        let deep_path;
        {
            let disk = DiskCheckpoints::open(&dir).unwrap();
            disk.write(&shallow).unwrap();
            deep_path = disk.write(&deep).unwrap();
        }
        // Flip one payload byte inside the stored deep checkpoint.
        let mut text = fs::read(&deep_path).unwrap();
        let at = text.len() / 2;
        text[at] = text[at].wrapping_add(1);
        fs::write(&deep_path, &text).unwrap();

        // The rejection is typed: a checksum (or envelope) failure, never
        // a silently-absent checkpoint.
        let reject = DiskCheckpoints::load_file(&deep_path).unwrap_err();
        assert!(
            matches!(
                reject,
                CheckpointReject::Checksum { .. } | CheckpointReject::Torn(_)
            ),
            "{reject}"
        );

        // Seeding after the 'crash': the corrupt file is rejected and the
        // ring falls back to the intact shallower checkpoint.
        let disk = DiskCheckpoints::open(&dir).unwrap();
        let store = disk.store(8, 3);
        let hit = store
            .latest_matching("benchmark://cbench-v1/qsort", 0, &[1, 2, 3, 4, 5, 6])
            .expect("shallow checkpoint survives");
        assert_eq!(hit.depth(), 3, "fell back past the corrupt depth-5 file");
        assert!(deep_path.with_extension("json.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_seeded_from_disk_and_persists_new_checkpoints() {
        let dir = tmpdir("seed");
        {
            let disk = DiskCheckpoints::open(&dir).unwrap();
            let store = disk.store(8, 5);
            store.put(ck(&[1, 2, 3, 4, 5]));
        }
        // A fresh process: the ring is empty until seeded from disk.
        let disk = DiskCheckpoints::open(&dir).unwrap();
        let store = disk.store(8, 5);
        let hit = store.latest_matching("benchmark://cbench-v1/qsort", 0, &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(hit.unwrap().depth(), 5, "checkpoint survived the 'crash'");
        let _ = fs::remove_dir_all(&dir);
    }
}
