//! # cg-stdb: the state transition database (§III-F, Figure 4)
//!
//! A relational store of environment trajectories: a `Steps` table records
//! every action sequence and the hash of the state it reaches; an
//! `Observations` table stores representations per unique state; a
//! `StateTransitions` table encodes the deduplicated `(state, action) →
//! (state', reward)` edges. A wrapper environment populates `Steps` and
//! `Observations` asynchronously on every step; [`Database::post_process`]
//! fills `StateTransitions`. The paper releases a 50+ GB instance with >1M
//! states for offline learning; [`generate_database`] builds instances of
//! any size on demand, and §VII-F's cost model (Figure 8) trains from them.
//!
//! The [`checkpoints`] module is the durable half of session checkpointing:
//! a crash-safe (temp-file + rename) on-disk mirror of the in-memory
//! checkpoint ring, so episodes can resume across *process* crashes, not
//! just service-worker crashes.

pub mod checkpoints;
pub mod log;
pub mod replay;
pub mod store;

pub use log::{FsyncPolicy, RecoveryReport, ScrubReport, WalConfig};
pub use replay::{install, make_replay};
pub use store::{
    compact_dir, scrub_dir, Backpressure, CompactReport, StoreConfig, StoreSink, StoreStats,
    TransitionStore, WalRecord,
};

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One row of the `Steps` table: an action sequence on a benchmark and the
/// state (hash) it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRow {
    /// Benchmark URI.
    pub benchmark: String,
    /// The action-name sequence applied.
    pub actions: Vec<String>,
    /// Hash of the state before the last action.
    pub from_state: u64,
    /// Hash of the state after the last action.
    pub state: u64,
    /// Reward of the last action.
    pub reward: f64,
}

/// One row of the `Observations` table: representations of a unique state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationRow {
    /// The state hash (primary key).
    pub state: u64,
    /// Autophase features.
    pub autophase: Vec<i64>,
    /// InstCount features.
    pub inst_count: Vec<i64>,
    /// IR instruction count (the cost-model target).
    pub ir_instruction_count: f64,
    /// The serialized IR of the state (the paper's Observations table keeps
    /// multiple representations per state; the text lets consumers derive
    /// graph representations offline).
    pub ir_text: String,
}

/// One row of the `StateTransitions` table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransitionRow {
    /// Source state hash.
    pub from_state: u64,
    /// Action name.
    pub action: String,
    /// Destination state hash.
    pub to_state: u64,
    /// Reward in milli-units (fixed point, so the row is hashable).
    pub reward_milli: i64,
}

/// The in-memory database with JSON persistence.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Database {
    /// The `Steps` table.
    pub steps: Vec<StepRow>,
    /// The `Observations` table, keyed by state hash.
    pub observations: HashMap<u64, ObservationRow>,
    /// The `StateTransitions` table (after [`Database::post_process`]).
    pub transitions: Vec<TransitionRow>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Deduplicates steps and populates the `StateTransitions` table (the
    /// paper's post-processing script).
    pub fn post_process(&mut self) {
        let mut seen: HashSet<TransitionRow> = HashSet::new();
        for s in &self.steps {
            if let Some(action) = s.actions.last() {
                seen.insert(TransitionRow {
                    from_state: s.from_state,
                    action: action.clone(),
                    to_state: s.state,
                    reward_milli: (s.reward * 1000.0).round() as i64,
                });
            }
        }
        let mut v: Vec<TransitionRow> = seen.into_iter().collect();
        v.sort_by(|a, b| {
            (a.from_state, &a.action, a.to_state).cmp(&(b.from_state, &b.action, b.to_state))
        });
        self.transitions = v;
    }

    /// Number of unique states observed.
    pub fn unique_states(&self) -> usize {
        self.observations.len()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("database serializes")
    }

    /// Parses from JSON.
    ///
    /// # Errors
    /// Returns the serde error message.
    pub fn from_json(s: &str) -> Result<Database, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// One message on the logger's channel: steps and observations are
/// distinct rows in distinct tables, so they travel as distinct messages
/// (an observation is *not* a degenerate step).
#[derive(Debug, Clone)]
pub enum LogMessage {
    /// A `Steps` table row.
    Step(StepRow),
    /// An `Observations` table row.
    Observation(ObservationRow),
}

/// Asynchronously populates a shared [`Database`] from environment steps: a
/// writer thread drains a *bounded* channel so logging never blocks the
/// environment loop for long (the paper's wrapper "asynchronously
/// populates the Steps and Observations tables ... upon every step").
///
/// The queue is bounded; [`Backpressure`] picks the full-queue policy
/// (block, or drop-and-count). Every dropped message increments
/// [`AsyncLogger::dropped_records`] and the process-wide
/// `cg_stdb_dropped_records_total` counter — drops are never silent.
pub struct AsyncLogger {
    tx: Option<mpsc::SyncSender<LogMessage>>,
    handle: Option<std::thread::JoinHandle<()>>,
    db: Arc<Mutex<Database>>,
    dropped: Arc<std::sync::atomic::AtomicU64>,
    backpressure: Backpressure,
}

impl AsyncLogger {
    /// Default queue depth for [`AsyncLogger::new`].
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Starts the writer thread over a shared database with the default
    /// bounded queue and lossless (blocking) backpressure.
    pub fn new(db: Arc<Mutex<Database>>) -> AsyncLogger {
        AsyncLogger::with_capacity(db, AsyncLogger::DEFAULT_CAPACITY, Backpressure::Block)
    }

    /// Starts the writer with an explicit queue depth and full-queue
    /// policy.
    pub fn with_capacity(
        db: Arc<Mutex<Database>>,
        capacity: usize,
        backpressure: Backpressure,
    ) -> AsyncLogger {
        let (tx, rx) = mpsc::sync_channel::<LogMessage>(capacity.max(1));
        let db2 = Arc::clone(&db);
        let handle = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                let mut d = db2.lock();
                match msg {
                    LogMessage::Step(step) => d.steps.push(step),
                    LogMessage::Observation(o) => {
                        d.observations.entry(o.state).or_insert(o);
                    }
                }
            }
        });
        AsyncLogger {
            tx: Some(tx),
            handle: Some(handle),
            db,
            dropped: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            backpressure,
        }
    }

    fn enqueue(&self, msg: LogMessage) {
        let Some(tx) = &self.tx else {
            self.count_drop();
            return;
        };
        let lost = match self.backpressure {
            Backpressure::Block => tx.send(msg).is_err(),
            Backpressure::DropNewest => tx.try_send(msg).is_err(),
        };
        if lost {
            self.count_drop();
        }
    }

    fn count_drop(&self) {
        self.dropped
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        cg_telemetry::global().stdb.dropped_records.inc();
    }

    /// Enqueues one step row.
    pub fn log_step(&self, step: StepRow) {
        self.enqueue(LogMessage::Step(step));
    }

    /// Enqueues one observation row.
    pub fn log_observation(&self, obs: ObservationRow) {
        self.enqueue(LogMessage::Observation(obs));
    }

    /// Messages dropped by the full-queue policy so far.
    pub fn dropped_records(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flushes and stops the writer, returning the shared database handle.
    pub fn finish(mut self) -> Arc<Mutex<Database>> {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        Arc::clone(&self.db)
    }
}

impl Drop for AsyncLogger {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Generates a state-transition database by running seeded random
/// trajectories of `steps` actions over `benchmarks` (the process that
/// produced the paper's released instance, at configurable scale).
///
/// # Errors
/// Propagates environment failures.
pub fn generate_database(
    benchmarks: &[String],
    episodes_per_benchmark: usize,
    steps: usize,
    seed: u64,
) -> Result<Database, cg_core::CgError> {
    use rand::{Rng, SeedableRng};
    let db = Arc::new(Mutex::new(Database::new()));
    let logger = AsyncLogger::new(Arc::clone(&db));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut env = cg_core::make("llvm-v0")?;
    for bench in benchmarks {
        env.set_benchmark(bench);
        for _ in 0..episodes_per_benchmark {
            env.reset()?;
            let mut actions: Vec<String> = Vec::new();
            let mut prev_hash = state_hash(&mut env)?;
            log_observation(&mut env, prev_hash, &logger)?;
            for _ in 0..steps {
                let a = rng.gen_range(0..env.action_space().len());
                let name = env.action_space().actions[a].clone();
                let r = env.step(a)?;
                actions.push(name);
                let h = state_hash(&mut env)?;
                log_observation(&mut env, h, &logger)?;
                logger.log_step(StepRow {
                    benchmark: bench.clone(),
                    actions: actions.clone(),
                    from_state: prev_hash,
                    state: h,
                    reward: r.reward,
                });
                prev_hash = h;
            }
        }
    }
    let db = logger.finish();
    let mut out = db.lock().clone();
    out.post_process();
    Ok(out)
}

fn state_hash(env: &mut cg_core::CompilerEnv) -> Result<u64, cg_core::CgError> {
    let ir = env.observe("Ir")?;
    Ok(cg_ir::fnv1a(ir.as_text().unwrap_or("").as_bytes()))
}

fn log_observation(
    env: &mut cg_core::CompilerEnv,
    state: u64,
    logger: &AsyncLogger,
) -> Result<(), cg_core::CgError> {
    let autophase = env
        .observe("Autophase")?
        .as_int_vector()
        .unwrap_or(&[])
        .to_vec();
    let inst_count = env
        .observe("InstCount")?
        .as_int_vector()
        .unwrap_or(&[])
        .to_vec();
    let count = env
        .observe("IrInstructionCount")?
        .as_scalar()
        .unwrap_or(0.0);
    let ir_text = env.observe("Ir")?.as_text().unwrap_or("").to_string();
    logger.log_observation(ObservationRow {
        state,
        autophase,
        inst_count,
        ir_instruction_count: count,
        ir_text,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_and_post_process() {
        let db = generate_database(&["benchmark://cbench-v1/crc32".to_string()], 2, 5, 7).unwrap();
        assert!(db.unique_states() >= 2, "states: {}", db.unique_states());
        assert!(!db.transitions.is_empty());
        // Transitions are deduplicated.
        let set: HashSet<&TransitionRow> = db.transitions.iter().collect();
        assert_eq!(set.len(), db.transitions.len());
        // Every transition's endpoints have observations.
        for t in &db.transitions {
            assert!(db.observations.contains_key(&t.from_state));
            assert!(db.observations.contains_key(&t.to_state));
        }
    }

    #[test]
    fn json_round_trip() {
        let db = generate_database(&["benchmark://cbench-v1/sha".to_string()], 1, 3, 1).unwrap();
        let j = db.to_json();
        let back = Database::from_json(&j).unwrap();
        assert_eq!(back.steps.len(), db.steps.len());
        assert_eq!(back.unique_states(), db.unique_states());
    }

    fn step(i: u64) -> StepRow {
        StepRow {
            benchmark: "b".into(),
            actions: vec!["a".into()],
            from_state: i,
            state: i + 1,
            reward: 1.0,
        }
    }

    #[test]
    fn async_logger_is_lossless() {
        let db = Arc::new(Mutex::new(Database::new()));
        let logger = AsyncLogger::new(Arc::clone(&db));
        for i in 0..100 {
            logger.log_step(step(i));
            logger.log_observation(ObservationRow {
                state: i + 1,
                autophase: vec![1],
                inst_count: vec![2],
                ir_instruction_count: 3.0,
                ir_text: String::new(),
            });
        }
        assert_eq!(logger.dropped_records(), 0);
        let db = logger.finish();
        assert_eq!(db.lock().steps.len(), 100);
        assert_eq!(db.lock().observations.len(), 100);
    }

    #[test]
    fn async_logger_drop_newest_counts_drops() {
        let db = Arc::new(Mutex::new(Database::new()));
        // Stall the writer by holding the database lock while flooding a
        // 1-deep queue: overflow must drop and count, never block.
        let logger = AsyncLogger::with_capacity(Arc::clone(&db), 1, Backpressure::DropNewest);
        let sent = 500u64;
        {
            let _stall = db.lock();
            for i in 0..sent {
                logger.log_step(step(i));
            }
        }
        let dropped = logger.dropped_records();
        assert!(dropped > 0, "a 1-deep queue cannot absorb {sent} sends");
        let db = logger.finish();
        let kept = db.lock().steps.len() as u64;
        assert_eq!(kept + dropped, sent, "every message is kept or counted");
    }
}
