//! The durable transition store: a queryable index over the checksummed
//! write-ahead log of [`crate::log`].
//!
//! # Architecture
//!
//! Callers log transitions through [`TransitionStore::log_reset`] /
//! [`TransitionStore::log_step`]; the caller-side cost is a hash plus an
//! index insert plus an enqueue onto a *bounded* channel. A dedicated
//! writer thread owns the WAL and drains the queue: it encodes records,
//! appends them (retrying once after a rolled-back torn write), and runs
//! feature extraction (Autophase, InstCount, instruction count) for states
//! it has not seen before. The [`Backpressure`] policy decides what
//! happens when the queue is full: `Block` (lossless, applies backpressure
//! to the environment loop) or `DropNewest` (lossy, never blocks); every
//! dropped record is counted — nothing is lost silently.
//!
//! # Index
//!
//! Three maps, rebuilt from the log on open (recovery replays every intact
//! record through the same code path):
//!
//! * `initial`: benchmark → initial-state hash (episode starts),
//! * `edges`: `(state, action-name)` → `(state', reward)` — the paper's
//!   deduplicated `StateTransitions` table,
//! * `observations`: state → [`ObservationRow`] (the `Observations`
//!   table).
//!
//! # Maintenance
//!
//! [`scrub_dir`] verifies every checksum (optionally repairing from
//! redundant copies); [`compact_dir`] rewrites the log keeping one
//! canonical record per reset / edge / observation, committing crash-safely
//! via the manifest protocol (new segments first, manifest rename second,
//! stale deletion last — a crash at any point leaves a correct store).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use cg_core::chaos::IoFaultInjector;

use crate::log::{self, ScrubReport, Wal, WalConfig};
use crate::{ObservationRow, StepRow};

const TAG_RESET: u8 = b'R';
const TAG_STEP: u8 = b'S';
const TAG_OBS: u8 = b'O';

/// An episode start: the benchmark and the hash of its initial state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResetRow {
    /// Benchmark URI.
    pub benchmark: String,
    /// Hash of the initial state.
    pub state: u64,
}

/// One logical record in the write-ahead log.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// An episode start.
    Reset(ResetRow),
    /// One environment step.
    Step(StepRow),
    /// Representations of a unique state.
    Observation(ObservationRow),
}

/// Encodes a record as `[tag byte][JSON]`.
#[must_use]
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let (tag, body) = match rec {
        WalRecord::Reset(r) => (TAG_RESET, serde_json::to_string(r)),
        WalRecord::Step(s) => (TAG_STEP, serde_json::to_string(s)),
        WalRecord::Observation(o) => (TAG_OBS, serde_json::to_string(o)),
    };
    let body = body.expect("rows serialize");
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(tag);
    out.extend_from_slice(body.as_bytes());
    out
}

/// Decodes a `[tag byte][JSON]` payload.
///
/// # Errors
/// Returns a description of the framing or JSON problem.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let (&tag, body) = payload.split_first().ok_or("empty record")?;
    let body = std::str::from_utf8(body).map_err(|e| e.to_string())?;
    match tag {
        TAG_RESET => serde_json::from_str(body)
            .map(WalRecord::Reset)
            .map_err(|e| e.to_string()),
        TAG_STEP => serde_json::from_str(body)
            .map(WalRecord::Step)
            .map_err(|e| e.to_string()),
        TAG_OBS => serde_json::from_str(body)
            .map(WalRecord::Observation)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown record tag {other:#x}")),
    }
}

/// What a full ingest queue does to new records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the caller until the writer catches up (lossless).
    Block,
    /// Drop the new record and count it (never blocks).
    DropNewest,
}

/// Tuning knobs for a [`TransitionStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Write-ahead log settings.
    pub wal: WalConfig,
    /// Bounded ingest-queue depth.
    pub queue_capacity: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            wal: WalConfig::default(),
            queue_capacity: 4096,
            backpressure: Backpressure::Block,
        }
    }
}

#[derive(Debug, Default)]
struct Index {
    initial: HashMap<String, u64>,
    edges: HashMap<(u64, String), (u64, f64)>,
    observations: HashMap<u64, ObservationRow>,
    steps: u64,
}

fn apply_record(index: &mut Index, rec: WalRecord) {
    match rec {
        WalRecord::Reset(r) => {
            index.initial.insert(r.benchmark, r.state);
        }
        WalRecord::Step(s) => {
            index.steps += 1;
            if let Some(a) = s.actions.last() {
                index
                    .edges
                    .insert((s.from_state, a.clone()), (s.state, s.reward));
            }
        }
        WalRecord::Observation(o) => {
            index.observations.entry(o.state).or_insert(o);
        }
    }
}

fn extract_observation(state: u64, ir_text: &str) -> ObservationRow {
    match cg_ir::parser::parse_module(ir_text) {
        Ok(m) => ObservationRow {
            state,
            autophase: cg_llvm::observation::autophase(&m),
            inst_count: cg_llvm::observation::inst_count(&m),
            ir_instruction_count: cg_llvm::reward::ir_instruction_count(&m) as f64,
            ir_text: ir_text.to_string(),
        },
        // Non-LLVM text (or damage upstream of us): keep the raw text so
        // replay can still serve `Ir`, with empty derived features.
        Err(_) => ObservationRow {
            state,
            autophase: Vec::new(),
            inst_count: Vec::new(),
            ir_instruction_count: 0.0,
            ir_text: ir_text.to_string(),
        },
    }
}

enum Ingest {
    Append(WalRecord),
    Observe { state: u64, ir_text: String },
    Flush(mpsc::Sender<()>),
}

fn append_with_retry(wal: &mut Wal, payload: &[u8], dropped: &AtomicU64) {
    let stdb = &cg_telemetry::global().stdb;
    let t0 = Instant::now();
    for attempt in 0..2 {
        match wal.append(payload) {
            Ok(n) => {
                stdb.ingest_records.inc();
                stdb.ingest_bytes.add(n);
                stdb.append_wall.record_duration(t0.elapsed());
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt == 0 => {
                // A torn write was detected and rolled back in place; the
                // segment is clean again, so one retry is safe.
                stdb.append_retries.inc();
            }
            Err(_) => break,
        }
    }
    dropped.fetch_add(1, Ordering::Relaxed);
    stdb.dropped_records.inc();
}

fn writer_loop(
    mut wal: Wal,
    index: Arc<Mutex<Index>>,
    rx: mpsc::Receiver<Ingest>,
    dropped: Arc<AtomicU64>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Ingest::Append(rec) => append_with_retry(&mut wal, &encode_record(&rec), &dropped),
            Ingest::Observe { state, ir_text } => {
                if index.lock().observations.contains_key(&state) {
                    continue;
                }
                let row = extract_observation(state, &ir_text);
                index
                    .lock()
                    .observations
                    .entry(state)
                    .or_insert_with(|| row.clone());
                append_with_retry(
                    &mut wal,
                    &encode_record(&WalRecord::Observation(row)),
                    &dropped,
                );
            }
            Ingest::Flush(ack) => {
                let _ = wal.flush();
                update_size_gauges(wal.dir());
                let _ = ack.send(());
            }
        }
    }
    let _ = wal.flush();
    update_size_gauges(wal.dir());
}

fn update_size_gauges(dir: &Path) {
    let stdb = &cg_telemetry::global().stdb;
    if let Ok(segments) = log::list_segments(dir) {
        stdb.segments.set(segments.len() as i64);
    }
    if let Ok(bytes) = log::dir_bytes(dir) {
        stdb.store_bytes.set(bytes.min(i64::MAX as u64) as i64);
    }
}

/// Point-in-time store counters for `cg stdb stats` and `cg stats`.
#[derive(Debug, Clone, Serialize)]
pub struct StoreStats {
    /// Store directory.
    pub dir: String,
    /// Step records indexed.
    pub steps: u64,
    /// Deduplicated `(state, action) → (state', reward)` edges.
    pub edges: u64,
    /// Unique states with observations.
    pub observations: u64,
    /// Benchmarks with a recorded initial state.
    pub benchmarks: u64,
    /// Records dropped by backpressure or unrecoverable append errors.
    pub dropped_records: u64,
    /// Live segment files.
    pub segments: u64,
    /// Bytes across live segments.
    pub bytes: u64,
    /// Intact records recovered at open.
    pub recovered_records: u64,
    /// Torn tails truncated at open.
    pub torn_tails: u64,
    /// Corrupt frames quarantined at open.
    pub quarantined: u64,
    /// Checksum-valid records that failed to decode at open (counted,
    /// never silently skipped).
    pub decode_failures: u64,
}

/// The durable transition store. Cheap to share via [`Arc`]; one writer
/// thread per store. Dropping the store flushes and joins the writer.
pub struct TransitionStore {
    dir: PathBuf,
    index: Arc<Mutex<Index>>,
    tx: Mutex<Option<mpsc::SyncSender<Ingest>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    dropped: Arc<AtomicU64>,
    backpressure: Backpressure,
    recovery: log::RecoveryReport,
    decode_failures: u64,
}

impl TransitionStore {
    /// Opens (creating if needed) the store at `dir`, running WAL recovery
    /// and rebuilding the index from every intact record.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(dir: &Path, cfg: StoreConfig) -> io::Result<TransitionStore> {
        TransitionStore::open_with_faults(dir, cfg, None)
    }

    /// [`TransitionStore::open`] with a chaos fault injector threaded into
    /// the WAL's read and write paths.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open_with_faults(
        dir: &Path,
        cfg: StoreConfig,
        injector: Option<IoFaultInjector>,
    ) -> io::Result<TransitionStore> {
        let mut index = Index::default();
        let mut decode_failures = 0u64;
        let (wal, recovery) = Wal::open(dir, cfg.wal, injector, |payload| {
            match decode_record(payload) {
                Ok(rec) => apply_record(&mut index, rec),
                Err(_) => decode_failures += 1,
            }
        })?;
        let stdb = &cg_telemetry::global().stdb;
        stdb.torn_tails.add(recovery.torn_tails);
        stdb.quarantined_records.add(recovery.quarantined);
        update_size_gauges(dir);

        let index = Arc::new(Mutex::new(index));
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let handle = {
            let index = Arc::clone(&index);
            let dropped = Arc::clone(&dropped);
            std::thread::Builder::new()
                .name("stdb-writer".into())
                .spawn(move || writer_loop(wal, index, rx, dropped))
                .expect("spawn stdb writer")
        };
        Ok(TransitionStore {
            dir: dir.to_path_buf(),
            index,
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
            dropped,
            backpressure: cfg.backpressure,
            recovery,
            decode_failures,
        })
    }

    /// Opens the store at `dir` through a process-global registry, so two
    /// components (say, the sink and a replay environment) share one
    /// writer instead of racing on the same files.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open_shared(dir: &Path, cfg: StoreConfig) -> io::Result<Arc<TransitionStore>> {
        static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Weak<TransitionStore>>>> = OnceLock::new();
        fs::create_dir_all(dir)?;
        let key = fs::canonicalize(dir)?;
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = registry.lock();
        if let Some(live) = map.get(&key).and_then(Weak::upgrade) {
            return Ok(live);
        }
        let store = Arc::new(TransitionStore::open(dir, cfg)?);
        map.insert(key, Arc::downgrade(&store));
        Ok(store)
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found at open.
    #[must_use]
    pub fn recovery(&self) -> &log::RecoveryReport {
        &self.recovery
    }

    fn enqueue(&self, msg: Ingest) {
        let guard = self.tx.lock();
        let Some(tx) = guard.as_ref() else {
            self.count_drop();
            return;
        };
        match self.backpressure {
            Backpressure::Block => {
                if tx.send(msg).is_err() {
                    self.count_drop();
                }
            }
            Backpressure::DropNewest => {
                if tx.try_send(msg).is_err() {
                    self.count_drop();
                }
            }
        }
    }

    fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        cg_telemetry::global().stdb.dropped_records.inc();
    }

    /// Logs an episode start, returning the initial state's hash.
    pub fn log_reset(&self, benchmark: &str, ir_text: &str) -> u64 {
        let state = cg_ir::fnv1a(ir_text.as_bytes());
        self.index
            .lock()
            .initial
            .insert(benchmark.to_string(), state);
        self.enqueue(Ingest::Append(WalRecord::Reset(ResetRow {
            benchmark: benchmark.to_string(),
            state,
        })));
        self.observe_state(state, ir_text);
        state
    }

    /// Registers a state without an edge or reset marker (an environment
    /// resuming from a restored snapshot), returning its hash.
    pub fn log_state(&self, ir_text: &str) -> u64 {
        let state = cg_ir::fnv1a(ir_text.as_bytes());
        self.observe_state(state, ir_text);
        state
    }

    /// Logs one step, returning the destination state's hash.
    pub fn log_step(
        &self,
        benchmark: &str,
        action_history: &[String],
        from_state: u64,
        ir_text: &str,
        reward: f64,
    ) -> u64 {
        let state = cg_ir::fnv1a(ir_text.as_bytes());
        {
            let mut index = self.index.lock();
            index.steps += 1;
            if let Some(a) = action_history.last() {
                index.edges.insert((from_state, a.clone()), (state, reward));
            }
        }
        self.enqueue(Ingest::Append(WalRecord::Step(StepRow {
            benchmark: benchmark.to_string(),
            actions: action_history.to_vec(),
            from_state,
            state,
            reward,
        })));
        self.observe_state(state, ir_text);
        state
    }

    fn observe_state(&self, state: u64, ir_text: &str) {
        if self.index.lock().observations.contains_key(&state) {
            return;
        }
        self.enqueue(Ingest::Observe {
            state,
            ir_text: ir_text.to_string(),
        });
    }

    /// The recorded initial state for a benchmark.
    #[must_use]
    pub fn initial_state(&self, benchmark: &str) -> Option<u64> {
        self.index.lock().initial.get(benchmark).copied()
    }

    /// The recorded `(state', reward)` for taking `action` in `state`.
    #[must_use]
    pub fn transition(&self, state: u64, action: &str) -> Option<(u64, f64)> {
        self.index
            .lock()
            .edges
            .get(&(state, action.to_string()))
            .copied()
    }

    /// The stored observations of a state.
    #[must_use]
    pub fn observation(&self, state: u64) -> Option<ObservationRow> {
        self.index.lock().observations.get(&state).cloned()
    }

    /// Records dropped so far (backpressure + unrecoverable appends).
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Blocks until everything enqueued so far is on disk (fsync'd).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        {
            let guard = self.tx.lock();
            let Some(tx) = guard.as_ref() else { return };
            if tx.send(Ingest::Flush(ack_tx)).is_err() {
                return;
            }
        }
        let _ = ack_rx.recv();
    }

    /// Point-in-time counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let (steps, edges, observations, benchmarks) = {
            let index = self.index.lock();
            (
                index.steps,
                index.edges.len() as u64,
                index.observations.len() as u64,
                index.initial.len() as u64,
            )
        };
        StoreStats {
            dir: self.dir.display().to_string(),
            steps,
            edges,
            observations,
            benchmarks,
            dropped_records: self.dropped_records(),
            segments: log::list_segments(&self.dir)
                .map(|s| s.len() as u64)
                .unwrap_or(0),
            bytes: log::dir_bytes(&self.dir).unwrap_or(0),
            recovered_records: self.recovery.records,
            torn_tails: self.recovery.torn_tails,
            quarantined: self.recovery.quarantined,
            decode_failures: self.decode_failures,
        }
    }
}

impl Drop for TransitionStore {
    fn drop(&mut self) {
        self.tx.lock().take();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

/// Adapts a shared [`TransitionStore`] to the core's
/// [`cg_core::TransitionSink`] hook, so every environment evaluation in
/// the process flows into the log.
pub struct StoreSink(pub Arc<TransitionStore>);

impl cg_core::TransitionSink for StoreSink {
    fn record_reset(&self, benchmark: &str, ir_text: &str) -> u64 {
        self.0.log_reset(benchmark, ir_text)
    }

    fn record_state(&self, ir_text: &str) -> u64 {
        self.0.log_state(ir_text)
    }

    fn record_step(
        &self,
        benchmark: &str,
        action_history: &[String],
        from_state: u64,
        ir_text: &str,
        reward: f64,
    ) -> u64 {
        self.0
            .log_step(benchmark, action_history, from_state, ir_text, reward)
    }
}

/// Verifies every checksum in the store at `dir`; with `repair`, truncates
/// torn tails, excises unrepairable frames to `quarantine/`, and rewrites
/// corrupt records from redundant intact copies. Must not run while a
/// writer has the directory open.
///
/// # Errors
/// Propagates I/O failures.
pub fn scrub_dir(
    dir: &Path,
    cfg: &WalConfig,
    repair: bool,
    injector: Option<&IoFaultInjector>,
) -> io::Result<ScrubReport> {
    let rep = log::scrub(dir, cfg, repair, injector)?;
    let stdb = &cg_telemetry::global().stdb;
    stdb.scrub_ok.add(rep.records_ok);
    stdb.scrub_corrupt.add(rep.records_corrupt);
    stdb.scrub_repaired.add(rep.repaired);
    stdb.quarantined_records.add(rep.quarantined);
    update_size_gauges(dir);
    Ok(rep)
}

/// What [`compact_dir`] did.
#[derive(Debug, Clone, Serialize)]
pub struct CompactReport {
    /// Records before compaction.
    pub records_before: u64,
    /// Canonical records after compaction.
    pub records_after: u64,
    /// Segments before.
    pub segments_before: u64,
    /// Segments after.
    pub segments_after: u64,
    /// Bytes before.
    pub bytes_before: u64,
    /// Bytes after.
    pub bytes_after: u64,
    /// Corrupt frames skipped (run `scrub` first to repair them).
    pub corrupt_skipped: u64,
}

/// Rewrites the log keeping one canonical record per reset, per
/// `(state, action)` edge (last write wins), and per observed state.
/// Crash-safe: new segments are written and synced first, the manifest is
/// renamed into place second, and stale segments are deleted last — a
/// crash at any point leaves a store that opens correctly (duplicates are
/// idempotent under index rebuild). Must not run while a writer has the
/// directory open.
///
/// # Errors
/// Propagates I/O failures.
pub fn compact_dir(dir: &Path, cfg: &WalConfig) -> io::Result<CompactReport> {
    let segments = log::list_segments(dir)?;
    let segments_before = segments.len() as u64;
    let bytes_before = log::dir_bytes(dir)?;
    let max_seq = segments.last().map_or(0, |(seq, _)| *seq);

    let mut records_before = 0u64;
    let mut initial: HashMap<String, u64> = HashMap::new();
    let mut edges: HashMap<(u64, String), StepRow> = HashMap::new();
    let mut observations: HashMap<u64, ObservationRow> = HashMap::new();
    let (corrupt, _torn) = log::read_records(dir, cfg, |payload| {
        records_before += 1;
        match decode_record(payload) {
            Ok(WalRecord::Reset(r)) => {
                initial.insert(r.benchmark.clone(), r.state);
            }
            Ok(WalRecord::Step(s)) => {
                if let Some(a) = s.actions.last() {
                    // Canonical edge: keep the benchmark but trim the
                    // history to the edge's own action.
                    let key = (s.from_state, a.clone());
                    let row = StepRow {
                        benchmark: s.benchmark,
                        actions: vec![a.clone()],
                        from_state: s.from_state,
                        state: s.state,
                        reward: s.reward,
                    };
                    edges.insert(key, row);
                }
            }
            Ok(WalRecord::Observation(o)) => {
                observations.entry(o.state).or_insert(o);
            }
            Err(_) => {}
        }
    })?;

    // Deterministic output order: resets, then edges, then observations,
    // each sorted by key.
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut resets: Vec<(&String, &u64)> = initial.iter().collect();
    resets.sort();
    for (benchmark, state) in resets {
        payloads.push(encode_record(&WalRecord::Reset(ResetRow {
            benchmark: benchmark.clone(),
            state: *state,
        })));
    }
    let mut edge_keys: Vec<&(u64, String)> = edges.keys().collect();
    edge_keys.sort();
    for key in edge_keys {
        payloads.push(encode_record(&WalRecord::Step(edges[key].clone())));
    }
    let mut states: Vec<&u64> = observations.keys().collect();
    states.sort();
    for s in states {
        payloads.push(encode_record(&WalRecord::Observation(
            observations[s].clone(),
        )));
    }
    let records_after = payloads.len() as u64;

    // Phase 1: write the compacted segments above every existing seq.
    let mut live_names = Vec::new();
    let mut seq = max_seq + 1;
    let mut frame_buf: Vec<u8> = log::SEGMENT_MAGIC.to_vec();
    let flush_segment = |seq: u64, buf: &mut Vec<u8>| -> io::Result<String> {
        use std::io::Write;
        let name = log::segment_name(seq);
        let tmp = dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, dir.join(&name))?;
        buf.clear();
        buf.extend_from_slice(log::SEGMENT_MAGIC);
        Ok(name)
    };
    for payload in &payloads {
        let frame_len = log::FRAME_HEADER as usize + payload.len();
        if frame_buf.len() > log::SEGMENT_MAGIC.len()
            && (frame_buf.len() + frame_len) as u64 > cfg.segment_bytes
        {
            live_names.push(flush_segment(seq, &mut frame_buf)?);
            seq += 1;
        }
        frame_buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame_buf.extend_from_slice(&log::crc32(payload).to_le_bytes());
        frame_buf.extend_from_slice(payload);
    }
    live_names.push(flush_segment(seq, &mut frame_buf)?);

    // Phase 2: commit — the manifest rename is the atomic switch-over.
    log::write_manifest(dir, &live_names)?;

    // Phase 3: delete superseded segments (recovery redoes this if we
    // crash here).
    for (seq, path) in &segments {
        if !live_names.contains(&log::segment_name(*seq)) {
            let _ = fs::remove_file(path);
        }
    }

    cg_telemetry::global().stdb.compactions.inc();
    update_size_gauges(dir);
    Ok(CompactReport {
        records_before,
        records_after,
        segments_before,
        segments_after: live_names.len() as u64,
        bytes_before,
        bytes_after: log::dir_bytes(dir)?,
        corrupt_skipped: corrupt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cg-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    const IR_A: &str =
        "module \"t\"\ndefine i64 @f(i64 %0) {\nbb0:\n  %1 = add i64 %0, 1\n  ret %1\n}\n";
    const IR_B: &str = "module \"t\"\ndefine i64 @f(i64 %0) {\nbb0:\n  ret %0\n}\n";

    #[test]
    fn record_codec_round_trips() {
        let rows = vec![
            WalRecord::Reset(ResetRow {
                benchmark: "benchmark://b/1".into(),
                state: 42,
            }),
            WalRecord::Step(StepRow {
                benchmark: "benchmark://b/1".into(),
                actions: vec!["mem2reg".into(), "dce".into()],
                from_state: 42,
                state: 43,
                reward: 1.5,
            }),
            WalRecord::Observation(ObservationRow {
                state: 43,
                autophase: vec![1, 2, 3],
                inst_count: vec![4, 5],
                ir_instruction_count: 9.0,
                ir_text: "define void @g() {\nentry:\n  ret void\n}\n".into(),
            }),
        ];
        for rec in rows {
            let enc = encode_record(&rec);
            match (rec, decode_record(&enc).unwrap()) {
                (WalRecord::Reset(a), WalRecord::Reset(b)) => assert_eq!(a, b),
                (WalRecord::Step(a), WalRecord::Step(b)) => assert_eq!(a, b),
                (WalRecord::Observation(a), WalRecord::Observation(b)) => assert_eq!(a, b),
                _ => panic!("tag changed in flight"),
            }
        }
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(b"Xjunk").is_err());
    }

    #[test]
    fn log_reopen_preserves_index() {
        let dir = tmpdir("reopen");
        let a;
        let b;
        {
            let store = TransitionStore::open(&dir, StoreConfig::default()).unwrap();
            a = store.log_reset("benchmark://b/1", IR_A);
            b = store.log_step("benchmark://b/1", &["simplifycfg".into()], a, IR_B, 2.0);
            store.flush();
            assert_eq!(store.stats().steps, 1);
            assert_eq!(store.dropped_records(), 0);
        }
        let store = TransitionStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.initial_state("benchmark://b/1"), Some(a));
        assert_eq!(store.transition(a, "simplifycfg"), Some((b, 2.0)));
        let obs = store.observation(b).unwrap();
        assert_eq!(obs.ir_text, IR_B);
        assert!(obs.ir_instruction_count > 0.0);
        assert!(!obs.autophase.is_empty());
        let stats = store.stats();
        assert_eq!(stats.recovered_records, 4); // reset + step + 2 observations
        assert_eq!(stats.observations, 2);
        assert_eq!(stats.edges, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_newest_counts_instead_of_blocking() {
        let dir = tmpdir("backpressure");
        let cfg = StoreConfig {
            queue_capacity: 1,
            backpressure: Backpressure::DropNewest,
            ..StoreConfig::default()
        };
        let store = TransitionStore::open(&dir, cfg).unwrap();
        // Hammer the 1-deep queue; some records must drop, all drops must
        // be counted, and nothing may block.
        for i in 0..200u64 {
            let ir = format!("define void @f{i}() {{\nentry:\n  ret void\n}}\n");
            store.log_step("benchmark://b/1", &["a".into()], i, &ir, 0.0);
        }
        store.flush();
        let persisted = cg_telemetry::global().stdb.ingest_records.get();
        let _ = persisted;
        // The in-memory index is always complete (it is updated
        // synchronously); only WAL persistence is lossy under DropNewest.
        assert_eq!(store.stats().steps, 200);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_dedupes_and_survives_reopen() {
        let dir = tmpdir("compact");
        let a;
        let b;
        {
            let store = TransitionStore::open(&dir, StoreConfig::default()).unwrap();
            a = store.log_reset("benchmark://b/1", IR_A);
            b = store.log_step("benchmark://b/1", &["dce".into()], a, IR_B, 1.0);
            // The same edge logged many times over.
            for _ in 0..50 {
                store.log_step("benchmark://b/1", &["dce".into()], a, IR_B, 1.0);
                store.log_reset("benchmark://b/1", IR_A);
            }
            store.flush();
        }
        let rep = compact_dir(&dir, &WalConfig::default()).unwrap();
        assert!(rep.records_before > rep.records_after, "{rep:?}");
        assert_eq!(rep.corrupt_skipped, 0);
        // 1 reset + 1 edge + 2 observations.
        assert_eq!(rep.records_after, 4);
        assert!(rep.bytes_after < rep.bytes_before);

        let store = TransitionStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.initial_state("benchmark://b/1"), Some(a));
        assert_eq!(store.transition(a, "dce"), Some((b, 1.0)));
        assert!(store.observation(a).is_some());
        assert!(store.observation(b).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_shared_returns_one_instance_per_dir() {
        let dir = tmpdir("shared");
        let s1 = TransitionStore::open_shared(&dir, StoreConfig::default()).unwrap();
        let s2 = TransitionStore::open_shared(&dir, StoreConfig::default()).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        let _ = fs::remove_dir_all(&dir);
    }
}
