//! The replay environment: `make("replay://llvm-v0?dir=...")` answers
//! resets, steps, and observations from a [`TransitionStore`] at zero
//! compiler cost, falling back to the live compiler *gracefully* when the
//! store cannot answer.
//!
//! # Fall-through semantics
//!
//! A missing benchmark, a missing `(state, action)` edge, a missing or
//! feature-less observation — none of these is an error. The session
//! counts the miss (`cg_stdb_replay_misses_total`), emits a `stdb:miss`
//! trace span, spins up a live session of the inner environment, replays
//! the episode's action history onto it, and keeps serving from the
//! compiler for the rest of the episode — writing every live transition
//! back through the store so the *next* episode over this trajectory is a
//! hit. Served requests count as hits; requests answered by the live
//! compiler (including everything after a fall-through) count as misses,
//! so the hit rate honestly reflects how much compiler time the store
//! saved.
//!
//! # URI form
//!
//! `replay://<inner-env>?dir=<store-dir>[&benchmark=..][&obs=..][&reward=..]`
//!
//! The inner environment must be an LLVM backend (the store's features are
//! LLVM-derived). The replay environment itself never feeds the global
//! transition sink (it would re-log what it just read); it writes through
//! its own store handle on the live path instead.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cg_core::service::SessionFactory;
use cg_core::session::{ActionOutcome, CompilationSession};
use cg_core::space::{ActionSpaceInfo, Observation, ObservationSpaceInfo, RewardSpaceInfo};
use cg_core::{CgError, CompilerEnv};

use crate::store::{StoreConfig, TransitionStore};

/// Registers the `replay://` scheme with the core's environment registry,
/// so `cg_core::make("replay://...")` resolves to [`make_replay`]. Safe to
/// call more than once.
pub fn install() {
    cg_core::register_env_scheme("replay", Arc::new(|uri: &str| make_replay(uri)));
}

struct ReplayUri {
    inner: String,
    dir: PathBuf,
    benchmark: String,
    observation_space: String,
    reward_space: String,
}

fn parse_replay_uri(uri: &str) -> Result<ReplayUri, String> {
    let rest = uri
        .strip_prefix("replay://")
        .ok_or("replay URI must start with replay://")?;
    let (inner, query) = rest
        .split_once('?')
        .ok_or("replay URI needs a query: replay://<env>?dir=<store>")?;
    if !inner.starts_with("llvm") {
        return Err(format!(
            "replay:// supports LLVM backends (the store's features are \
             LLVM-derived), got `{inner}`"
        ));
    }
    let mut dir = None;
    let mut benchmark = "benchmark://cbench-v1/qsort".to_string();
    let mut observation_space = "Autophase".to_string();
    let mut reward_space = "IrInstructionCount".to_string();
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        match k {
            "dir" => dir = Some(PathBuf::from(v)),
            "benchmark" => benchmark = v.to_string(),
            "obs" => observation_space = v.to_string(),
            "reward" => reward_space = v.to_string(),
            other => return Err(format!("unknown replay query key `{other}`")),
        }
    }
    Ok(ReplayUri {
        inner: inner.to_string(),
        dir: dir.ok_or("replay URI needs dir=<store directory>")?,
        benchmark,
        observation_space,
        reward_space,
    })
}

/// Builds a replay environment from a `replay://` URI (see the module
/// docs for the form). The store is opened through the shared registry,
/// so a sink writing to the same directory shares the writer.
///
/// # Errors
/// Bad URIs, unknown inner environments, store I/O failures.
pub fn make_replay(uri: &str) -> Result<CompilerEnv, CgError> {
    let parsed = parse_replay_uri(uri).map_err(CgError::Unknown)?;
    let store = TransitionStore::open_shared(&parsed.dir, StoreConfig::default())
        .map_err(|e| CgError::ServiceFailure(format!("opening transition store: {e}")))?;
    let live_factory = cg_core::envs::session_factory(&parsed.inner).map_err(CgError::Unknown)?;
    // Spaces are static per backend: capture them once from a template
    // session and hand clones to every replay session.
    let template = live_factory();
    let action_infos = template.action_spaces();
    let obs_infos = template.observation_spaces();
    let reward_infos = template.reward_spaces();
    drop(template);

    let factory: SessionFactory = {
        let store = Arc::clone(&store);
        Arc::new(move || {
            Box::new(ReplaySession {
                store: Arc::clone(&store),
                live_factory: Arc::clone(&live_factory),
                action_infos: action_infos.clone(),
                obs_infos: obs_infos.clone(),
                reward_infos: reward_infos.clone(),
                benchmark: String::new(),
                action_space: 0,
                actions: Vec::new(),
                state: 0,
                live: None,
            })
        })
    };
    let mut env = CompilerEnv::with_factory(
        uri,
        factory,
        &parsed.benchmark,
        &parsed.observation_space,
        &parsed.reward_space,
        Duration::from_secs(300),
    )?;
    // Never re-log what we just read out of the store.
    env.set_transition_logging(false);
    Ok(env)
}

/// A [`CompilationSession`] served from the transition store, degrading
/// to a live inner session on miss.
pub struct ReplaySession {
    store: Arc<TransitionStore>,
    live_factory: SessionFactory,
    action_infos: Vec<ActionSpaceInfo>,
    obs_infos: Vec<ObservationSpaceInfo>,
    reward_infos: Vec<RewardSpaceInfo>,
    benchmark: String,
    action_space: usize,
    actions: Vec<usize>,
    state: u64,
    live: Option<Box<dyn CompilationSession>>,
}

impl ReplaySession {
    fn hit(&self) {
        cg_telemetry::global().stdb.replay_hits.inc();
    }

    fn miss(&self) {
        cg_telemetry::global().stdb.replay_misses.inc();
    }

    /// Counts the miss that *triggers* fall-through and emits the
    /// `stdb:miss` span; later live-served requests only count.
    fn miss_span(&self, what: &str) {
        self.miss();
        let tel = cg_telemetry::global();
        let mut span = tel.trace.root_span("stdb:miss");
        span.set_detail(format!(
            "{} state={:016x} {what}",
            self.benchmark, self.state
        ));
    }

    fn action_name(&self, action: usize) -> Result<String, String> {
        self.action_infos
            .get(self.action_space)
            .and_then(|s| s.actions.get(action))
            .cloned()
            .ok_or_else(|| format!("action {action} out of range"))
    }

    /// Spins up the live inner session and replays the episode's history
    /// onto it, writing each recovered transition back through the store.
    fn go_live(&mut self) -> Result<(), String> {
        if self.live.is_some() {
            return Ok(());
        }
        let mut live = (self.live_factory)();
        live.init(&self.benchmark, self.action_space)?;
        let mut state = match live.observe("Ir") {
            Ok(obs) => obs
                .as_text()
                .map(|ir| self.store.log_reset(&self.benchmark, ir)),
            Err(_) => None,
        };
        let mut names = Vec::with_capacity(self.actions.len());
        for &a in &self.actions.clone() {
            let name = self.action_name(a)?;
            live.apply_action(a)?;
            names.push(name);
            state = match (state, live.observe("Ir")) {
                (Some(from), Ok(obs)) => obs
                    .as_text()
                    .map(|ir| self.store.log_step(&self.benchmark, &names, from, ir, 0.0)),
                _ => None,
            };
        }
        if let Some(s) = state {
            self.state = s;
        }
        self.live = Some(live);
        Ok(())
    }

    fn live_apply(&mut self, action: usize) -> Result<ActionOutcome, String> {
        let live = self.live.as_mut().expect("live session exists");
        let outcome = live.apply_action(action)?;
        self.actions.push(action);
        // Write-through: the next episode over this trajectory is a hit.
        if let Ok(obs) = live.observe("Ir") {
            if let Some(ir) = obs.as_text() {
                let mut names = Vec::with_capacity(self.actions.len());
                for &a in &self.actions {
                    names.push(
                        self.action_infos
                            .get(self.action_space)
                            .and_then(|s| s.actions.get(a))
                            .cloned()
                            .unwrap_or_default(),
                    );
                }
                self.state = self
                    .store
                    .log_step(&self.benchmark, &names, self.state, ir, 0.0);
            }
        }
        Ok(outcome)
    }
}

impl CompilationSession for ReplaySession {
    fn action_spaces(&self) -> Vec<ActionSpaceInfo> {
        self.action_infos.clone()
    }

    fn observation_spaces(&self) -> Vec<ObservationSpaceInfo> {
        self.obs_infos.clone()
    }

    fn reward_spaces(&self) -> Vec<RewardSpaceInfo> {
        self.reward_infos.clone()
    }

    fn init(&mut self, benchmark: &str, action_space: usize) -> Result<(), String> {
        if action_space >= self.action_infos.len() {
            return Err(format!("action space {action_space} out of range"));
        }
        self.benchmark = benchmark.to_string();
        self.action_space = action_space;
        self.actions.clear();
        self.live = None;
        match self.store.initial_state(benchmark) {
            Some(state) => {
                self.state = state;
                self.hit();
                Ok(())
            }
            None => {
                self.miss_span("init");
                self.go_live()
            }
        }
    }

    fn apply_action(&mut self, action: usize) -> Result<ActionOutcome, String> {
        if self.live.is_some() {
            self.miss();
            return self.live_apply(action);
        }
        let name = self.action_name(action)?;
        match self.store.transition(self.state, &name) {
            Some((to, _reward)) => {
                self.hit();
                let changed = to != self.state;
                self.state = to;
                self.actions.push(action);
                Ok(ActionOutcome {
                    end_of_episode: false,
                    action_space_changed: false,
                    changed,
                })
            }
            None => {
                self.miss_span(&format!("step {name}"));
                self.go_live()?;
                self.live_apply(action)
            }
        }
    }

    fn observe(&mut self, space: &str) -> Result<Observation, String> {
        if self.live.is_some() {
            self.miss();
        }
        if let Some(live) = self.live.as_mut() {
            return live.observe(space);
        }
        // Serve from the store when the requested representation is
        // present *with features* (a parse-failed row keeps the IR text
        // but has no derived vectors — those fall through).
        if let Some(row) = self.store.observation(self.state) {
            let served = match space {
                "Ir" if !row.ir_text.is_empty() => Some(Observation::Text(row.ir_text)),
                "Autophase" if !row.autophase.is_empty() => {
                    Some(Observation::IntVector(row.autophase))
                }
                "InstCount" if !row.inst_count.is_empty() => {
                    Some(Observation::IntVector(row.inst_count))
                }
                "IrInstructionCount" if row.ir_instruction_count > 0.0 => {
                    Some(Observation::Scalar(row.ir_instruction_count))
                }
                _ => None,
            };
            if let Some(obs) = served {
                self.hit();
                return Ok(obs);
            }
        }
        self.miss_span(&format!("observe {space}"));
        self.go_live()?;
        self.live
            .as_mut()
            .expect("go_live installed a session")
            .observe(space)
    }

    fn fork(&self) -> Box<dyn CompilationSession> {
        Box::new(ReplaySession {
            store: Arc::clone(&self.store),
            live_factory: Arc::clone(&self.live_factory),
            action_infos: self.action_infos.clone(),
            obs_infos: self.obs_infos.clone(),
            reward_infos: self.reward_infos.clone(),
            benchmark: self.benchmark.clone(),
            action_space: self.action_space,
            actions: self.actions.clone(),
            state: self.state,
            live: self.live.as_ref().map(|l| l.fork()),
        })
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        if self.live.is_some() {
            // Live sessions delegate checkpointing to the inner
            // integration's own episode; replaying history is cheaper than
            // snapshotting a store cursor that may no longer resolve.
            return None;
        }
        let mut out = Vec::with_capacity(13 + self.actions.len() * 4);
        out.push(1u8);
        out.extend_from_slice(&self.state.to_le_bytes());
        out.extend_from_slice(&(self.actions.len() as u32).to_le_bytes());
        for &a in &self.actions {
            out.extend_from_slice(&(a as u32).to_le_bytes());
        }
        Some(out)
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.len() < 13 || state[0] != 1 {
            return Err("bad replay snapshot".into());
        }
        let cursor = u64::from_le_bytes(state[1..9].try_into().unwrap());
        let n = u32::from_le_bytes(state[9..13].try_into().unwrap()) as usize;
        if state.len() != 13 + n * 4 {
            return Err("truncated replay snapshot".into());
        }
        self.actions = state[13..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect();
        self.state = cursor;
        self.live = None;
        Ok(())
    }

    fn state_size(&self) -> Option<u64> {
        match &self.live {
            Some(live) => live.state_size(),
            None => self
                .store
                .observation(self.state)
                .map(|row| row.ir_instruction_count.max(0.0) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_parsing_accepts_good_and_rejects_bad() {
        let u = parse_replay_uri("replay://llvm-v0?dir=/tmp/s&obs=Ir").unwrap();
        assert_eq!(u.inner, "llvm-v0");
        assert_eq!(u.dir, PathBuf::from("/tmp/s"));
        assert_eq!(u.observation_space, "Ir");
        assert_eq!(u.reward_space, "IrInstructionCount");

        assert!(parse_replay_uri("replay://llvm-v0").is_err());
        assert!(parse_replay_uri("replay://gcc-v0?dir=/tmp/s").is_err());
        assert!(parse_replay_uri("replay://llvm-v0?dirs=/tmp/s").is_err());
    }
}
