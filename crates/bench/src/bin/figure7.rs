//! Figure 7: a sweep over loop_tool threading configurations for point-wise
//! addition on the simulated GP100 — achieved GFLOPs versus thread count,
//! with the characteristic dip past the resident-thread capacity (~114k).

use cg_looptool::{Action, LoopNest};

fn main() {
    let n = 1u64 << 24;
    let gpu = cg_looptool::GpuModel::gp100();
    println!(
        "Figure 7: loop_tool GPU sweep (N = {n}, capacity = {} threads)",
        gpu.resident_capacity()
    );
    println!("{:>12} {:>12}", "threads", "GFLOPs");
    let mut threads = 32u64;
    while threads <= (1 << 21) {
        let mut nest = LoopNest::pointwise_add(n);
        nest.apply(Action::Split);
        nest.loops[1].size = threads;
        nest.normalize();
        nest.loops[1].threaded = true;
        let flops = nest.benchmark(threads); // noisy measurement, like the paper's
        println!("{threads:>12} {:>12.2}", flops / 1e9);
        threads = (threads as f64 * 1.5) as u64;
    }
    // Fine sweep around the capacity cliff.
    println!("-- fine sweep near the capacity cliff --");
    let cap = gpu.resident_capacity();
    for frac in [85, 95, 100, 105, 115, 130, 160, 200] {
        let t = cap * frac / 100;
        let mut nest = LoopNest::pointwise_add(n);
        nest.apply(Action::Split);
        nest.loops[1].size = t;
        nest.normalize();
        nest.loops[1].threaded = true;
        println!(
            "{t:>12} {:>12.2}  ({frac}% of capacity)",
            nest.flops_deterministic() / 1e9
        );
    }
    println!("(paper: ~73.5% of peak; performance drop near 100k threads)");
}
