//! Figure 9: the effect of program representation on learning — PPO trained
//! with Autophase vs InstCount observations, each with and without the
//! action histogram; validation performance versus training episodes.

use cg_bench::rl_common::{evaluate_geomean, feat_dim, rl_env, uris};
use cg_bench::scaled;
use cg_rl::{Algo, TrainConfig};

fn main() {
    let train = uris("csmith-v0", scaled(6, 50), 0);
    let val = uris("csmith-v0", scaled(3, 20), 900);
    let total_episodes = scaled(120, 50_000);
    let checkpoints = 6;
    let configs = [
        ("Autophase + histogram", "Autophase", true),
        ("Autophase", "Autophase", false),
        ("InstCount + histogram", "InstCount", true),
        ("InstCount", "InstCount", false),
    ];
    println!("Figure 9: observation-space ablation (validation geomean vs -Oz)");
    print!("{:>10}", "episodes");
    for (name, _, _) in configs {
        print!(" {name:>24}");
    }
    println!();
    // Train each config in checkpointed chunks, evaluating between chunks.
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); checkpoints];
    for (_, obs, histo) in configs {
        let mut env = rl_env(train.clone(), obs, histo);
        let dim = feat_dim(obs, histo);
        // Continue training the same policy across chunks by folding the
        // previous policy in as the new seed-policy (re-train from scratch
        // per chunk-boundary would lose progress; instead we train once per
        // checkpoint with cumulative episode counts).
        for (ck, row) in rows.iter_mut().enumerate() {
            let episodes = total_episodes * (ck + 1) / checkpoints;
            let cfg = TrainConfig {
                episodes,
                steps: 45,
                seed: 0x51AB,
                ..TrainConfig::default()
            };
            let (p, _) = Algo::Ppo.train(env.as_mut(), dim, &cfg).unwrap();
            row.push(evaluate_geomean(&p, &val, obs, histo));
        }
    }
    for (ck, row) in rows.iter().enumerate() {
        print!("{:>10}", total_episodes * (ck + 1) / checkpoints);
        for v in row {
            print!(" {v:>23.3}x");
        }
        println!();
    }
    println!("(paper: histogram variants dominate; Autophase > InstCount)");
}
