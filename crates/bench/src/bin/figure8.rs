//! Figure 8: learning an instruction-count cost model from the state
//! transition database — validation relative error versus training epoch,
//! against the naive mean-prediction baseline.

use cg_bench::scaled;
use cg_rl::ggnn;

fn main() {
    let n_bench = scaled(10, 60);
    let episodes = scaled(2, 10);
    let steps = scaled(8, 40);
    let benchmarks: Vec<String> = (0..n_bench)
        .map(|i| format!("benchmark://csmith-v0/{}", 1000 + i))
        .collect();
    eprintln!("generating state transition database over {n_bench} benchmarks…");
    let db = cg_stdb::generate_database(&benchmarks, episodes, steps, 1).unwrap();
    eprintln!(
        "database: {} steps, {} unique states",
        db.steps.len(),
        db.unique_states()
    );

    // Build (graph encoding, instruction count) pairs per unique state:
    // parse the stored IR back into modules, build the ProGraML graphs, and
    // encode them with the GGNN — exactly the paper's (graph, count) pairs.
    let mut rows: Vec<&cg_stdb::ObservationRow> = db.observations.values().collect();
    rows.sort_by_key(|o| o.state);
    let data: Vec<(Vec<f32>, f32)> = rows
        .iter()
        .map(|obs| {
            let m = cg_ir::parser::parse_module(&obs.ir_text).expect("stored IR parses");
            let g = cg_llvm::observation::programl(&m);
            (ggnn::encode(&g), obs.ir_instruction_count as f32)
        })
        .collect();
    let split = data.len() * 8 / 10;
    let (train, val) = data.split_at(split);
    let scale = train.iter().map(|(_, t)| *t).fold(1.0f32, f32::max);
    let mut model = ggnn::CostModel::new(scale);
    let naive = ggnn::naive_mean_relative_error(train, val);
    println!(
        "Figure 8: cost-model convergence ({} train / {} val states)",
        train.len(),
        val.len()
    );
    println!("{:>8} {:>16}", "epoch", "rel. error");
    println!(
        "{:>8} {:>16.3}  <- naive mean baseline (paper: 1.393)",
        "-", naive
    );
    for epoch in 0..scaled(200, 2000) {
        model.train_epoch(train, 0.005);
        if epoch % scaled(20, 200) == 0 {
            println!("{epoch:>8} {:>16.3}", model.relative_error(val));
        }
    }
    println!(
        "{:>8} {:>16.3}  <- final (paper: 0.025)",
        "end",
        model.relative_error(val)
    );
}
