//! Table III: computational costs of the LLVM observation and reward
//! spaces over random trajectories.

use cg_bench::{rng, scaled, WallStats};
use rand::Rng as _;

fn main() {
    let uris: Vec<String> = cg_datasets::CBENCH
        .iter()
        .map(|n| format!("benchmark://cbench-v1/{n}"))
        .collect();
    let samples = scaled(150, 10_000);
    let mut r = rng(7);
    let mut env = cg_core::make("llvm-v0").unwrap();
    let spaces = ["Ir", "InstCount", "Autophase", "Inst2vec", "Programl"];
    let rewards = ["IrInstructionCount", "ObjectTextSizeBytes", "Runtime"];
    let mut stats: Vec<WallStats> = (0..spaces.len() + rewards.len())
        .map(|_| WallStats::new())
        .collect();
    let n_actions = env.action_space().len();
    let mut collected = 0;
    'outer: while collected < samples {
        let uri = &uris[r.gen_range(0..uris.len())];
        env.set_benchmark(uri);
        env.reset().unwrap();
        for _ in 0..10 {
            let a = r.gen_range(0..n_actions);
            env.step(a).unwrap();
            for (i, s) in spaces.iter().enumerate() {
                stats[i].time(|| env.observe(s).unwrap());
            }
            for (i, s) in rewards.iter().enumerate() {
                // Runtime can fail on traps mid-optimization for llvm-stress;
                // cBench is always runnable.
                stats[spaces.len() + i].time(|| {
                    let _ = env.observe(s);
                });
            }
            collected += 1;
            if collected >= samples {
                break 'outer;
            }
        }
    }
    println!("Table III: observation/reward space costs ({collected} samples)");
    println!("{:<22} {:>12} {:>12} {:>12}", "Space", "p50", "p99", "mean");
    for (i, s) in spaces.iter().enumerate() {
        println!("{:<22} {}", s, stats[i].row());
    }
    for (i, s) in rewards.iter().enumerate() {
        println!(
            "{:<22} {}",
            format!("{s} (reward)"),
            stats[spaces.len() + i].row()
        );
    }
    let fastest = stats
        .iter()
        .map(WallStats::mean)
        .fold(f64::INFINITY, f64::min);
    let slowest = stats.iter().map(WallStats::mean).fold(0.0, f64::max);
    println!(
        "\nRange across spaces: {:.0}x (paper: 192x obs / 4727x rewards)",
        slowest / fastest.max(1e-9)
    );
}
