//! Table VI: four RL algorithms trained on Csmith programs, evaluated on
//! every dataset family (geomean code-size reduction vs -Oz).

use cg_bench::rl_common::{evaluate_geomean, feat_dim, rl_env, uris};
use cg_bench::{print_telemetry_footer, scaled, telemetry_begin};
use cg_rl::{Algo, TrainConfig};

fn main() {
    telemetry_begin();
    let train_benchmarks = uris("csmith-v0", scaled(8, 50), 0);
    let episodes = scaled(300, 100_000);
    let eval_per_dataset = scaled(4, 50);
    let datasets = [
        "anghabench-v1",
        "blas-v0",
        "cbench-v1",
        "chstone-v0",
        "clgen-v0",
        "csmith-v0",
        "github-v0",
        "linux-v0",
        "llvm-stress-v0",
        "mibench-v1",
        "npb-v0",
        "opencv-v0",
        "poj104-v1",
        "tensorflow-v0",
    ];
    println!("Table VI: RL generalization ({episodes} training episodes on csmith)");
    print!("{:<16}", "Test dataset");
    let algos = [Algo::A2c, Algo::Apex, Algo::Impala, Algo::Ppo];
    for a in algos {
        print!(" {:>8}", a.name());
    }
    println!();
    let mut policies = Vec::new();
    for algo in algos {
        eprintln!("training {}…", algo.name());
        let mut env = rl_env(train_benchmarks.clone(), "Autophase", true);
        let cfg = TrainConfig {
            episodes,
            steps: 45,
            seed: 0xC0FFEE,
            ..TrainConfig::default()
        };
        let (policy, _) = algo
            .train(env.as_mut(), feat_dim("Autophase", true), &cfg)
            .unwrap();
        policies.push(policy);
    }
    for ds in datasets {
        // Held-out benchmarks (offset past the training seeds for csmith).
        let eval = uris(ds, eval_per_dataset, 500);
        print!("{ds:<16}");
        for p in &policies {
            let g = evaluate_geomean(p, &eval, "Autophase", true);
            print!(" {g:>7.3}x");
        }
        println!();
    }
    println!("(paper: most entries below 1.0x; PPO positive on csmith + 2 others — generalization is hard)");
    print_telemetry_footer();
}
