//! Pass-pipeline fuzzer: random action sequences with verification after
//! every action (the daily "fuzz and stress tests" of §VI).

use rand::{Rng as _, SeedableRng as _};

fn main() {
    let space = cg_llvm::action_space::ActionSpace::new();
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    for seed in 0..trials {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let uri = format!("benchmark://csmith-v0/{}", rng.gen_range(0..5000));
        let base = cg_datasets::benchmark(&uri).unwrap();
        let mut m = base.clone();
        let mut taken: Vec<String> = Vec::new();
        for _ in 0..24 {
            let a = rng.gen_range(0..space.len());
            taken.push(space.names()[a].clone());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut x = m.clone();
                space.apply(&mut x, a);
                x
            }));
            match result {
                Ok(x) => {
                    if let Err(e) = cg_ir::verify::verify_module(&x) {
                        println!("VERIFY FAIL {uri} after {taken:?}: {e}");
                        return;
                    }
                    m = x;
                }
                Err(_) => {
                    println!("PANIC {uri} after {taken:?}");
                    return;
                }
            }
        }
    }
    println!("ok: {trials} trials clean");
}
