//! Table VII: the effect of training set on PPO generalization — a 3x3
//! train/test cross-validation over Csmith, GitHub and TensorFlow.

use cg_bench::rl_common::{evaluate_geomean, feat_dim, rl_env, uris};
use cg_bench::{print_telemetry_footer, scaled, telemetry_begin};
use cg_rl::{Algo, TrainConfig};

fn main() {
    telemetry_begin();
    let families = ["csmith-v0", "github-v0", "tensorflow-v0"];
    let episodes = scaled(300, 100_000);
    let n_train = scaled(8, 50);
    let n_eval = scaled(4, 50);
    println!("Table VII: PPO train/test cross-validation ({episodes} episodes)");
    print!("{:<16}", "test \\ train");
    for f in families {
        print!(" {f:>16}");
    }
    println!();
    let mut policies = Vec::new();
    for train in families {
        eprintln!("training PPO on {train}…");
        let mut env = rl_env(uris(train, n_train, 0), "Autophase", true);
        let cfg = TrainConfig {
            episodes,
            steps: 45,
            seed: 0xABCD,
            ..TrainConfig::default()
        };
        let (p, _) = Algo::Ppo
            .train(env.as_mut(), feat_dim("Autophase", true), &cfg)
            .unwrap();
        policies.push(p);
    }
    for test in families {
        print!("{test:<16}");
        let eval = uris(test, n_eval, 700);
        for p in &policies {
            print!(" {:>15.3}x", evaluate_geomean(p, &eval, "Autophase", true));
        }
        println!();
    }
    println!("(paper: the diagonal dominates — agents do best on their own training domain)");
    print_telemetry_footer();
}
