//! Table V: GCC flag autotuning on CHStone — random search, hill climbing
//! and a genetic algorithm, geomean object-size reduction vs -Os with a
//! fixed compilation budget.

use cg_autotune as at;
use cg_bench::{geomean, scaled};

fn main() {
    let budget = scaled(120, 1000) as u64;
    let techniques: [(&str, u32); 3] = [("Random", 2), ("HillClimb", 9), ("GA", 12)];
    println!("Table V: GCC flag tuning on CHStone ({budget} compilations per benchmark)");
    println!(
        "{:<12} {:>5} {:>24}",
        "Technique", "LoC", "geomean objsize vs -Os"
    );
    for (t, loc) in techniques {
        let mut ratios = Vec::new();
        for name in cg_datasets::CHSTONE {
            let mut p = at::GccChoicesProblem::new(
                cg_gcc::GccSpec::v11_2(),
                &format!("benchmark://chstone-v0/{name}"),
            )
            .unwrap();
            let os = p.baseline_os_size().unwrap();
            let mut r = at::rng(cg_ir::fnv1a(name.as_bytes()) ^ t.len() as u64);
            let res = match t {
                "Random" => at::random_search(&mut p, budget, &mut r),
                "HillClimb" => at::hill_climb(&mut p, budget, &mut r),
                _ => at::genetic_algorithm(&mut p, budget, 100, &mut r),
            };
            let best_size = -res.score;
            ratios.push(os / best_size.max(1.0));
        }
        println!("{t:<12} {loc:>5} {:>23.3}x", geomean(&ratios));
    }
    println!("(paper: Random 1.21x, Hill Climbing 1.04x, GA 1.27x)");
}
