//! Table IV: autotuning techniques on LLVM phase ordering — lines of code
//! to integrate, and geomean code-size / binary-size reduction (vs -Oz) and
//! runtime speedup (vs -O3) on cBench under a fixed search budget.

use cg_autotune as at;
use cg_bench::{geomean, scaled};

fn tune(technique: &str, benchmarks: &[&str], reward_space: &str, budget: u64) -> f64 {
    let mut ratios = Vec::new();
    for name in benchmarks {
        let mut env = cg_core::make("llvm-v0").unwrap();
        env.set_benchmark(&format!("benchmark://cbench-v1/{name}"));
        env.set_reward_space(reward_space);
        let mut r = at::rng(cg_ir::fnv1a(technique.as_bytes()) ^ cg_ir::fnv1a(name.as_bytes()));
        let (init, baseline, best_gain);
        {
            env.reset().unwrap();
            let ri = env
                .reward_spaces()
                .iter()
                .find(|x| x.name == reward_space)
                .unwrap()
                .clone();
            init = env.observe(&ri.metric).unwrap().as_scalar().unwrap();
            baseline = env
                .observe(ri.baseline.as_deref().unwrap())
                .unwrap()
                .as_scalar()
                .unwrap();
        }
        // Search over the *unscaled* metric so every technique optimizes the
        // same objective; report vs the baseline.
        env.set_reward_space(match reward_space {
            "IrInstructionCountOz" => "IrInstructionCount",
            "ObjectTextSizeOz" => "ObjectTextSizeBytes",
            "RuntimeO3" => "Runtime",
            other => other,
        });
        match technique {
            "Greedy" => {
                env.reset().unwrap();
                let cands: Vec<usize> = cg_llvm::action_space::autophase_subset()
                    .iter()
                    .map(|n| env.action_space().index_of(n).unwrap())
                    .collect();
                let (_, reward) = at::greedy_search(&mut env, &cands, 16).unwrap();
                best_gain = reward;
            }
            _ => {
                let length = 24;
                // Searchers use the curated 42-pass alphabet (hyperparameters
                // tuned offline, as the paper tunes on a Csmith validation set).
                let cands: Vec<usize> = cg_llvm::action_space::autophase_subset()
                    .iter()
                    .map(|n| env.action_space().index_of(n).unwrap())
                    .collect();
                let mut p = at::PassSequenceProblem::with_candidates(env, length, cands);
                let num_actions = p.num_actions();
                let res = match technique {
                    "LaMCTS" => at::mcts_search(&mut p, budget, num_actions, length, &mut r),
                    "Nevergrad" => at::nevergrad_style(&mut p, budget, &mut r),
                    "OpenTuner" => at::opentuner_style(&mut p, budget, &mut r),
                    "Random" => at::random_search(&mut p, budget, &mut r),
                    other => panic!("unknown technique {other}"),
                };
                best_gain = res.score.max(0.0);
            }
        }
        // ratio = baseline_metric / achieved_metric (>1: beats the default
        // pipeline).
        let achieved = init - best_gain;
        ratios.push(baseline / achieved.max(1.0));
    }
    geomean(&ratios)
}

fn main() {
    let budget = scaled(150, 3600) as u64;
    let benchmarks: Vec<&str> = if cg_bench::full_scale() {
        cg_datasets::CBENCH.to_vec()
    } else {
        vec!["crc32", "sha", "bitcount", "qsort", "gsm", "stringsearch"]
    };
    // (technique, lines of code to integrate — ours, counted like Table IV)
    let techniques = [
        ("Greedy", 7),
        ("LaMCTS", 35),
        ("Nevergrad", 14),
        ("OpenTuner", 22),
        ("Random", 2),
    ];
    println!(
        "Table IV: LLVM phase-ordering autotuning ({} evals, {} benchmarks)",
        budget,
        benchmarks.len()
    );
    println!(
        "{:<12} {:>5} {:>22} {:>22}",
        "Technique", "LoC", "geomean size vs -Oz", "geomean binsize vs -Oz"
    );
    for (t, loc) in techniques {
        let code = tune(t, &benchmarks, "IrInstructionCountOz", budget);
        let bin = tune(t, &benchmarks, "ObjectTextSizeOz", budget);
        println!("{t:<12} {loc:>5} {code:>21.3}x {bin:>21.3}x");
    }
    println!("(paper: all techniques land in 1.05-1.08x code size, 1.10-1.32x binary size)");
}
