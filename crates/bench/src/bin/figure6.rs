//! Figure 6: the distribution of step times across the 23 cBench programs
//! (per-program medians; the paper reports a 560x spread between crc32 and
//! ghostscript).

use cg_bench::{rng, scaled, WallStats};
use rand::Rng as _;

fn main() {
    let steps = scaled(40, 2000);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut env = cg_core::make("llvm-v0").unwrap();
    let n_actions = env.action_space().len();
    for name in cg_datasets::CBENCH {
        let mut r = rng(cg_ir::fnv1a(name.as_bytes()));
        env.set_benchmark(&format!("benchmark://cbench-v1/{name}"));
        env.reset().unwrap();
        let mut s = WallStats::new();
        for i in 0..steps {
            if i % 25 == 24 {
                env.reset().unwrap();
            }
            let a = r.gen_range(0..n_actions);
            s.time(|| env.step(a).unwrap());
        }
        rows.push((name.to_string(), s.percentile(50.0), s.percentile(99.0)));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("Figure 6: per-program step-time distribution (cBench)");
    println!("{:<16} {:>10} {:>10}", "program", "p50 (ms)", "p99 (ms)");
    for (n, p50, p99) in &rows {
        println!("{n:<16} {p50:>10.3} {p99:>10.3}");
    }
    let ratio = rows.last().unwrap().1 / rows[0].1.max(1e-9);
    println!(
        "\nmedian-step spread: {:.1}x between {} and {} (paper: 560.3x crc32..ghostscript)",
        ratio,
        rows[0].0,
        rows.last().unwrap().0
    );
}
