//! Figure 6: the distribution of step times across the 23 cBench programs
//! (per-program medians; the paper reports a 560x spread between crc32 and
//! ghostscript).
//!
//! Timing comes from the telemetry layer's step-latency histogram rather
//! than an ad-hoc stopwatch, so the numbers here match what `cg stats`
//! reports for the same workload.

use cg_bench::{rng, scaled, telemetry_begin, telemetry_snapshot};
use rand::Rng as _;

fn main() {
    let steps = scaled(40, 2000);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut env = cg_core::make("llvm-v0").unwrap();
    let n_actions = env.action_space().len();
    let (mut restarts, mut panics) = (0u64, 0u64);
    for name in cg_datasets::CBENCH {
        let mut r = rng(cg_ir::fnv1a(name.as_bytes()));
        env.set_benchmark(&format!("benchmark://cbench-v1/{name}"));
        env.reset().unwrap();
        // Isolate this program's histogram; service health accumulates
        // across programs in the local sums.
        telemetry_begin();
        for i in 0..steps {
            if i % 25 == 24 {
                env.reset().unwrap();
            }
            let a = r.gen_range(0..n_actions);
            env.step(a).unwrap();
        }
        let snap = telemetry_snapshot();
        restarts += snap.restarts;
        panics += snap.panics;
        let sw = &snap.episode.step_wall;
        rows.push((
            name.to_string(),
            sw.p50_micros as f64 / 1e3,
            sw.p99_micros as f64 / 1e3,
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("Figure 6: per-program step-time distribution (cBench)");
    println!("{:<16} {:>10} {:>10}", "program", "p50 (ms)", "p99 (ms)");
    for (n, p50, p99) in &rows {
        println!("{n:<16} {p50:>10.3} {p99:>10.3}");
    }
    let ratio = rows.last().unwrap().1 / rows[0].1.max(1e-9);
    println!(
        "\nmedian-step spread: {:.1}x between {} and {} (paper: 560.3x crc32..ghostscript)",
        ratio,
        rows[0].0,
        rows.last().unwrap().0
    );
    println!("service health: restarts={restarts} panics={panics}");
}
