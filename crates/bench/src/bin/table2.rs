//! Table II: computational costs of environment operations — service
//! startup, environment initialization (cold/warm), and environment step —
//! for CompilerGym (plus its batched mode) versus the Autophase- and
//! OpenTuner-style architectures.

use std::sync::Arc;
use std::time::Duration;

use cg_bench::{rng, scaled, WallStats};
use cg_core::service::{Request, ServiceClient};
use rand::Rng as _;

fn main() {
    let bench_uris: Vec<String> = ["crc32", "qsort", "sha", "bitcount", "gsm"]
        .iter()
        .map(|n| format!("benchmark://cbench-v1/{n}"))
        .collect();
    let steps = scaled(300, 20_000);
    let mut r = rng(42);

    // --- Service startup ---
    let mut startup = WallStats::new();
    for _ in 0..scaled(20, 100) {
        startup.time(|| {
            let factory: cg_core::service::SessionFactory =
                Arc::new(|| cg_core::envs::create_session("llvm-v0").unwrap());
            let c = ServiceClient::spawn(factory, Duration::from_secs(60));
            c.call(Request::Ping).unwrap();
        });
    }

    // --- Environment initialization ---
    cg_core::envs::llvm::clear_benchmark_cache();
    let mut env = cg_core::make("llvm-v0").unwrap();
    let mut init_cold = WallStats::new();
    for uri in &bench_uris {
        env.set_benchmark(uri);
        init_cold.time(|| env.reset().unwrap());
    }
    let mut init_warm = WallStats::new();
    for _ in 0..scaled(40, 400) {
        let uri = &bench_uris[r.gen_range(0..bench_uris.len())];
        env.set_benchmark(uri);
        init_warm.time(|| env.reset().unwrap());
    }
    let mut init_autophase = WallStats::new();
    for _ in 0..scaled(10, 100) {
        let uri = &bench_uris[r.gen_range(0..bench_uris.len())];
        init_autophase.time(|| cg_baselines::AutophaseStyleEnv::new(uri).unwrap());
    }
    let mut init_opentuner = WallStats::new();
    for _ in 0..scaled(10, 100) {
        let uri = &bench_uris[r.gen_range(0..bench_uris.len())];
        init_opentuner.time(|| cg_baselines::OpenTunerStyleEnv::new(uri).unwrap());
    }

    // --- Environment step (random trajectories, episodes of 30) ---
    let n_actions = env.action_space().len();
    let mut cg_step = WallStats::new();
    let mut cg_batched = WallStats::new();
    let mut ap_step = WallStats::new();
    let mut ot_step = WallStats::new();
    let mut done = 0usize;
    'outer: loop {
        for uri in &bench_uris {
            env.set_benchmark(uri);
            env.reset().unwrap();
            let mut ap = cg_baselines::AutophaseStyleEnv::new(uri).unwrap();
            let mut ot = cg_baselines::OpenTunerStyleEnv::new(uri).unwrap();
            let episode: Vec<usize> = (0..30).map(|_| r.gen_range(0..n_actions)).collect();
            for &a in &episode {
                cg_step.time(|| env.step(a).unwrap());
                ap_step.time(|| ap.step(a));
                ot_step.time(|| ot.step(a));
                done += 1;
                if done >= steps {
                    break 'outer;
                }
            }
            // Batched: the same episode in one RPC, amortized per action.
            env.reset().unwrap();
            let t = std::time::Instant::now();
            env.step_batched(&episode).unwrap();
            let per_action = t.elapsed().as_secs_f64() * 1e3 / episode.len() as f64;
            for _ in 0..episode.len() {
                cg_batched.push(per_action);
            }
        }
    }

    println!("Table II: computational costs (p50 / p99 / mean per operation)");
    println!("{:<22} ", "-- service startup --");
    println!("{:<22} {}", "CompilerGym", startup.row());
    println!("{:<22} ", "-- env init --");
    println!("{:<22} {}", "Autophase-style", init_autophase.row());
    println!("{:<22} {}", "OpenTuner-style", init_opentuner.row());
    println!(
        "{:<22} {}  (cold: {:.3}ms mean)",
        "CompilerGym (warm)",
        init_warm.row(),
        init_cold.mean()
    );
    println!("{:<22} ", "-- env step --");
    println!("{:<22} {}", "Autophase-style", ap_step.row());
    println!("{:<22} {}", "OpenTuner-style", ot_step.row());
    println!("{:<22} {}", "CompilerGym", cg_step.row());
    println!("{:<22} {}", "CompilerGym-batched", cg_batched.row());
    let speedup = ap_step.mean() / cg_step.mean().max(1e-9);
    let batch_gain = cg_step.mean() / cg_batched.mean().max(1e-9);
    println!("\nCompilerGym step speedup over Autophase-style: {speedup:.1}x (paper: 27x)");
    println!("Batching gain: {batch_gain:.1}x (paper: 2.9x)");
}
