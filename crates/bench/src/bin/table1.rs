//! Table I: the benchmark dataset inventory.

fn main() {
    println!("Table I: LLVM benchmark datasets included");
    println!("{:<18} {:>14}  runnable", "Dataset", "#Benchmarks");
    for d in cg_datasets::datasets() {
        let n = match d.len() {
            Some(n) => n.to_string(),
            None => "2^32".to_string(),
        };
        println!(
            "{:<18} {:>14}  {}",
            d.name,
            n,
            if d.runnable { "yes" } else { "no" }
        );
    }
    println!(
        "Total (excluding generators): {}",
        cg_datasets::total_finite_benchmarks()
    );
}
