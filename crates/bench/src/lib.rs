//! # cg-bench: experiment harnesses
//!
//! One binary per table and figure of the paper's evaluation (§VII):
//! `table1`…`table7`, `figure6`…`figure9`, plus Criterion micro-benchmarks
//! for the performance-critical paths. Each binary prints rows shaped like
//! the paper's. Defaults are scaled down to finish in minutes; set
//! `CG_BENCH_FULL=1` to raise budgets toward paper scale.

pub mod rl_common;

use std::time::Instant;

/// True when `CG_BENCH_FULL=1` requests paper-scale budgets.
pub fn full_scale() -> bool {
    std::env::var("CG_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Picks a budget by scale.
pub fn scaled(small: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        small
    }
}

/// Wall-time statistics in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct WallStats {
    samples: Vec<f64>,
}

impl WallStats {
    /// An empty collector.
    pub fn new() -> WallStats {
        WallStats::default()
    }

    /// Times one call and records it.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.samples.push(t.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Records a precomputed sample (ms).
    pub fn push(&mut self, ms: f64) {
        self.samples.push(ms);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// The p-th percentile (0..=100), in ms.
    pub fn percentile(&self, p: f64) -> f64 {
        let v = self.sorted();
        if v.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Arithmetic mean, in ms.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Formats as `p50 / p99 / mean` in ms.
    pub fn row(&self) -> String {
        format!(
            "{:>10.3}ms {:>10.3}ms {:>10.3}ms",
            self.percentile(50.0),
            self.percentile(99.0),
            self.mean()
        )
    }
}

/// Resets the global telemetry registry. Harness binaries call this at the
/// top of `main` so their report reflects only their own run.
pub fn telemetry_begin() {
    cg_telemetry::global().reset();
}

/// Captures the global telemetry registry.
pub fn telemetry_snapshot() -> cg_telemetry::TelemetrySnapshot {
    cg_telemetry::global().snapshot()
}

/// Prints the standard harness footer: environment step latency and service
/// health, sourced from the telemetry layer rather than ad-hoc timers.
pub fn print_telemetry_footer() {
    let s = telemetry_snapshot();
    let sw = &s.episode.step_wall;
    println!(
        "telemetry: steps={} step p50={:.3}ms p90={:.3}ms p99={:.3}ms max={:.3}ms",
        sw.count,
        sw.p50_micros as f64 / 1e3,
        sw.p90_micros as f64 / 1e3,
        sw.p99_micros as f64 / 1e3,
        sw.max_micros as f64 / 1e3,
    );
    println!(
        "           episodes={} restarts={} panics={} timeouts={}",
        s.episode.episodes, s.restarts, s.panics, s.timeouts
    );
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A deterministic RNG for harnesses.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng as _;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_mean() {
        let mut s = WallStats::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        // Nearest-rank on 0-based indices: p50 of 1..=100 is sample 51.
        assert_eq!(s.percentile(50.0), 51.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_twos() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
