//! Shared experiment plumbing for the RL tables (VI, VII) and Figure 9:
//! the paper's Autophase-replica environment stack (42-action subset,
//! feature-vector + action-histogram observation, 45-step episodes) and
//! greedy policy evaluation across datasets.

use cg_core::wrappers::{ActionSubset, ConcatActionHistogram, CycleOverBenchmarks, Env, TimeLimit};
use cg_core::CompilerEnv;
use cg_rl::{featurize, geomean, Policy};

/// Episode length used throughout (§VII-G: 45 steps).
pub const EPISODE_STEPS: usize = 45;

/// Builds the paper's RL environment stack over a list of training
/// benchmarks. `observation` is the base observation space name; when
/// `histogram` is set the action histogram is concatenated (the Autophase
/// representation).
pub fn rl_env(benchmarks: Vec<String>, observation: &str, histogram: bool) -> Box<dyn Env> {
    let mut env = cg_core::make("llvm-autophase-ic-v0").expect("llvm env");
    env.set_observation_space(observation);
    let subset: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).expect("subset action"))
        .collect();
    let stack = ActionSubset::new(env, subset);
    let stack = CycleOverBenchmarks::new(stack, benchmarks);
    if histogram {
        Box::new(TimeLimit::new(
            ConcatActionHistogram::new(stack),
            EPISODE_STEPS,
        ))
    } else {
        Box::new(TimeLimit::new(stack, EPISODE_STEPS))
    }
}

/// Feature dimension of the stack built by [`rl_env`].
pub fn feat_dim(observation: &str, histogram: bool) -> usize {
    let base = match observation {
        "Autophase" => cg_llvm::observation::AUTOPHASE_DIM,
        "InstCount" => cg_llvm::observation::INST_COUNT_DIM,
        other => panic!("unsupported observation {other}"),
    };
    base + if histogram { 42 } else { 0 }
}

/// Benchmark URIs for a dataset family.
pub fn uris(dataset: &str, count: usize, offset: usize) -> Vec<String> {
    let ds = cg_datasets::dataset(dataset).unwrap_or_else(|| panic!("dataset {dataset}"));
    match ds.size {
        cg_datasets::DatasetSize::Seeded => (0..count)
            .map(|i| format!("benchmark://{dataset}/{}", 10_000 + offset + i))
            .collect(),
        _ => {
            // Clamp the hold-out offset so small suites still contribute.
            let len = ds.len().unwrap_or(u64::MAX) as usize;
            let offset = offset.min(len.saturating_sub(count));
            ds.benchmark_paths(count + offset)
                .into_iter()
                .skip(offset)
                .map(|p| format!("benchmark://{dataset}/{p}"))
                .collect()
        }
    }
}

/// Evaluates a trained policy on one benchmark: runs a greedy 45-step
/// episode and returns `oz_size / achieved_size` (>1 beats `-Oz`).
pub fn evaluate_on(policy: &Policy, uri: &str, observation: &str, histogram: bool) -> Option<f64> {
    let mut env: CompilerEnv = cg_core::make("llvm-autophase-ic-v0").ok()?;
    env.set_observation_space(observation);
    env.set_benchmark(uri);
    let subset: Vec<usize> = cg_llvm::action_space::autophase_subset()
        .iter()
        .map(|n| env.action_space().index_of(n).expect("subset action"))
        .collect();
    env.reset().ok()?;
    let oz = env.observe("IrInstructionCountOz").ok()?.as_scalar()?;
    let mut histo = vec![0i64; 42];
    let mut obs = featurize(&env.observe(observation).ok()?);
    for _ in 0..EPISODE_STEPS {
        let mut features = obs.clone();
        if histogram {
            features.extend(histo.iter().map(|&h| (h as f32).ln_1p()));
        }
        let a = policy.act_greedy(&features);
        histo[a] += 1;
        let step = env.step(subset[a]).ok()?;
        obs = featurize(&step.observation);
    }
    let achieved = env.observe("IrInstructionCount").ok()?.as_scalar()?;
    Some(oz / achieved.max(1.0))
}

/// Geomean of [`evaluate_on`] across a benchmark list.
pub fn evaluate_geomean(
    policy: &Policy,
    uris: &[String],
    observation: &str,
    histogram: bool,
) -> f64 {
    let ratios: Vec<f64> = uris
        .iter()
        .filter_map(|u| evaluate_on(policy, u, observation, histogram))
        .collect();
    geomean(&ratios)
}
