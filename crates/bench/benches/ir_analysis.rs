//! Criterion benchmarks for the analysis cache: cached vs always-recompute
//! dominators/loops/liveness, and whole pass pipelines run with a live
//! [`cg_ir::AnalysisManager`] vs a disabled one (every request recomputes,
//! the pre-arena behavior). `cg bench-ir` re-measures the same scenarios
//! and writes the committed `BENCH_ir.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use cg_ir::AnalysisManager;
use cg_llvm::action_space::ActionSpace;

const BENCH: &str = "benchmark://cbench-v1/sha";

/// Direct analysis requests on an unchanged module: a warm manager answers
/// from cache (an `Arc` clone); a disabled one recomputes every time. This
/// is the raw price of one redundant recompute, the unit the pipeline
/// numbers below are made of.
fn bench_analysis_fetch(c: &mut Criterion) {
    let m = cg_datasets::benchmark(BENCH).unwrap();
    let mut g = c.benchmark_group("analysis_fetch");
    g.sample_size(20);

    let mut warm = AnalysisManager::new();
    for &fid in m.func_ids() {
        warm.liveness(fid, m.func(fid));
        warm.loops(fid, m.func(fid));
        warm.frontiers(fid, m.func(fid));
    }
    g.bench_function("dom_loops_liveness_cached", |b| {
        b.iter(|| {
            for &fid in m.func_ids() {
                let f = m.func(fid);
                criterion::black_box(warm.dom(fid, f));
                criterion::black_box(warm.loops(fid, f));
                criterion::black_box(warm.liveness(fid, f));
            }
        });
    });

    let mut cold = AnalysisManager::disabled();
    g.bench_function("dom_loops_liveness_recompute", |b| {
        b.iter(|| {
            for &fid in m.func_ids() {
                let f = m.func(fid);
                criterion::black_box(cold.dom(fid, f));
                criterion::black_box(cold.loops(fid, f));
                criterion::black_box(cold.liveness(fid, f));
            }
        });
    });
    g.finish();
}

/// Full `-Oz` pipeline with the manager the runner actually uses vs one
/// that always recomputes. The gap is exactly what stamp-based
/// invalidation plus `preserved()` declarations buy on real pipelines.
fn bench_pipeline_cache(c: &mut Criterion) {
    let m = cg_datasets::benchmark(BENCH).unwrap();
    let names = cg_llvm::pipeline::OptLevel::Oz.pass_names();
    let mut g = c.benchmark_group("pipeline_cache");
    g.sample_size(20);
    g.bench_function("oz_cached", |b| {
        b.iter(|| {
            let mut x = m.clone();
            let mut am = AnalysisManager::new();
            cg_llvm::pipeline::run_passes_with(&mut x, &names, &mut am)
        });
    });
    g.bench_function("oz_no_cache", |b| {
        b.iter(|| {
            let mut x = m.clone();
            let mut am = AnalysisManager::disabled();
            cg_llvm::pipeline::run_passes_with(&mut x, &names, &mut am)
        });
    });
    g.finish();
}

/// Session-shaped workload: a long action episode against one module with
/// the per-session manager (what `LlvmSession` holds) vs always-recompute.
/// Late-episode actions mostly no-op, so this is where cache reuse
/// compounds — the RL step-throughput case the paper's Table 6 cares about.
fn bench_episode_cache(c: &mut Criterion) {
    let space = ActionSpace::new();
    let names = [
        "mem2reg",
        "gvn",
        "licm",
        "early-cse",
        "sccp",
        "instcombine",
        "dce",
        "jump-threading",
        "adce",
    ];
    let seq: Vec<usize> = names
        .iter()
        .cycle()
        .take(100)
        .map(|n| space.index_of(n).unwrap())
        .collect();
    let m = cg_datasets::benchmark(BENCH).unwrap();
    let mut g = c.benchmark_group("episode_cache");
    g.sample_size(20);
    g.bench_function("episode100_cached", |b| {
        b.iter(|| {
            let mut x = m.clone();
            let mut am = AnalysisManager::new();
            for &a in &seq {
                space.apply_with(&mut x, a, &mut am);
            }
        });
    });
    g.bench_function("episode100_no_cache", |b| {
        b.iter(|| {
            let mut x = m.clone();
            let mut am = AnalysisManager::disabled();
            for &a in &seq {
                space.apply_with(&mut x, a, &mut am);
            }
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_analysis_fetch,
    bench_pipeline_cache,
    bench_episode_cache
);
criterion_main!(benches);
