//! Criterion benchmarks for the parallel-evaluation layer: `EnvPool` batch
//! throughput, the evaluation cache's exact and prefix-reuse paths, and
//! the incremental feature extractors that make post-pass observations
//! cheap (dirty-function recompute vs whole-module recompute).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cg_core::{ActionSeq, EnvFactory, EnvPool, EvalCache};
use cg_llvm::observation;
use cg_llvm::pass::Touched;

const BENCH: &str = "benchmark://cbench-v1/sha";

fn factory() -> EnvFactory {
    Arc::new(|_| {
        cg_core::CompilerEnv::with_factory(
            "llvm-v0",
            cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?,
            BENCH,
            "Autophase",
            "IrInstructionCount",
            Duration::from_secs(60),
        )
    })
}

fn jobs(n: usize, length: usize) -> Vec<ActionSeq> {
    // Deterministic pseudo-random sequences over a useful pass alphabet.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let probe = factory()(0).unwrap();
    let alphabet: Vec<usize> = [
        "mem2reg",
        "instcombine",
        "gvn",
        "simplifycfg",
        "sccp",
        "dce",
        "licm",
        "adce",
    ]
    .iter()
    .map(|p| probe.action_space().index_of(p).unwrap())
    .collect();
    (0..n)
        .map(|_| ActionSeq {
            benchmark: BENCH.into(),
            actions: (0..length)
                .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                .collect(),
        })
        .collect()
}

fn bench_pool_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_evaluate_batch");
    g.sample_size(10);
    let batch = jobs(16, 8);
    for workers in [1usize, 2, 4] {
        // Disabled cache: every iteration pays full evaluation cost.
        let pool = EnvPool::with_cache(workers, factory(), Arc::new(EvalCache::disabled()));
        let _ = pool.evaluate_batch(batch.clone()); // warm worker envs
        g.bench_function(&format!("cold_{workers}w"), |b| {
            b.iter(|| pool.evaluate_batch(batch.clone()));
        });
    }
    // Warm exact cache: the same batch is answered without running passes.
    let pool = EnvPool::new(2, factory());
    let _ = pool.evaluate_batch(batch.clone());
    g.bench_function("exact_hit_2w", |b| {
        b.iter(|| pool.evaluate_batch(batch.clone()));
    });
    g.finish();
}

fn bench_incremental_observation(c: &mut Criterion) {
    // A many-function module: the incremental path recomputes one dirty
    // function and folds cached per-function vectors, while the full path
    // re-walks every instruction.
    let m = cg_datasets::benchmark("benchmark://cbench-v1/ghostscript").unwrap();
    let mut g = c.benchmark_group("incremental_observation");

    g.bench_function("instcount_full", |b| {
        b.iter(|| observation::inst_count(&m));
    });
    g.bench_function("autophase_full", |b| {
        b.iter(|| observation::autophase(&m));
    });

    // Incremental: one function dirty per recompute (the common post-pass
    // state for function-local passes).
    let dirty = Touched::Funcs(vec![*m.func_ids().first().expect("nonempty module")]);
    let mut feats = observation::IncrementalFeatures::new();
    let _ = feats.inst_count(&m);
    let _ = feats.autophase(&m);
    g.bench_function("instcount_one_dirty_func", |b| {
        b.iter(|| {
            feats.invalidate(&dirty);
            feats.inst_count(&m)
        });
    });
    g.bench_function("autophase_one_dirty_func", |b| {
        b.iter(|| {
            feats.invalidate(&dirty);
            feats.autophase(&m)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pool_throughput,
    bench_incremental_observation
);
criterion_main!(benches);
