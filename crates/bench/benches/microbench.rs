//! Criterion micro-benchmarks for the performance-critical paths behind
//! Tables II and III: environment stepping (incremental vs re-compile
//! architectures, batched RPC), environment initialization (cold vs cached),
//! and each observation space.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_step_architectures(c: &mut Criterion) {
    let uri = "benchmark://cbench-v1/sha";
    let mut g = c.benchmark_group("step_throughput");
    g.sample_size(20);

    let mut env = cg_core::make("llvm-v0").unwrap();
    env.set_benchmark(uri);
    env.reset().unwrap();
    let dce = env.action_space().index_of("dce").unwrap();
    g.bench_function("compilergym_step", |b| {
        b.iter(|| env.step(dce).unwrap());
    });
    let actions = vec![dce; 10];
    g.bench_function("compilergym_step_batched_10", |b| {
        b.iter(|| env.step_batched(&actions).unwrap());
    });

    let mut ap = cg_baselines::AutophaseStyleEnv::new(uri).unwrap();
    for _ in 0..10 {
        ap.step(dce); // give it a prefix so the O(nm) term is visible
    }
    g.bench_function("autophase_style_step", |b| {
        b.iter(|| {
            ap.reset();
            for _ in 0..5 {
                ap.step(dce);
            }
        });
    });
    g.finish();
}

fn bench_env_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("env_init");
    g.sample_size(20);
    let mut env = cg_core::make("llvm-v0").unwrap();
    env.set_benchmark("benchmark://cbench-v1/qsort");
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            cg_core::envs::llvm::clear_benchmark_cache();
            env.reset().unwrap()
        });
    });
    env.reset().unwrap();
    g.bench_function("warm_cache", |b| {
        b.iter(|| env.reset().unwrap());
    });
    g.finish();
}

fn bench_observation_spaces(c: &mut Criterion) {
    let m = cg_datasets::benchmark("benchmark://cbench-v1/sha").unwrap();
    let mut g = c.benchmark_group("observation_spaces");
    g.sample_size(20);
    g.bench_function("ir_text", |b| b.iter(|| cg_llvm::observation::ir_text(&m)));
    g.bench_function("inst_count", |b| {
        b.iter(|| cg_llvm::observation::inst_count(&m))
    });
    g.bench_function("autophase", |b| {
        b.iter(|| cg_llvm::observation::autophase(&m))
    });
    g.bench_function("inst2vec", |b| {
        b.iter(|| cg_llvm::observation::inst2vec(&m))
    });
    g.bench_function("programl", |b| {
        b.iter(|| cg_llvm::observation::programl(&m))
    });
    g.finish();
}

fn bench_pass_pipeline(c: &mut Criterion) {
    let m = cg_datasets::benchmark("benchmark://cbench-v1/crc32").unwrap();
    let mut g = c.benchmark_group("passes");
    g.sample_size(20);
    for name in [
        "mem2reg",
        "gvn",
        "sccp",
        "simplifycfg-aggressive",
        "inline-100",
    ] {
        let pass = cg_llvm::pass::find_pass(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut x = m.clone();
                pass.run(&mut x)
            });
        });
    }
    g.bench_function("full_oz_pipeline", |b| {
        b.iter(|| {
            let mut x = m.clone();
            cg_llvm::pipeline::run_oz(&mut x)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_step_architectures,
    bench_env_init,
    bench_observation_spaces,
    bench_pass_pipeline
);
criterion_main!(benches);
