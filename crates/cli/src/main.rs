//! `cg`: the command-line interface (§III-D) — inspect environments, run
//! random searches, replay and validate saved states, all without writing
//! code.
//!
//! ```text
//! cg describe <env>                         list spaces and actions
//! cg random <env> <benchmark> <steps>       run a random episode
//! cg replay <state.json>                    replay a saved state
//! cg validate <state.json>                  validate reproducibility
//! cg datasets                               list benchmark datasets
//! cg stats [--json] <env> <benchmark> <steps>   episode + telemetry report
//! cg trace <env> <benchmark> <steps>        episode + JSONL trace dump
//! cg trace --episode last [--json]          episode flight-recorder timeline
//! cg export-metrics [env bench steps]       Prometheus / JSONL metrics dump
//! cg chaos [flags]                          soak episodes under fault injection
//! cg fuzz [flags]                           differential pass-pipeline fuzzing
//! cg bench-pool [flags]                     parallel-evaluation throughput report
//! cg stdb <subcommand> <dir>                transition-store maintenance
//! cg bench-stdb [flags]                     replay-vs-live throughput report
//! ```
//!
//! Commands that evaluate environments accept `--stdb DIR` to stream every
//! transition into the durable store at `DIR`; `replay://<env>?dir=DIR`
//! then serves those episodes back at zero compiler cost.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cg describe <env>\n  cg random [--stdb DIR] <env> <benchmark> <steps>\n  \
         cg replay <state.json>\n  cg validate <state.json>\n  cg datasets\n  \
         cg stdb generate <dir> [--episodes N] [--steps N] [--seed S] [--json]\n  \
         cg stdb scrub <dir> [--repair] [--json]\n  \
         cg stdb compact <dir> [--json]\n  \
         cg stdb stats <dir> [--json]\n  \
         cg bench-stdb [--episodes N] [--steps N] [--seed S] [--dir DIR] [--out PATH] [--json]\n  \
         cg stats [--json] [--slo-ms MS] [--no-analysis-cache] [--stdb DIR] <env> <benchmark> <steps>\n  \
         cg bench-ir [--benchmark URI] [--iters N] [--episode-len N] [--out PATH] [--json]\n  \
         cg bench-wire [--benchmark URI] [--episodes N] [--episode-len N] [--window N]\n                \
         [--out PATH] [--json] [--no-gates]\n  \
         cg trace [--episode ID|last] [--json] [--tcp] [--chaos-seed S]\n           \
         [<env> <benchmark> <steps>]\n  \
         cg export-metrics [--jsonl] [--slo-ms MS] [<env> <benchmark> <steps>]\n  \
         cg chaos [--episodes N] [--steps N] [--seed S] [--panic P] [--hang P]\n           \
         [--error P] [--corrupt P] [--wedge P] [--slow-growth P] [--faults LIST]\n           \
         (LIST kinds: panic,hang,error,corrupt,wedge,slow-growth,stampede,io)\n           \
         [--timeout-ms MS] [--checkpoint-k K] [--budget-wall-ms MS] [--max-growth F]\n           \
         [--watchdog-ms MS] [--breaker N] [--breaker-cooldown-ms MS]\n           \
         [--serve-metrics ADDR] [--stdb DIR] [--linger-ms MS] [--json]\n  \
         cg fuzz [--seed-range A..B] [--jobs N] [--profile NAME] [--max-passes N]\n          \
         [--inputs N] [--corpus DIR] [--no-corpus] [--budget-secs N]\n          \
         [--reduce-budget N] [--stdb DIR] [--smoke] [--json]\n  \
         cg bench-pool [--workers LIST] [--evaluations N] [--length N] [--benchmark URI]\n                \
         [--ga-budget N] [--ga-pop N] [--seed S] [--stdb DIR] [--out PATH] [--json]\n  \
         cg serve [--addr A] [--env E|--spin-us US] [--workers N] [--max-sessions N]\n           \
         [--tenant-sessions N] [--tenant-aps R] [--burst B] [--queue-depth N]\n           \
         [--quantum Q] [--max-connections N] [--retry-after-ms MS] [--codec json|binary]\n           \
         [--drain-grace-ms MS] [--serve-metrics ADDR] [--drain] [--drain-after-ms MS]\n  \
         cg loadtest [--workers N] [--victims N] [--noisy-clients N] [--tenant-sessions N]\n              \
         [--spin-us US] [--window-ms MS] [--episode-steps N] [--retry-after-ms MS]\n              \
         [--codec json|binary] [--out PATH] [--json] [--require-shed]\n              \
         [--min-fairness F] [--max-p99-ratio R]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The `replay://` scheme lives in cg-stdb; register it up front so any
    // subcommand can `cg_core::make("replay://...")`.
    cg_stdb::install();
    let result = match args.first().map(String::as_str) {
        Some("describe") => describe(args.get(1).map(String::as_str).unwrap_or("llvm-v0")),
        Some("random") => random(&args[1..]),
        Some("stdb") => stdb_cmd(&args[1..]),
        Some("bench-stdb") => bench_stdb(&args[1..]),
        Some("replay") => replay(args.get(1).map(String::as_str), false),
        Some("validate") => replay(args.get(1).map(String::as_str), true),
        Some("stats") => stats(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("export-metrics") => export_metrics(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("bench-ir") => bench_ir(&args[1..]),
        Some("bench-wire") => bench_wire(&args[1..]),
        Some("bench-pool") => bench_pool(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("loadtest") => loadtest(&args[1..]),
        Some("datasets") => {
            for d in cg_datasets::datasets() {
                println!(
                    "{:<18} {:>12}  {}",
                    d.name,
                    d.len()
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "2^32".into()),
                    d.description
                );
            }
            Ok(())
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn describe(env_id: &str) -> Result<(), Box<dyn std::error::Error>> {
    let env = cg_core::make(env_id)?;
    println!("environment: {env_id}");
    for a in env.action_spaces() {
        println!("action space {:?}: {} actions", a.name, a.len());
        for (i, n) in a.actions.iter().enumerate().take(12) {
            println!("  [{i:>3}] {n}");
        }
        if a.len() > 12 {
            println!("  … {} more", a.len() - 12);
        }
    }
    println!("observation spaces:");
    for o in env.observation_spaces() {
        println!(
            "  {:<24} {:?}{}{}",
            o.name,
            o.kind,
            if o.deterministic {
                ""
            } else {
                ", nondeterministic"
            },
            if o.platform_dependent {
                ", platform-dependent"
            } else {
                ""
            }
        );
    }
    println!("reward spaces:");
    for r in env.reward_spaces() {
        println!(
            "  {:<24} metric={}{}",
            r.name,
            r.metric,
            r.baseline
                .as_deref()
                .map(|b| format!(", scaled by {b}"))
                .unwrap_or_default()
        );
    }
    Ok(())
}

fn random(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut stdb_dir: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdb" => {
                stdb_dir = Some(it.next().ok_or("--stdb needs a directory")?.clone());
            }
            _ => positional.push(a),
        }
    }
    let ep = episode_args(&positional);
    let store = stdb_dir.as_deref().map(install_stdb_sink).transpose()?;
    let mut env = cg_core::make(&ep.env)?;
    env.set_benchmark(&ep.bench);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..ep.steps {
        let a = rng.gen_range(0..n);
        let step = env.step(a)?;
        if step.reward != 0.0 {
            println!("{:<28} {:+.4}", env.action_space().actions[a], step.reward);
        }
    }
    println!("episode reward: {:+.4}", env.episode_reward());
    println!("state:\n{}", env.state().to_json());
    drop(env);
    if let Some(store) = store {
        store.flush();
        let s = store.stats();
        println!(
            "stdb: {} step(s), {} observation(s), {} dropped → {}",
            s.steps, s.observations, s.dropped_records, s.dir
        );
        cg_core::clear_transition_sink();
    }
    Ok(())
}

/// The benchmark rotation every soak and store-generation command shares.
const SOAK_BENCHMARKS: [&str; 4] = [
    "benchmark://cbench-v1/qsort",
    "benchmark://cbench-v1/crc32",
    "benchmark://cbench-v1/sha",
    "benchmark://cbench-v1/bitcount",
];

/// Opens the transition store at `dir` through the shared registry and
/// installs it as the process-global transition sink, so every environment
/// evaluation that follows is appended to the durable log.
fn install_stdb_sink(
    dir: &str,
) -> Result<std::sync::Arc<cg_stdb::TransitionStore>, Box<dyn std::error::Error>> {
    let store = cg_stdb::TransitionStore::open_shared(
        std::path::Path::new(dir),
        cg_stdb::StoreConfig::default(),
    )?;
    cg_core::install_transition_sink(std::sync::Arc::new(cg_stdb::StoreSink(
        std::sync::Arc::clone(&store),
    )));
    Ok(store)
}

/// Runs one deterministic episode (the same action schedule `cg chaos`
/// uses), returning the episode reward. Live and replay environments fed
/// the same `(seed, ep, steps)` walk identical trajectories, which is what
/// makes the replay-vs-live comparison meaningful.
fn seeded_episode(
    env: &mut cg_core::CompilerEnv,
    seed: u64,
    ep: u64,
    steps: u64,
) -> Result<f64, cg_core::CgError> {
    use cg_core::retry::splitmix64;
    env.reset()?;
    let n = env.action_space().len() as u64;
    for s in 0..steps {
        let a = (splitmix64(seed ^ (ep * 1_000 + s).wrapping_mul(0x9E37)) % n) as usize;
        if env.step(a)?.done {
            break;
        }
    }
    Ok(env.episode_reward())
}

/// Drives one random episode so the telemetry layer has something to report.
fn run_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use rand::Rng as _;
    let mut env = cg_core::make(env_id)?;
    env.set_benchmark(benchmark);
    env.reset()?;
    let mut rng = rand::thread_rng();
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    Ok(())
}

/// Renders microseconds human-readably (µs / ms / s).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Splits a flag-bearing argument list into recognized flags and the
/// positional `<env> <benchmark> <steps>` triple every reporting
/// subcommand shares.
struct EpisodeArgs {
    env: String,
    bench: String,
    steps: usize,
}

fn episode_args(positional: &[&String]) -> EpisodeArgs {
    EpisodeArgs {
        env: positional
            .first()
            .map(|s| s.as_str())
            .unwrap_or("llvm-v0")
            .to_string(),
        bench: positional
            .get(1)
            .map(|s| s.as_str())
            .unwrap_or("benchmark://cbench-v1/qsort")
            .to_string(),
        steps: positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(50),
    }
}

fn stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Duration;

    let mut json = false;
    let mut slo_ms: Option<u64> = None;
    let mut stdb_dir: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--slo-ms" => {
                slo_ms = Some(it.next().ok_or("--slo-ms needs a value")?.parse()?);
            }
            "--stdb" => {
                stdb_dir = Some(it.next().ok_or("--stdb needs a directory")?.clone());
            }
            "--no-analysis-cache" => cg_ir::am::set_cache_disabled(true),
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);
    let (env_id, benchmark, steps) = (&ep_args.env, &ep_args.bench, ep_args.steps);

    let tel = cg_telemetry::global();
    tel.reset();
    cg_ir::am::reset_cache_stats();
    if let Some(ms) = slo_ms {
        tel.slo.configure(Duration::from_millis(ms), 0.99);
    }
    let store = stdb_dir.as_deref().map(install_stdb_sink).transpose()?;
    run_episode(env_id, benchmark, steps)?;
    if let Some(store) = store {
        store.flush();
        cg_core::clear_transition_sink();
    }
    let snap = tel.snapshot();
    let cache = cg_ir::am::cache_stats();
    if json {
        use serde::value::Value;
        use serde::Serialize;
        let mut v = snap.to_value();
        if let Value::Object(fields) = &mut v {
            fields.push((
                "analysis_cache".to_string(),
                Value::Object(vec![
                    ("hits".to_string(), Value::UInt(cache.hits)),
                    ("misses".to_string(), Value::UInt(cache.misses)),
                    (
                        "invalidations".to_string(),
                        Value::UInt(cache.invalidations),
                    ),
                    ("hit_rate".to_string(), Value::Float(cache.hit_rate())),
                    ("noop_skips".to_string(), Value::UInt(cache.noop_skips)),
                ]),
            ));
        }
        println!("{}", serde_json::to_string_pretty(&v)?);
        return Ok(());
    }
    println!("telemetry for {env_id} on {benchmark} ({steps} random steps)\n");
    println!("service requests:");
    println!(
        "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kind", "count", "p50", "p90", "p99", "max", "errors"
    );
    for (kind, h) in &snap.requests {
        let errors = snap.request_errors.get(kind).copied().unwrap_or(0);
        println!(
            "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7}",
            kind,
            h.count,
            fmt_us(h.p50_micros),
            fmt_us(h.p90_micros),
            fmt_us(h.p99_micros),
            fmt_us(h.max_micros),
            errors
        );
    }
    println!(
        "\nservice health: restarts={} panics={} timeouts={} in-flight={}",
        snap.restarts, snap.panics, snap.timeouts, snap.in_flight
    );
    println!(
        "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
         breaker trips={} half-opens={} fast-fails={}",
        snap.checkpoints_taken,
        snap.checkpoint_restores,
        snap.budget_kills,
        snap.watchdog_restarts,
        snap.breaker_trips,
        snap.breaker_half_opens,
        snap.breaker_fast_fails
    );
    let ep = &snap.episode;
    let changed_pct = if ep.actions_total == 0 {
        0.0
    } else {
        100.0 * ep.actions_changed as f64 / ep.actions_total as f64
    };
    println!(
        "\nepisode: episodes={} steps={} actions={} changed={:.0}% reward={:+.4}",
        ep.episodes, ep.steps, ep.actions_total, changed_pct, ep.reward_sum
    );
    println!(
        "  reset  p50={} max={}",
        fmt_us(ep.reset_wall.p50_micros),
        fmt_us(ep.reset_wall.max_micros)
    );
    println!(
        "  step   p50={} p99={} max={}",
        fmt_us(ep.step_wall.p50_micros),
        fmt_us(ep.step_wall.p99_micros),
        fmt_us(ep.step_wall.max_micros)
    );
    let pool = &snap.pool;
    let total_actions = pool.actions_executed + pool.actions_saved;
    let saved_pct = if total_actions == 0 {
        0.0
    } else {
        100.0 * pool.actions_saved as f64 / total_actions as f64
    };
    println!(
        "\npool: workers={} jobs={} errors={} panics={} queue-depth={}",
        pool.workers, pool.jobs, pool.job_errors, pool.job_panics, pool.queue_depth
    );
    println!(
        "  cache: hits={} misses={} prefix-hits={} evictions={}",
        pool.cache_hits, pool.cache_misses, pool.prefix_hits, pool.evictions
    );
    println!(
        "  actions: executed={} saved={} ({saved_pct:.0}% saved)",
        pool.actions_executed, pool.actions_saved
    );
    if pool.jobs > 0 {
        println!(
            "  batch p50={} max={}  job p50={} p99={}",
            fmt_us(pool.batch_wall.p50_micros),
            fmt_us(pool.batch_wall.max_micros),
            fmt_us(pool.job_wall.p50_micros),
            fmt_us(pool.job_wall.p99_micros)
        );
    }
    if !snap.observations.is_empty() {
        println!("\nobservations:");
        for (name, h) in &snap.observations {
            println!(
                "  {:<24} count={:<5} p50={} p99={}",
                name,
                h.count,
                fmt_us(h.p50_micros),
                fmt_us(h.p99_micros)
            );
        }
    }
    if !snap.passes.is_empty() {
        println!("\ntop passes by total time:");
        let mut passes: Vec<_> = snap.passes.iter().collect();
        passes.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_micros));
        for (name, p) in passes.iter().take(15) {
            println!(
                "  {:<28} calls={:<4} total={:<9} p50={:<8} p99={:<8} changed={:<4} Δinst={:+}",
                name,
                p.calls,
                fmt_us(p.total_micros),
                fmt_us(p.p50_micros),
                fmt_us(p.p99_micros),
                p.changed,
                p.inst_delta
            );
        }
    }
    println!(
        "\nanalysis cache: hits={} misses={} invalidations={} hit-rate={:.1}% noop-skips={}",
        cache.hits,
        cache.misses,
        cache.invalidations,
        100.0 * cache.hit_rate(),
        cache.noop_skips
    );
    let sdb = &snap.stdb;
    if sdb.ingest_records
        + sdb.dropped_records
        + sdb.replay_hits
        + sdb.replay_misses
        + sdb.quarantined_records
        + sdb.checkpoint_rejects
        > 0
    {
        println!("\ntransition store:");
        println!(
            "  ingest: records={} bytes={} dropped={} retries={} append p50={} p99={}",
            sdb.ingest_records,
            sdb.ingest_bytes,
            sdb.dropped_records,
            sdb.append_retries,
            fmt_us(sdb.append_wall.p50_micros),
            fmt_us(sdb.append_wall.p99_micros)
        );
        let served = sdb.replay_hits + sdb.replay_misses;
        if served > 0 {
            println!(
                "  replay: hits={} misses={} hit-rate={:.1}%",
                sdb.replay_hits,
                sdb.replay_misses,
                100.0 * sdb.replay_hits as f64 / served as f64
            );
        }
        println!(
            "  integrity: torn-tails={} quarantined={} scrub ok={} corrupt={} repaired={} \
             checkpoint-rejects={} compactions={}",
            sdb.torn_tails,
            sdb.quarantined_records,
            sdb.scrub_ok,
            sdb.scrub_corrupt,
            sdb.scrub_repaired,
            sdb.checkpoint_rejects,
            sdb.compactions
        );
        println!("  wal: segments={} bytes={}", sdb.segments, sdb.store_bytes);
    }
    if snap.fuzz.cases > 0 {
        println!(
            "\nfuzz: cases={} divergences={} shrunk={} verifier-rejects={} pass-panics={}",
            snap.fuzz.cases,
            snap.fuzz.divergences,
            snap.fuzz.shrunk,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics
        );
        let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
        blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for (pass, n) in blame.iter().take(10) {
            println!("  blame {pass:<26} {n}");
        }
    }
    if snap.slo.objective_micros > 0 {
        println!(
            "\nslo: step objective {} at {:.2}% target",
            fmt_us(snap.slo.objective_micros),
            100.0 * snap.slo.target
        );
        println!(
            "  good={} bad={} compliance={:.2}% burn-rate={:.2}x",
            snap.slo.good,
            snap.slo.bad,
            100.0 * snap.slo.compliance,
            snap.slo.burn_rate
        );
    }
    println!(
        "\ntrace: {} buffered event(s), {} dropped (see `cg trace`)",
        snap.trace_events, snap.trace_dropped
    );
    println!(
        "  flight recorder: episodes recorded={} dropped={} span-drops={}",
        snap.episodes_recorded, snap.episodes_dropped, snap.episode_spans_dropped
    );
    // Per-family event counts: the prefix before the first `:` groups span
    // names into subsystems (env, rpc, service, pass, ...).
    let mut families: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for ev in tel.trace.events() {
        let family = ev.span.split(':').next().unwrap_or(&ev.span).to_string();
        *families.entry(family).or_insert(0) += 1;
    }
    if !families.is_empty() {
        let rendered: Vec<String> = families.iter().map(|(f, n)| format!("{f}={n}")).collect();
        println!("  events by family: {}", rendered.join(" "));
    }
    Ok(())
}

fn trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = false;
    let mut tcp = false;
    let mut episode: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--tcp" => tcp = true,
            "--episode" => {
                episode = Some(it.next().ok_or("--episode needs an id or `last`")?.clone());
            }
            "--chaos-seed" => {
                chaos_seed = Some(it.next().ok_or("--chaos-seed needs a value")?.parse()?);
            }
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);

    let tel = cg_telemetry::global();
    tel.reset();
    let ran = if tcp || chaos_seed.is_some() {
        run_traced_episode(&ep_args.env, &ep_args.bench, ep_args.steps, tcp, chaos_seed)?
    } else {
        run_episode(&ep_args.env, &ep_args.bench, ep_args.steps)?;
        tel.trace.recorder().last_episode_id()
    };

    let Some(selector) = episode else {
        // Legacy surface: the raw trace ring as JSONL, one event per line.
        print!("{}", tel.trace.export_jsonl());
        return Ok(());
    };
    let id = if selector == "last" {
        ran.or_else(|| tel.trace.recorder().last_episode_id())
            .ok_or("no episode recorded")?
    } else {
        selector.parse()?
    };
    let record = tel
        .trace
        .recorder()
        .episode(id)
        .ok_or_else(|| format!("episode {id} is not in the flight recorder"))?;
    if json {
        println!("{}", serde_json::to_string_pretty(&record)?);
    } else {
        render_episode(&record);
    }
    Ok(())
}

/// Runs one random episode with the service reached over a loopback TCP
/// socket (`--tcp`) and/or a seeded fault plan (`--chaos-seed`), so the
/// recorded span trees demonstrate cross-boundary propagation and the
/// recovery ladder. Returns the flight-recorder episode id.
fn run_traced_episode(
    env_id: &str,
    benchmark: &str,
    steps: usize,
    tcp: bool,
    chaos_seed: Option<u64>,
) -> Result<Option<u64>, Box<dyn std::error::Error>> {
    use rand::{Rng as _, SeedableRng as _};
    use std::time::Duration;

    let inner = cg_core::envs::session_factory(env_id).map_err(cg_core::CgError::Unknown)?;
    let timeout = if chaos_seed.is_some() {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(60)
    };
    let factory = match chaos_seed {
        Some(seed) => {
            quiet_chaos_panics();
            // Guaranteed faults (not probabilistic sampling): a session
            // panic at the 6th apply and, over TCP, a hang at the 10th, so
            // a short episode demonstrably exercises the recovery ladder.
            let mut plan = cg_core::chaos::FaultPlan::seeded(seed)
                .schedule(5, cg_core::chaos::FaultKind::Panic)
                .with_hang_duration(timeout * 6)
                .with_max_faults(4);
            if tcp && steps >= 10 {
                plan = plan.schedule(9, cg_core::chaos::FaultKind::Hang);
            }
            plan.wrap(inner).0
        }
        None => inner,
    };
    let mut env = if tcp {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        std::thread::spawn(move || cg_core::service::serve_tcp(listener, factory));
        cg_core::CompilerEnv::connect_tcp(
            env_id,
            &addr,
            benchmark,
            "Autophase",
            "IrInstructionCount",
            timeout,
        )?
    } else {
        cg_core::CompilerEnv::with_factory(
            env_id,
            factory,
            benchmark,
            "Autophase",
            "IrInstructionCount",
            timeout,
        )?
    };
    env.set_retry_policy(
        cg_core::RetryPolicy::default()
            .with_max_attempts(8)
            .with_backoff(Duration::from_millis(5), Duration::from_millis(100)),
    );
    env.set_checkpoint_interval(4);
    env.reset()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(chaos_seed.unwrap_or(7) ^ 0xCAFE);
    let n = env.action_space().len();
    for _ in 0..steps {
        let a = rng.gen_range(0..n);
        if env.step(a)?.done {
            break;
        }
    }
    env.close();
    Ok(cg_telemetry::global().trace.recorder().last_episode_id())
}

/// Renders a recorded episode as an indented span-tree timeline: offsets
/// relative to the episode start, one subtree per trace, children ordered
/// by start time.
fn render_episode(record: &cg_telemetry::EpisodeRecord) {
    use std::collections::HashMap;

    println!(
        "episode {} — {} on {}",
        record.episode_id, record.env_id, record.benchmark
    );
    let ended = if record.ended_micros == 0 {
        "still open".to_string()
    } else {
        format!(
            "{} total",
            fmt_us(record.ended_micros.saturating_sub(record.started_micros))
        )
    };
    println!(
        "{} trace(s), {} span(s), {} span(s) dropped, {ended}\n",
        record.trace_ids.len(),
        record.spans.len(),
        record.dropped_spans
    );

    let ids: std::collections::HashSet<u64> = record.spans.iter().map(|s| s.span_id).collect();
    let mut children: HashMap<Option<u64>, Vec<&cg_telemetry::SpanRecord>> = HashMap::new();
    for s in &record.spans {
        // Spans whose parent fell out of the ring render as roots.
        let key = s.parent_id.filter(|p| ids.contains(p));
        children.entry(key).or_default().push(s);
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_micros, s.seq));
    }
    let mut stack: Vec<(&cg_telemetry::SpanRecord, usize)> = Vec::new();
    for root in children.get(&None).cloned().unwrap_or_default() {
        stack.push((root, 0));
        while let Some((span, depth)) = stack.pop() {
            let offset = span.start_micros.saturating_sub(record.started_micros);
            let status = match span.status {
                cg_telemetry::SpanStatus::Ok => String::new(),
                other => format!(" [{other:?}]"),
            };
            let detail = if span.detail.is_empty() {
                String::new()
            } else {
                format!("  {}", span.detail)
            };
            let attrs = if span.attrs.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  {{{}}}", kv.join(", "))
            };
            println!(
                "{:>9} {:indent$}{} ({}){status}{detail}{attrs}",
                format!("+{}", fmt_us(offset)),
                "",
                span.span,
                fmt_us(span.dur_micros),
                indent = depth * 2,
            );
            if let Some(kids) = children.get(&Some(span.span_id)) {
                // Reverse so the earliest child pops first.
                for kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
    }
}

/// The `cg export-metrics` surface: drive one random episode, then dump the
/// full registry in Prometheus text exposition format (default) or as JSONL
/// (`--jsonl`), for scraping-free ingestion into files and pipelines.
fn export_metrics(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Duration;

    let mut jsonl = false;
    let mut slo_ms: Option<u64> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jsonl" => jsonl = true,
            "--slo-ms" => {
                slo_ms = Some(it.next().ok_or("--slo-ms needs a value")?.parse()?);
            }
            _ => positional.push(a),
        }
    }
    let ep_args = episode_args(&positional);

    let tel = cg_telemetry::global();
    tel.reset();
    tel.slo
        .configure(Duration::from_millis(slo_ms.unwrap_or(250)), 0.99);
    run_episode(&ep_args.env, &ep_args.bench, ep_args.steps)?;
    let snap = tel.snapshot();
    if jsonl {
        print!("{}", cg_telemetry::export::metrics_jsonl(&snap));
    } else {
        print!("{}", cg_telemetry::export::prometheus_text(&snap));
    }
    Ok(())
}

/// Silences the default panic backtrace for chaos-injected panics (they are
/// the point of the exercise, not noise worth a stack trace).
fn quiet_chaos_panics() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !msg.starts_with("chaos:") {
            prev_hook(info);
        }
    }));
}

/// The `cg fuzz` surface: differential pass-pipeline fuzzing with the
/// `cg-difftest` engine. Samples random programs and random pipelines over
/// the full action space, judges each with the interpreter oracle, shrinks
/// any divergence to a minimal reproducer in the corpus directory, and
/// exits non-zero if anything diverged. `--smoke` is the CI configuration:
/// a fixed seed range under a strict wall-clock budget.
fn fuzz(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_difftest::{run_fuzz, FuzzConfig};
    use std::time::Duration;

    let mut cfg = FuzzConfig {
        jobs: 4,
        corpus_dir: Some(cg_difftest::repro::default_corpus_dir()),
        ..FuzzConfig::default()
    };
    let mut json = false;
    let mut stdb_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--seed-range" => {
                let raw = val("--seed-range")?;
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| format!("--seed-range wants A..B, got `{raw}`"))?;
                cfg.seed_start = a.parse()?;
                cfg.seed_end = b.parse()?;
            }
            "--jobs" => cfg.jobs = val("--jobs")?.parse()?,
            "--profile" => {
                let name = val("--profile")?.clone();
                if cg_datasets::synth::Profile::named(&name).is_none() {
                    return Err(format!(
                        "unknown profile `{name}` (available: {})",
                        cg_datasets::synth::FUZZ_PROFILES.join(", ")
                    )
                    .into());
                }
                cfg.profile = Some(name);
            }
            "--max-passes" => cfg.max_passes = val("--max-passes")?.parse()?,
            "--inputs" => cfg.extra_inputs = val("--inputs")?.parse()?,
            "--corpus" => cfg.corpus_dir = Some(val("--corpus")?.into()),
            "--no-corpus" => cfg.corpus_dir = None,
            "--budget-secs" => {
                cfg.budget = Some(Duration::from_secs(val("--budget-secs")?.parse()?));
            }
            "--reduce-budget" => cfg.reduce_budget = val("--reduce-budget")?.parse()?,
            "--stdb" => stdb_dir = Some(val("--stdb")?.clone()),
            "--smoke" => {
                // The CI configuration: fixed seeds, bounded wall-clock.
                cfg.seed_start = 0;
                cfg.seed_end = 500;
                cfg.budget = Some(Duration::from_secs(60));
            }
            "--json" => json = true,
            other => return Err(format!("unknown fuzz flag `{other}`").into()),
        }
    }

    let tel = cg_telemetry::global();
    tel.reset();
    // Any environment the fuzzer's repro pipeline steps through flows into
    // the store; heavy work stays on the store's writer thread.
    let store = stdb_dir.as_deref().map(install_stdb_sink).transpose()?;
    let report = run_fuzz(&cfg);
    if let Some(store) = store {
        store.flush();
        cg_core::clear_transition_sink();
    }
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct DivJson {
            seed: u64,
            profile: String,
            deopt: bool,
            pipeline: Vec<String>,
            failure: String,
            ir_lines: usize,
            repro: Option<String>,
        }
        #[derive(serde::Serialize)]
        struct FuzzJson {
            cases: u64,
            skipped: u64,
            elapsed_ms: u64,
            divergences: Vec<DivJson>,
            telemetry: cg_telemetry::FuzzSnapshot,
        }
        let out = FuzzJson {
            cases: report.cases,
            skipped: report.skipped,
            elapsed_ms: report.elapsed.as_millis() as u64,
            divergences: report
                .divergences
                .iter()
                .map(|d| DivJson {
                    seed: d.seed,
                    profile: d.profile.clone(),
                    deopt: d.deopt,
                    pipeline: d.pipeline.clone(),
                    failure: d.failure.clone(),
                    ir_lines: d.ir_lines,
                    repro: d.repro_path.as_ref().map(|p| p.display().to_string()),
                })
                .collect(),
            telemetry: snap.fuzz.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!(
            "fuzz: {} case(s) over seeds {}..{} ({} job(s)) in {:.1}s{}",
            report.cases,
            cfg.seed_start,
            cfg.seed_end,
            cfg.jobs,
            report.elapsed.as_secs_f64(),
            if report.skipped > 0 {
                format!(", {} seed(s) skipped on budget", report.skipped)
            } else {
                String::new()
            }
        );
        println!(
            "  oracle comparisons={} verifier-rejects={} pass-panics={} divergences={} shrunk={}",
            snap.fuzz.oracle_runs,
            snap.fuzz.verifier_rejects,
            snap.fuzz.pass_panics,
            snap.fuzz.divergences,
            snap.fuzz.shrunk
        );
        println!(
            "  case wall p50={} p99={}",
            fmt_us(snap.fuzz.case_wall.p50_micros),
            fmt_us(snap.fuzz.case_wall.p99_micros)
        );
        if !snap.fuzz.blame.is_empty() {
            println!("\nper-pass blame (appearances in minimal pipelines):");
            let mut blame: Vec<_> = snap.fuzz.blame.iter().collect();
            blame.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
            for (pass, n) in blame.iter().take(15) {
                println!("  {pass:<28} {n}");
            }
        }
        for d in &report.divergences {
            println!(
                "\nseed {} [{}{}]: {}",
                d.seed,
                d.profile,
                if d.deopt { ", deopt" } else { "" },
                d.failure
            );
            println!(
                "  pipeline: {} (sampled {})",
                d.pipeline.join(" "),
                d.original_pipeline.len()
            );
            println!("  reduced IR: {} line(s)", d.ir_lines);
            if let Some(p) = &d.repro_path {
                println!("  reproducer: {}", p.display());
            }
        }
    }
    if !report.clean() {
        return Err(format!("{} divergence(s) found", report.divergences.len()).into());
    }
    Ok(())
}

/// The `cg chaos` soak harness: run llvm-v0 episodes with a seeded fault
/// load (injected panics, hangs, backend errors, corrupted replies) and
/// report how many faults the runtime recovered from transparently. Exits
/// non-zero when any episode failed in a way recovery should have absorbed.
fn chaos(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::chaos::FaultPlan;
    use cg_core::retry::splitmix64;
    use std::time::Duration;

    let mut episodes: u64 = 20;
    let mut steps: u64 = 10;
    let mut seed: u64 = 7;
    let mut panic_prob = 0.04;
    let mut hang_prob = 0.02;
    let mut error_prob = 0.0;
    let mut corrupt_prob = 0.0;
    let mut wedge_prob = 0.0;
    let mut slow_growth_prob = 0.0;
    let mut timeout_ms: u64 = 400;
    // Containment knobs (the server-side half of the recovery ladder).
    let mut checkpoint_k: u64 = 10;
    let mut budget_wall_ms: u64 = 0;
    let mut max_growth: f64 = 0.0;
    let mut watchdog_ms: u64 = 0;
    let mut breaker_threshold: u32 = 0;
    let mut breaker_cooldown_ms: u64 = 250;
    let mut serve_metrics_addr: Option<String> = None;
    let mut linger_ms: u64 = 0;
    let mut stampede = false;
    let mut io_faults = false;
    let mut stdb_dir: Option<String> = None;
    let mut stampede_size: usize = 32;
    let mut soak_ms: u64 = 1_500;
    let mut json = false;
    let mut codec = cg_core::WireCodec::Binary;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--episodes" => episodes = val("--episodes")?.parse()?,
            "--steps" => steps = val("--steps")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--panic" => panic_prob = val("--panic")?.parse()?,
            "--hang" => hang_prob = val("--hang")?.parse()?,
            "--error" => error_prob = val("--error")?.parse()?,
            "--corrupt" => corrupt_prob = val("--corrupt")?.parse()?,
            "--wedge" => wedge_prob = val("--wedge")?.parse()?,
            "--slow-growth" => slow_growth_prob = val("--slow-growth")?.parse()?,
            // Fault-kind matrix selector: zero every probability, then give
            // each listed kind its default load.
            "--faults" => {
                panic_prob = 0.0;
                hang_prob = 0.0;
                error_prob = 0.0;
                corrupt_prob = 0.0;
                wedge_prob = 0.0;
                slow_growth_prob = 0.0;
                for kind in val("--faults")?.split(',').filter(|s| !s.is_empty()) {
                    match kind {
                        "panic" => panic_prob = 0.05,
                        "hang" => hang_prob = 0.04,
                        "error" => error_prob = 0.05,
                        "corrupt" => corrupt_prob = 0.04,
                        "wedge" => wedge_prob = 0.03,
                        "slow-growth" => slow_growth_prob = 0.10,
                        "stampede" => stampede = true,
                        "io" => io_faults = true,
                        other => return Err(format!("unknown fault kind `{other}`").into()),
                    }
                }
            }
            "--timeout-ms" => timeout_ms = val("--timeout-ms")?.parse()?,
            "--checkpoint-k" => checkpoint_k = val("--checkpoint-k")?.parse()?,
            "--budget-wall-ms" => budget_wall_ms = val("--budget-wall-ms")?.parse()?,
            "--max-growth" => max_growth = val("--max-growth")?.parse()?,
            "--watchdog-ms" => watchdog_ms = val("--watchdog-ms")?.parse()?,
            "--breaker" => breaker_threshold = val("--breaker")?.parse()?,
            "--breaker-cooldown-ms" => {
                breaker_cooldown_ms = val("--breaker-cooldown-ms")?.parse()?;
            }
            "--serve-metrics" => serve_metrics_addr = Some(val("--serve-metrics")?.clone()),
            "--stdb" => stdb_dir = Some(val("--stdb")?.clone()),
            "--linger-ms" => linger_ms = val("--linger-ms")?.parse()?,
            "--stampede-size" => stampede_size = val("--stampede-size")?.parse()?,
            "--soak-ms" => soak_ms = val("--soak-ms")?.parse()?,
            "--json" => json = true,
            "--codec" => codec = val("--codec")?.parse::<cg_core::WireCodec>()?,
            other => return Err(format!("unknown chaos flag `{other}`").into()),
        }
    }
    // `--faults stampede` switches to the front-door soak: a broker-mode
    // server with established tenants, hit by bursts of simultaneous
    // connects. Per-apply fault kinds don't exist there.
    if stampede {
        return chaos_stampede(StampedeOpts {
            soak_ms,
            stampede_size,
            seed,
            json,
            serve_metrics_addr,
            linger_ms,
            codec,
        });
    }
    // `--faults io` targets the transition store's disk path instead of the
    // compiler service: torn writes and ENOSPC during ingest, short reads
    // and bit flips during recovery, then a replay pass over the damaged
    // store. Per-apply fault kinds don't exist there either.
    if io_faults {
        return chaos_io(IoSoakOpts {
            episodes,
            steps,
            seed,
            json,
            dir: stdb_dir,
        });
    }

    // Each fault kind needs its matching containment rung; wire the default
    // when the user selected the fault but no explicit limit.
    if slow_growth_prob > 0.0 && max_growth == 0.0 {
        max_growth = 2.0;
    }
    if hang_prob > 0.0 && budget_wall_ms == 0 {
        budget_wall_ms = timeout_ms / 2;
    }
    if wedge_prob > 0.0 && watchdog_ms == 0 {
        watchdog_ms = timeout_ms / 4;
    }

    // Injected panics are expected here; keep their default backtrace spew
    // out of the soak output.
    quiet_chaos_panics();

    let tel = cg_telemetry::global();
    tel.reset();
    // Scrape endpoint over the live registry: up while the soak runs (and,
    // with --linger-ms, for a grace period after), so external collectors
    // can observe a fault-injected run end to end.
    if let Some(addr) = &serve_metrics_addr {
        let bound = cg_telemetry::export::spawn_metrics_server(addr)?;
        eprintln!("serving metrics on http://{bound}/metrics");
    }
    let timeout = Duration::from_millis(timeout_ms.max(50));
    // Hangs must exceed the client deadline to register as faults; the
    // budget guarantees an adversarial plan eventually lets recovery win.
    let plan = FaultPlan::seeded(seed)
        .with_panic_prob(panic_prob)
        .with_hang_prob(hang_prob)
        .with_error_prob(error_prob)
        .with_corrupt_prob(corrupt_prob)
        .with_wedge_prob(wedge_prob)
        .with_slow_growth_prob(slow_growth_prob)
        .with_hang_duration(timeout * 6)
        .with_max_faults(episodes.saturating_mul(2).max(4));
    let inner = cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?;
    let (factory, stats) = plan.wrap(inner);
    let mut env = cg_core::CompilerEnv::with_factory(
        "llvm-v0",
        factory,
        "benchmark://cbench-v1/qsort",
        "Autophase",
        "IrInstructionCount",
        timeout,
    )?;
    env.set_retry_policy(
        cg_core::RetryPolicy::default()
            .with_max_attempts(10)
            .with_backoff(Duration::from_millis(5), Duration::from_millis(200)),
    );
    // Containment wiring. The default checkpoint interval is already K=10;
    // only replace the store for a non-default K (replacing restarts the
    // service, which would pollute the restart counters below).
    if checkpoint_k != cg_core::checkpoint::DEFAULT_CHECKPOINT_INTERVAL {
        env.set_checkpoint_interval(checkpoint_k);
    }
    if budget_wall_ms > 0 || max_growth > 0.0 {
        let mut budget = cg_core::ResourceBudget::default();
        if budget_wall_ms > 0 {
            budget = budget.with_step_wall(Duration::from_millis(budget_wall_ms));
        }
        if max_growth > 0.0 {
            budget = budget.with_max_growth(max_growth);
        }
        env.set_resource_budget(budget)?;
    }
    if watchdog_ms > 0 {
        env.enable_watchdog(cg_core::WatchdogConfig {
            interval: Duration::from_millis(watchdog_ms),
            probe_deadline: Duration::from_millis((watchdog_ms / 2).max(10)),
            misses: 2,
        });
    }
    let breaker = (breaker_threshold > 0).then(|| {
        cg_core::CircuitBreaker::new(
            breaker_threshold,
            Duration::from_millis(breaker_cooldown_ms),
        )
    });
    if let Some(br) = &breaker {
        env.set_circuit_breaker(br.clone());
    }

    let mut completed = 0u64;
    let mut session_errors = 0u64;
    let mut circuit_rejections = 0u64;
    let mut unrecovered: Vec<String> = Vec::new();
    for ep in 0..episodes {
        env.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        if let Err(e) = env.reset() {
            unrecovered.push(format!("episode {ep}: reset: {e}"));
            continue;
        }
        let n = env.action_space().len() as u64;
        let mut ok = true;
        for s in 0..steps {
            let a = (splitmix64(seed ^ (ep * 1_000 + s).wrapping_mul(0x9E37)) % n) as usize;
            match env.step(a) {
                Ok(step) if step.done => break,
                Ok(_) => {}
                // Backend errors are legitimate episode outcomes, not
                // recovery failures (only injected when --error is set).
                Err(cg_core::CgError::Session(_)) => {
                    session_errors += 1;
                    ok = false;
                    break;
                }
                // A quarantined pair fast-failing is the breaker doing its
                // job, not a recovery failure: skip the action and go on.
                Err(cg_core::CgError::CircuitOpen { .. }) => {
                    circuit_rejections += 1;
                }
                Err(e) => {
                    unrecovered.push(format!("episode {ep} step {s}: {e}"));
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            completed += 1;
        }
    }
    // The breaker contract requires open circuits to eventually allow a
    // half-open probe. If the soak never demonstrated it, drive it: wait
    // out the cooldown and probe every quarantined pair.
    let mut breaker_never_half_opened = false;
    if let Some(br) = &breaker {
        if br.trips() > 0 && br.half_opens() == 0 {
            std::thread::sleep(Duration::from_millis(breaker_cooldown_ms + 50));
            for (b, a) in br.open_circuits() {
                let _ = br.admit(&b, a);
            }
            breaker_never_half_opened = br.half_opens() == 0;
        }
    }
    let snap = tel.snapshot();

    if json {
        #[derive(serde::Serialize)]
        struct ChaosReport {
            episodes: u64,
            completed: u64,
            session_errors: u64,
            circuit_rejections: u64,
            unrecovered: Vec<String>,
            injected_panics: u64,
            injected_hangs: u64,
            injected_errors: u64,
            injected_corruptions: u64,
            injected_wedges: u64,
            injected_slow_growths: u64,
            recoveries: u64,
            restarts: u64,
            replay_divergences: u64,
            timeouts: u64,
            service_panics: u64,
            checkpoints_taken: u64,
            checkpoint_restores: u64,
            budget_kills: u64,
            watchdog_restarts: u64,
            breaker_trips: u64,
            breaker_half_opens: u64,
            breaker_fast_fails: u64,
            breaker_never_half_opened: bool,
        }
        let report = ChaosReport {
            episodes,
            completed,
            session_errors,
            circuit_rejections,
            unrecovered: unrecovered.clone(),
            injected_panics: stats.panics(),
            injected_hangs: stats.hangs(),
            injected_errors: stats.errors(),
            injected_corruptions: stats.corruptions(),
            injected_wedges: stats.wedges(),
            injected_slow_growths: stats.slow_growths(),
            recoveries: snap.recoveries,
            restarts: snap.restarts,
            replay_divergences: snap.replay_divergences,
            timeouts: snap.timeouts,
            service_panics: snap.panics,
            checkpoints_taken: snap.checkpoints_taken,
            checkpoint_restores: snap.checkpoint_restores,
            budget_kills: snap.budget_kills,
            watchdog_restarts: snap.watchdog_restarts,
            breaker_trips: snap.breaker_trips,
            breaker_half_opens: snap.breaker_half_opens,
            breaker_fast_fails: snap.breaker_fast_fails,
            breaker_never_half_opened,
        };
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("chaos soak: seed={seed} episodes={episodes} steps={steps}");
        println!(
            "injected faults: panics={} hangs={} errors={} corruptions={} wedges={} \
             slow-growths={} ({} applies, {} observes)",
            stats.panics(),
            stats.hangs(),
            stats.errors(),
            stats.corruptions(),
            stats.wedges(),
            stats.slow_growths(),
            stats.applies(),
            stats.observes()
        );
        println!(
            "recovery: recoveries={} restarts={} replay-divergences={} \
             timeouts={} service-panics={}",
            snap.recoveries, snap.restarts, snap.replay_divergences, snap.timeouts, snap.panics
        );
        println!(
            "containment: checkpoints={} restores={} budget-kills={} watchdog-restarts={} \
             breaker trips={} half-opens={} fast-fails={}",
            snap.checkpoints_taken,
            snap.checkpoint_restores,
            snap.budget_kills,
            snap.watchdog_restarts,
            snap.breaker_trips,
            snap.breaker_half_opens,
            snap.breaker_fast_fails
        );
        println!(
            "episodes: completed={completed}/{episodes} session-errors={session_errors} \
             circuit-rejections={circuit_rejections} unrecovered={}",
            unrecovered.len()
        );
        for line in &unrecovered {
            println!("  UNRECOVERED {line}");
        }
        if breaker_never_half_opened {
            println!("  BREAKER tripped but never reached half-open");
        }
    }
    if serve_metrics_addr.is_some() && linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(linger_ms));
    }
    if !unrecovered.is_empty() {
        return Err(format!("{} unrecovered failure(s)", unrecovered.len()).into());
    }
    if breaker_never_half_opened {
        return Err("breaker tripped but never allowed a half-open probe".into());
    }
    Ok(())
}

struct IoSoakOpts {
    episodes: u64,
    steps: u64,
    seed: u64,
    json: bool,
    dir: Option<String>,
}

/// The `--faults io` soak: drive real episodes into a transition store
/// whose WAL is wired to a seeded disk-fault injector, damage the files
/// the way a crash would, then prove the recovery ladder holds — reopen
/// truncates the torn tail and quarantines (never skips) corrupt frames,
/// scrub repairs or excises them, and the replay environment degrades to
/// the live compiler instead of erroring. Exits non-zero on any episode
/// the store should have absorbed or any silent corruption.
fn chaos_io(opts: IoSoakOpts) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::chaos::IoFaultPlan;
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    use std::sync::Arc;

    let tel = cg_telemetry::global();
    tel.reset();
    let dir = match &opts.dir {
        Some(d) => std::path::PathBuf::from(d),
        None => {
            let d = std::env::temp_dir().join(format!("cg-chaos-io-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        }
    };
    let mut unrecovered: Vec<String> = Vec::new();

    // Phase A: ingest under write faults. Torn writes roll back and retry;
    // ENOSPC drops the record with a typed error and a counted drop. The
    // episodes themselves must never fail — the sink is asynchronous and
    // disk trouble is its problem, not the caller's.
    let inj_a = IoFaultPlan::seeded(opts.seed)
        .with_torn_write_prob(0.08)
        .with_enospc_prob(0.05)
        .with_max_faults(opts.episodes.max(4))
        .injector();
    let write_stats = inj_a.stats();
    let store = Arc::new(cg_stdb::TransitionStore::open_with_faults(
        &dir,
        cg_stdb::StoreConfig::default(),
        Some(inj_a),
    )?);
    cg_core::install_transition_sink(Arc::new(cg_stdb::StoreSink(Arc::clone(&store))));
    let mut env = cg_core::make("llvm-v0")?;
    let mut completed = 0u64;
    for ep in 0..opts.episodes {
        env.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        match seeded_episode(&mut env, opts.seed, ep, opts.steps) {
            Ok(_) => completed += 1,
            Err(e) => unrecovered.push(format!("ingest episode {ep}: {e}")),
        }
    }
    drop(env);
    store.flush();
    let ingest = store.stats();
    cg_core::clear_transition_sink();
    drop(store);

    // Crash damage, applied deterministically: flip a byte mid-segment
    // (checksum corruption) and cut the last segment short (torn tail).
    let mut damaged = false;
    let segments = cg_stdb::log::list_segments(&dir)?;
    if let Some((_, first)) = segments.first() {
        let len = std::fs::metadata(first)?.len();
        if len > 64 {
            let offset = 8 + (len - 8) / 2;
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(first)?;
            f.seek(SeekFrom::Start(offset))?;
            let mut byte = [0u8; 1];
            f.read_exact(&mut byte)?;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(&[byte[0] ^ 0x40])?;
            damaged = true;
        }
    }
    if let Some((_, last)) = segments.last() {
        let len = std::fs::metadata(last)?.len();
        if len > 32 {
            std::fs::OpenOptions::new()
                .write(true)
                .open(last)?
                .set_len(len - 7)?;
            damaged = true;
        }
    }

    // Phase B: recovery and scrub under read faults. Injected short reads
    // and bit flips are transient — one trusted re-read heals them; the
    // real damage above must surface as torn tails and quarantined
    // records, then come out clean after `scrub --repair`.
    let inj_b = IoFaultPlan::seeded(opts.seed ^ 0xB17E)
        .with_short_read_prob(0.25)
        .with_bit_flip_prob(0.25)
        .with_max_faults(4)
        .injector();
    let read_stats = inj_b.stats();
    let reopened = cg_stdb::TransitionStore::open_with_faults(
        &dir,
        cg_stdb::StoreConfig::default(),
        Some(inj_b.clone()),
    )?;
    let recovery = reopened.recovery().clone();
    drop(reopened);
    let scrub = cg_stdb::scrub_dir(&dir, &cg_stdb::WalConfig::default(), true, Some(&inj_b))?;
    let verify = cg_stdb::scrub_dir(&dir, &cg_stdb::WalConfig::default(), false, None)?;
    if !verify.is_clean() {
        unrecovered.push(format!(
            "store still dirty after repair: {} corrupt record(s), {} torn tail(s)",
            verify.records_corrupt, verify.torn_tails
        ));
    }
    if damaged
        && recovery.torn_tails + recovery.quarantined + scrub.records_corrupt + scrub.torn_tails
            == 0
    {
        unrecovered.push("injected disk damage was never detected (silent corruption)".into());
    }

    // Phase C: replay over the damaged-then-repaired store. Seen
    // trajectories serve from the log; anything recovery had to drop falls
    // through to the live compiler — gracefully, never as an error.
    let uri = format!("replay://llvm-v0?dir={}", dir.display());
    let mut renv = cg_core::make(&uri)?;
    let replay_eps = opts.episodes.clamp(1, 2);
    for ep in 0..replay_eps {
        renv.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        match seeded_episode(&mut renv, opts.seed, ep, opts.steps) {
            Ok(_) => completed += 1,
            Err(e) => unrecovered.push(format!("replay episode {ep}: {e}")),
        }
    }
    // An unseen trajectory: every step is a miss and must still complete.
    renv.set_benchmark(SOAK_BENCHMARKS[0]);
    match seeded_episode(&mut renv, opts.seed ^ 0xD00D, 0, opts.steps) {
        Ok(_) => completed += 1,
        Err(e) => unrecovered.push(format!("replay fall-through episode: {e}")),
    }
    drop(renv);

    let snap = tel.snapshot();
    if opts.json {
        #[derive(serde::Serialize)]
        struct IoChaosReport {
            episodes: u64,
            completed: u64,
            injected_torn_writes: u64,
            injected_enospcs: u64,
            injected_short_reads: u64,
            injected_bit_flips: u64,
            ingest_records: u64,
            append_retries: u64,
            dropped_records: u64,
            recovery: cg_stdb::RecoveryReport,
            scrub: cg_stdb::ScrubReport,
            verify_clean: bool,
            replay_hits: u64,
            replay_misses: u64,
            unrecovered: Vec<String>,
        }
        let report = IoChaosReport {
            episodes: opts.episodes,
            completed,
            injected_torn_writes: write_stats.torn_writes(),
            injected_enospcs: write_stats.enospcs(),
            injected_short_reads: read_stats.short_reads(),
            injected_bit_flips: read_stats.bit_flips(),
            ingest_records: ingest.steps + ingest.observations,
            append_retries: snap.stdb.append_retries,
            dropped_records: snap.stdb.dropped_records,
            recovery: recovery.clone(),
            scrub: scrub.clone(),
            verify_clean: verify.is_clean(),
            replay_hits: snap.stdb.replay_hits,
            replay_misses: snap.stdb.replay_misses,
            unrecovered: unrecovered.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "io chaos soak: seed={} episodes={} steps={} store={}",
            opts.seed,
            opts.episodes,
            opts.steps,
            dir.display()
        );
        println!(
            "injected faults: torn-writes={} enospc={} short-reads={} bit-flips={}",
            write_stats.torn_writes(),
            write_stats.enospcs(),
            read_stats.short_reads(),
            read_stats.bit_flips()
        );
        println!(
            "ingest: steps={} observations={} retries={} dropped={}",
            ingest.steps, ingest.observations, snap.stdb.append_retries, snap.stdb.dropped_records
        );
        println!(
            "recovery: records={} torn-tails={} quarantined={} transient-heals={}",
            recovery.records,
            recovery.torn_tails,
            recovery.quarantined,
            recovery.transient_read_faults
        );
        println!(
            "scrub: ok={} corrupt={} repaired={} quarantined={} → clean={}",
            scrub.records_ok,
            scrub.records_corrupt,
            scrub.repaired,
            scrub.quarantined,
            verify.is_clean()
        );
        println!(
            "replay: hits={} misses={} (fall-through is graceful, not an error)",
            snap.stdb.replay_hits, snap.stdb.replay_misses
        );
        println!(
            "episodes: completed={completed} unrecovered={}",
            unrecovered.len()
        );
        for line in &unrecovered {
            println!("  UNRECOVERED {line}");
        }
    }
    if !unrecovered.is_empty() {
        return Err(format!("{} unrecovered failure(s)", unrecovered.len()).into());
    }
    Ok(())
}

/// The `cg stdb` maintenance surface over a store directory: generate
/// (populate from live episodes), scrub (verify every checksum, optionally
/// repair), compact (drop superseded records crash-safely), stats.
fn stdb_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("generate") => stdb_generate(&args[1..]),
        Some("scrub") => stdb_scrub(&args[1..]),
        Some("compact") => stdb_compact(&args[1..]),
        Some("stats") => stdb_stats(&args[1..]),
        _ => Err("usage: cg stdb {generate|scrub|compact|stats} <dir> [flags]".into()),
    }
}

/// Splits `<dir>` plus simple flags for the `cg stdb` subcommands.
fn stdb_dir_arg<'a>(
    positional: &[&'a String],
    what: &str,
) -> Result<&'a String, Box<dyn std::error::Error>> {
    positional
        .first()
        .copied()
        .ok_or_else(|| format!("usage: cg stdb {what} <dir> [flags]").into())
}

fn stdb_generate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut episodes: u64 = 4;
    let mut steps: u64 = 10;
    let mut seed: u64 = 7;
    let mut json = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--episodes" => episodes = val("--episodes")?.parse()?,
            "--steps" => steps = val("--steps")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--json" => json = true,
            _ => positional.push(flag),
        }
    }
    let dir = stdb_dir_arg(&positional, "generate")?;
    let store = install_stdb_sink(dir)?;
    let mut env = cg_core::make("llvm-v0")?;
    for ep in 0..episodes {
        env.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        seeded_episode(&mut env, seed, ep, steps)?;
    }
    drop(env);
    store.flush();
    let stats = store.stats();
    cg_core::clear_transition_sink();
    if json {
        println!("{}", serde_json::to_string_pretty(&stats)?);
    } else {
        println!(
            "generated {} episode(s) × {} step(s) into {}",
            episodes, steps, stats.dir
        );
        println!(
            "  steps={} edges={} observations={} benchmarks={} segments={} bytes={} dropped={}",
            stats.steps,
            stats.edges,
            stats.observations,
            stats.benchmarks,
            stats.segments,
            stats.bytes,
            stats.dropped_records
        );
    }
    Ok(())
}

fn stdb_scrub(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut repair = false;
    let mut json = false;
    let mut positional: Vec<&String> = Vec::new();
    for flag in args {
        match flag.as_str() {
            "--repair" => repair = true,
            "--json" => json = true,
            _ => positional.push(flag),
        }
    }
    let dir = stdb_dir_arg(&positional, "scrub")?;
    let report = cg_stdb::scrub_dir(
        std::path::Path::new(dir),
        &cg_stdb::WalConfig::default(),
        repair,
        None,
    )?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "scrub {}: segments={} ok={} corrupt={} repaired={} quarantined={} \
             torn-tails={} bytes-verified={}",
            dir,
            report.segments,
            report.records_ok,
            report.records_corrupt,
            report.repaired,
            report.quarantined,
            report.torn_tails,
            report.bytes_verified
        );
    }
    // Verify-only mode works like fsck: a dirty store is a non-zero exit.
    // Repair mode fixed what it found, so it exits clean.
    if !repair && !report.is_clean() {
        return Err(format!(
            "{} corrupt record(s), {} torn tail(s) — run `cg stdb scrub {} --repair`",
            report.records_corrupt, report.torn_tails, dir
        )
        .into());
    }
    Ok(())
}

fn stdb_compact(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = false;
    let mut positional: Vec<&String> = Vec::new();
    for flag in args {
        match flag.as_str() {
            "--json" => json = true,
            _ => positional.push(flag),
        }
    }
    let dir = stdb_dir_arg(&positional, "compact")?;
    let report = cg_stdb::compact_dir(std::path::Path::new(dir), &cg_stdb::WalConfig::default())?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "compact {}: records {} → {}, segments {} → {}, bytes {} → {}{}",
            dir,
            report.records_before,
            report.records_after,
            report.segments_before,
            report.segments_after,
            report.bytes_before,
            report.bytes_after,
            if report.corrupt_skipped > 0 {
                format!(
                    " ({} corrupt frame(s) skipped — scrub first)",
                    report.corrupt_skipped
                )
            } else {
                String::new()
            }
        );
    }
    Ok(())
}

fn stdb_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = false;
    let mut positional: Vec<&String> = Vec::new();
    for flag in args {
        match flag.as_str() {
            "--json" => json = true,
            _ => positional.push(flag),
        }
    }
    let dir = stdb_dir_arg(&positional, "stats")?;
    let store =
        cg_stdb::TransitionStore::open(std::path::Path::new(dir), cg_stdb::StoreConfig::default())?;
    let stats = store.stats();
    if json {
        println!("{}", serde_json::to_string_pretty(&stats)?);
    } else {
        println!("transition store {}", stats.dir);
        println!(
            "  index: steps={} edges={} observations={} benchmarks={}",
            stats.steps, stats.edges, stats.observations, stats.benchmarks
        );
        println!(
            "  wal: segments={} bytes={} recovered-records={}",
            stats.segments, stats.bytes, stats.recovered_records
        );
        println!(
            "  integrity: torn-tails={} quarantined={} decode-failures={} dropped={}",
            stats.torn_tails, stats.quarantined, stats.decode_failures, stats.dropped_records
        );
    }
    Ok(())
}

/// The `cg bench-stdb` surface: populate a store from live llvm-v0
/// episodes (timing both the episodes and the WAL ingest behind them),
/// scrub it cold, then replay the *same* seeded trajectories through the
/// `replay://` environment and compare episodes/s. Writes the
/// machine-readable report to `BENCH_stdb.json` (override with `--out`).
fn bench_stdb(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Instant;

    let mut episodes: u64 = 8;
    let mut steps: u64 = 12;
    let mut seed: u64 = 7;
    let mut dir_arg: Option<String> = None;
    let mut out_path = "BENCH_stdb.json".to_string();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--episodes" => episodes = val("--episodes")?.parse::<u64>()?.max(1),
            "--steps" => steps = val("--steps")?.parse::<u64>()?.max(1),
            "--seed" => seed = val("--seed")?.parse()?,
            "--dir" => dir_arg = Some(val("--dir")?.clone()),
            "--out" => out_path = val("--out")?.clone(),
            "--json" => json = true,
            other => return Err(format!("unknown bench-stdb flag `{other}`").into()),
        }
    }

    let tel = cg_telemetry::global();
    tel.reset();
    // A fresh scratch store unless the caller pinned one: the hit rate is
    // only meaningful against a store this run populated.
    let dir = match dir_arg {
        Some(d) => std::path::PathBuf::from(d),
        None => {
            let d = std::env::temp_dir().join(format!("cg-bench-stdb-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        }
    };

    // Live arm: real compiler episodes, every transition flowing through
    // the sink into the WAL.
    let store = install_stdb_sink(dir.to_str().ok_or("store dir is not valid UTF-8")?)?;
    let mut env = cg_core::make("llvm-v0")?;
    let live_start = Instant::now();
    let mut live_rewards = Vec::with_capacity(episodes as usize);
    for ep in 0..episodes {
        env.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        live_rewards.push(seeded_episode(&mut env, seed, ep, steps)?);
    }
    let live_wall = live_start.elapsed();
    drop(env);
    store.flush();
    let ingest = store.stats();
    cg_core::clear_transition_sink();
    drop(store);

    // Cold integrity pass over everything just written.
    let scrub = cg_stdb::scrub_dir(&dir, &cg_stdb::WalConfig::default(), false, None)?;

    // Replay arm: the same seeded trajectories answered from the store.
    let uri = format!("replay://llvm-v0?dir={}", dir.display());
    let mut renv = cg_core::make(&uri)?;
    let replay_start = Instant::now();
    let mut replay_rewards = Vec::with_capacity(episodes as usize);
    for ep in 0..episodes {
        renv.set_benchmark(SOAK_BENCHMARKS[(ep % SOAK_BENCHMARKS.len() as u64) as usize]);
        replay_rewards.push(seeded_episode(&mut renv, seed, ep, steps)?);
    }
    let replay_wall = replay_start.elapsed();
    drop(renv);

    let snap = tel.snapshot();
    let hits = snap.stdb.replay_hits;
    let misses = snap.stdb.replay_misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let live_eps = episodes as f64 / live_wall.as_secs_f64().max(1e-9);
    let replay_eps = episodes as f64 / replay_wall.as_secs_f64().max(1e-9);
    let speedup = replay_eps / live_eps.max(1e-9);
    let max_reward_delta = live_rewards
        .iter()
        .zip(&replay_rewards)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    #[derive(serde::Serialize)]
    struct Arm {
        wall_ms: f64,
        episodes_per_sec: f64,
    }
    #[derive(serde::Serialize)]
    struct IngestReport {
        records: u64,
        bytes: u64,
        records_per_sec: f64,
        dropped: u64,
        segments: u64,
    }
    #[derive(serde::Serialize)]
    struct Report {
        episodes: u64,
        steps_per_episode: u64,
        seed: u64,
        store_dir: String,
        live: Arm,
        replay: Arm,
        speedup: f64,
        replay_hits: u64,
        replay_misses: u64,
        hit_rate: f64,
        max_reward_delta: f64,
        ingest: IngestReport,
        scrub: cg_stdb::ScrubReport,
    }
    let report = Report {
        episodes,
        steps_per_episode: steps,
        seed,
        store_dir: dir.display().to_string(),
        live: Arm {
            wall_ms: live_wall.as_secs_f64() * 1e3,
            episodes_per_sec: live_eps,
        },
        replay: Arm {
            wall_ms: replay_wall.as_secs_f64() * 1e3,
            episodes_per_sec: replay_eps,
        },
        speedup,
        replay_hits: hits,
        replay_misses: misses,
        hit_rate,
        max_reward_delta,
        ingest: IngestReport {
            records: snap.stdb.ingest_records,
            bytes: snap.stdb.ingest_bytes,
            records_per_sec: snap.stdb.ingest_records as f64 / live_wall.as_secs_f64().max(1e-9),
            dropped: snap.stdb.dropped_records,
            segments: ingest.segments,
        },
        scrub: scrub.clone(),
    };
    let rendered = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out_path, format!("{rendered}\n"))?;
    if json {
        println!("{rendered}");
    } else {
        println!(
            "bench-stdb: {} episode(s) × {} step(s), store {}",
            episodes,
            steps,
            dir.display()
        );
        println!(
            "  live    {:>8.1} ms  {:>8.1} episodes/s",
            report.live.wall_ms, report.live.episodes_per_sec
        );
        println!(
            "  replay  {:>8.1} ms  {:>8.1} episodes/s  ({speedup:.1}× live)",
            report.replay.wall_ms, report.replay.episodes_per_sec
        );
        println!(
            "  hit rate {:.1}% ({hits} hits, {misses} misses)  max reward delta {:.6}",
            100.0 * hit_rate,
            max_reward_delta
        );
        println!(
            "  ingest: {} record(s), {} byte(s), {:.0} records/s, {} dropped",
            report.ingest.records,
            report.ingest.bytes,
            report.ingest.records_per_sec,
            report.ingest.dropped
        );
        println!(
            "  scrub: ok={} corrupt={} torn-tails={} (clean={})",
            scrub.records_ok,
            scrub.records_corrupt,
            scrub.torn_tails,
            scrub.is_clean()
        );
        println!("report written to {out_path}");
    }
    Ok(())
}

/// The `cg bench-ir` surface: measure the analysis cache against
/// always-recompute on three workloads — raw dom/loops/liveness requests,
/// a full `-Oz` pipeline, and a 100-action episode against a persistent
/// per-session manager (the RL stepping shape). Medians over `--iters`
/// timed runs; writes the machine-readable report to `BENCH_ir.json`
/// (override with `--out`). The no-cache arm is exactly the
/// `--no-analysis-cache` behavior: every analysis request recomputes and
/// no pass application is memoized.
fn bench_ir(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_ir::AnalysisManager;
    use std::time::Instant;

    let mut benchmark = "benchmark://cbench-v1/sha".to_string();
    let mut iters: usize = 30;
    let mut episode_len: usize = 100;
    let mut out_path = "BENCH_ir.json".to_string();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--benchmark" => benchmark = val("--benchmark")?.clone(),
            "--iters" => iters = val("--iters")?.parse::<usize>()?.max(3),
            "--episode-len" => episode_len = val("--episode-len")?.parse::<usize>()?.max(1),
            "--out" => out_path = val("--out")?.clone(),
            "--json" => json = true,
            other => return Err(format!("unknown bench-ir flag `{other}`").into()),
        }
    }

    let m = cg_datasets::benchmark(&benchmark)?;
    let median_ns = |f: &mut dyn FnMut()| -> u64 {
        f(); // warm-up (page in the dataset, fill allocator pools)
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            f();
            samples.push(t.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    };

    #[derive(serde::Serialize)]
    struct Scenario {
        name: String,
        cached_ns: u64,
        no_cache_ns: u64,
        speedup: f64,
    }
    let scenario = |name: &str, cached: &mut dyn FnMut(), no_cache: &mut dyn FnMut()| {
        let cached_ns = median_ns(cached).max(1);
        let no_cache_ns = median_ns(no_cache).max(1);
        Scenario {
            name: name.to_string(),
            cached_ns,
            no_cache_ns,
            speedup: no_cache_ns as f64 / cached_ns as f64,
        }
    };

    let mut scenarios = Vec::new();

    // 1. Raw analysis requests on an unchanged module.
    {
        let mut warm = AnalysisManager::new();
        let mut cold = AnalysisManager::disabled();
        scenarios.push(scenario(
            "analysis_fetch",
            &mut || {
                for &fid in m.func_ids() {
                    let f = m.func(fid);
                    std::hint::black_box(warm.dom(fid, f));
                    std::hint::black_box(warm.loops(fid, f));
                    std::hint::black_box(warm.liveness(fid, f));
                }
            },
            &mut || {
                for &fid in m.func_ids() {
                    let f = m.func(fid);
                    std::hint::black_box(cold.dom(fid, f));
                    std::hint::black_box(cold.loops(fid, f));
                    std::hint::black_box(cold.liveness(fid, f));
                }
            },
        ));
    }

    // 2. One fresh -Oz pipeline per iteration.
    {
        let names = cg_llvm::pipeline::OptLevel::Oz.pass_names();
        scenarios.push(scenario(
            "oz_pipeline",
            &mut || {
                let mut x = m.clone();
                let mut am = AnalysisManager::new();
                cg_llvm::pipeline::run_passes_with(&mut x, &names, &mut am);
            },
            &mut || {
                let mut x = m.clone();
                let mut am = AnalysisManager::disabled();
                cg_llvm::pipeline::run_passes_with(&mut x, &names, &mut am);
            },
        ));
    }

    // 3. An episode with a persistent per-session manager (the counters
    // below come from the cached arm of this scenario).
    let space = cg_llvm::action_space::ActionSpace::new();
    let episode_seq: Vec<usize> = [
        "mem2reg",
        "gvn",
        "licm",
        "early-cse",
        "sccp",
        "instcombine",
        "dce",
        "jump-threading",
        "adce",
    ]
    .iter()
    .cycle()
    .take(episode_len)
    .map(|n| {
        space
            .index_of(n)
            .unwrap_or_else(|| panic!("unknown pass `{n}`"))
    })
    .collect();
    let episode_name = format!("episode{episode_len}");
    scenarios.push(scenario(
        &episode_name,
        &mut || {
            let mut x = m.clone();
            let mut am = AnalysisManager::new();
            for &a in &episode_seq {
                space.apply_with(&mut x, a, &mut am);
            }
        },
        &mut || {
            let mut x = m.clone();
            let mut am = AnalysisManager::disabled();
            for &a in &episode_seq {
                space.apply_with(&mut x, a, &mut am);
            }
        },
    ));

    // One instrumented cached episode for the counters (the timed arms
    // above interleave cached and disabled runs, so their totals mix).
    cg_ir::am::reset_cache_stats();
    {
        let mut x = m.clone();
        let mut am = AnalysisManager::new();
        for &a in &episode_seq {
            space.apply_with(&mut x, a, &mut am);
        }
    }
    let cache = cg_ir::am::cache_stats();

    #[derive(serde::Serialize)]
    struct CacheCounters {
        hits: u64,
        misses: u64,
        invalidations: u64,
        hit_rate: f64,
        noop_skips: u64,
    }
    #[derive(serde::Serialize)]
    struct Report {
        benchmark: String,
        iters: usize,
        episode_len: usize,
        scenarios: Vec<Scenario>,
        cache: CacheCounters,
    }
    let report = Report {
        benchmark,
        iters,
        episode_len,
        scenarios,
        cache: CacheCounters {
            hits: cache.hits,
            misses: cache.misses,
            invalidations: cache.invalidations,
            hit_rate: cache.hit_rate(),
            noop_skips: cache.noop_skips,
        },
    };
    let rendered = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out_path, &rendered)?;
    if json {
        println!("{rendered}");
    } else {
        println!(
            "bench-ir on {} (median of {} iters):",
            report.benchmark, report.iters
        );
        println!(
            "  {:<16} {:>12} {:>12} {:>9}",
            "scenario", "cached", "no-cache", "speedup"
        );
        for s in &report.scenarios {
            println!(
                "  {:<16} {:>10}ns {:>10}ns {:>8.2}x",
                s.name, s.cached_ns, s.no_cache_ns, s.speedup
            );
        }
        println!(
            "  cache: hits={} misses={} invalidations={} hit-rate={:.1}% noop-skips={}",
            report.cache.hits,
            report.cache.misses,
            report.cache.invalidations,
            100.0 * report.cache.hit_rate,
            report.cache.noop_skips
        );
        println!("\nreport written to {out_path}");
    }
    Ok(())
}

/// The `cg bench-pool` surface: measure parallel-evaluation throughput
/// (batch evaluation and vectorized RL stepping) at each requested worker
/// count, and quantify how much raw pass-pipeline work the evaluation
/// cache saves a genetic-algorithm search at equal budget. Writes the
/// machine-readable report to `BENCH_pool.json` (override with `--out`).
fn bench_pool(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::{ActionSeq, EnvFactory, EnvPool, EvalCache};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use std::sync::Arc;
    use std::time::Instant;

    let mut worker_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut evaluations: usize = 64;
    let mut length: usize = 8;
    let mut benchmark = "benchmark://cbench-v1/crc32".to_string();
    let mut ga_budget: u64 = 240;
    let mut ga_pop: usize = 16;
    let mut seed: u64 = 7;
    let mut out_path = "BENCH_pool.json".to_string();
    let mut json = false;
    let mut stdb_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--workers" => {
                worker_counts = val("--workers")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect::<Result<_, _>>()?;
                if worker_counts.is_empty() {
                    return Err("--workers wants a list like 1,2,4,8".into());
                }
            }
            "--evaluations" => evaluations = val("--evaluations")?.parse()?,
            "--length" => length = val("--length")?.parse::<usize>()?.max(1),
            "--benchmark" => benchmark = val("--benchmark")?.clone(),
            "--ga-budget" => ga_budget = val("--ga-budget")?.parse()?,
            "--ga-pop" => ga_pop = val("--ga-pop")?.parse()?,
            "--seed" => seed = val("--seed")?.parse()?,
            "--out" => out_path = val("--out")?.clone(),
            "--json" => json = true,
            "--stdb" => stdb_dir = Some(val("--stdb")?.clone()),
            other => return Err(format!("unknown bench-pool flag `{other}`").into()),
        }
    }
    // With --stdb, every pool worker's evaluations land in the store too —
    // the sink hooks the environment layer, so nothing pool-side changes.
    let store = stdb_dir.as_deref().map(install_stdb_sink).transpose()?;

    let factory: EnvFactory = {
        let benchmark = benchmark.clone();
        Arc::new(move |_widx| {
            cg_core::CompilerEnv::with_factory(
                "llvm-v0",
                cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?,
                &benchmark,
                "Autophase",
                "IrInstructionCount",
                std::time::Duration::from_secs(60),
            )
        })
    };
    let probe = factory(0)?;
    let num_actions = probe.action_space().len();
    drop(probe);

    // The same deterministic job set for every worker count.
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs: Vec<ActionSeq> = (0..evaluations)
        .map(|_| ActionSeq {
            benchmark: benchmark.clone(),
            actions: (0..length).map(|_| rng.gen_range(0..num_actions)).collect(),
        })
        .collect();

    #[derive(serde::Serialize)]
    struct WorkerPoint {
        workers: usize,
        evaluations: usize,
        evals_per_sec: f64,
        batch_wall_ms: f64,
        episodes: usize,
        episodes_per_sec: f64,
        errors: usize,
    }
    #[derive(serde::Serialize)]
    struct GaReport {
        budget: u64,
        population: usize,
        best_cached: f64,
        best_uncached: f64,
        executed_cached: u64,
        executed_uncached: u64,
        saved: u64,
        cache_hits: u64,
        prefix_hits: u64,
        savings_pct: f64,
    }
    #[derive(serde::Serialize)]
    struct Report {
        cpus: usize,
        benchmark: String,
        length: usize,
        workers: Vec<WorkerPoint>,
        ga: GaReport,
    }

    let tel = cg_telemetry::global();
    let mut points = Vec::new();
    for &w in &worker_counts {
        // Cache disabled: pure evaluation throughput, no reuse between
        // worker counts.
        let pool = EnvPool::with_cache(w, Arc::clone(&factory), Arc::new(EvalCache::disabled()));
        // Warm the workers (spawn threads, build envs, parse the benchmark)
        // outside the timed region.
        let warm: Vec<ActionSeq> = jobs.iter().take(w).cloned().collect();
        let _ = pool.evaluate_batch(warm);
        let start = Instant::now();
        let outcomes = pool.evaluate_batch(jobs.clone());
        let wall = start.elapsed();
        let errors = outcomes.iter().filter(|o| o.error.is_some()).count();

        // Vectorized RL stepping: one lockstep episode per worker, repeated.
        let rounds = (evaluations / w.max(1)).clamp(1, 8);
        let ep_start = Instant::now();
        let mut ep_rng = StdRng::seed_from_u64(seed ^ 0xE915);
        for _ in 0..rounds {
            for r in pool.reset_all() {
                r?;
            }
            for _ in 0..length {
                let actions: Vec<usize> =
                    (0..w).map(|_| ep_rng.gen_range(0..num_actions)).collect();
                for s in pool.step_all(&actions) {
                    s?;
                }
            }
        }
        let ep_wall = ep_start.elapsed();
        let episodes = rounds * w;
        points.push(WorkerPoint {
            workers: w,
            evaluations,
            evals_per_sec: evaluations as f64 / wall.as_secs_f64(),
            batch_wall_ms: wall.as_secs_f64() * 1e3,
            episodes,
            episodes_per_sec: episodes as f64 / ep_wall.as_secs_f64(),
            errors,
        });
    }

    // GA at equal budget, cached vs uncached: identical rng stream, so the
    // uncached run executes every action the cached run either executes or
    // saves. The workload mirrors `cg_autotune::genetic_algorithm` over a
    // pool-backed problem (elitist, tournament selection, 0.6 mutation).
    let ga_workers = worker_counts.iter().copied().max().unwrap_or(2);
    // (best score, actions executed, actions saved, cache hits, prefix hits)
    type GaOutcome = (f64, u64, u64, u64, u64);
    let run_ga = |cache: EvalCache| -> Result<GaOutcome, Box<dyn std::error::Error>> {
        let pool = EnvPool::with_cache(ga_workers, Arc::clone(&factory), Arc::new(cache));
        let executed_before = tel.pool.actions_executed.get();
        let saved_before = tel.pool.actions_saved.get();
        let hits_before = tel.pool.cache_hits.get();
        let prefix_before = tel.pool.prefix_hits.get();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A);
        let eval_many = |pool: &EnvPool, pts: &[Vec<usize>]| -> Vec<f64> {
            let seqs = pts
                .iter()
                .map(|p| ActionSeq {
                    benchmark: benchmark.clone(),
                    actions: p.clone(),
                })
                .collect();
            pool.evaluate_batch(seqs)
                .into_iter()
                .map(|o| o.score)
                .collect()
        };
        let population = ga_pop.max(4);
        let batch = ga_workers * 2;
        let mut pop: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut evals = 0u64;
        let seed_n = population.min(ga_budget as usize);
        while pop.len() < seed_n {
            let k = batch.min(seed_n - pop.len());
            let cands: Vec<Vec<usize>> = (0..k)
                .map(|_| (0..length).map(|_| rng.gen_range(0..num_actions)).collect())
                .collect();
            let scores = eval_many(&pool, &cands);
            evals += k as u64;
            pop.extend(cands.into_iter().zip(scores));
        }
        let by_score = |a: &(Vec<usize>, f64), b: &(Vec<usize>, f64)| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
        };
        pop.sort_by(by_score);
        while evals < ga_budget {
            let mut next: Vec<(Vec<usize>, f64)> =
                pop.iter().take(population / 8 + 1).cloned().collect();
            while next.len() < population && evals < ga_budget {
                let k = batch
                    .min(population - next.len())
                    .min((ga_budget - evals) as usize);
                let children: Vec<Vec<usize>> = (0..k)
                    .map(|_| {
                        let pick = |rng: &mut StdRng, pop: &[(Vec<usize>, f64)]| {
                            let a = rng.gen_range(0..pop.len());
                            let b = rng.gen_range(0..pop.len());
                            pop[a.min(b)].0.clone()
                        };
                        let a = pick(&mut rng, &pop);
                        let b = pick(&mut rng, &pop);
                        let cut = rng.gen_range(0..a.len());
                        let mut child: Vec<usize> =
                            a[..cut].iter().chain(b[cut..].iter()).copied().collect();
                        if rng.gen_bool(0.6) {
                            let i = rng.gen_range(0..child.len());
                            child[i] = rng.gen_range(0..num_actions);
                        }
                        child
                    })
                    .collect();
                let scores = eval_many(&pool, &children);
                evals += k as u64;
                next.extend(children.into_iter().zip(scores));
            }
            next.sort_by(by_score);
            pop = next;
        }
        Ok((
            pop[0].1,
            tel.pool.actions_executed.get() - executed_before,
            tel.pool.actions_saved.get() - saved_before,
            tel.pool.cache_hits.get() - hits_before,
            tel.pool.prefix_hits.get() - prefix_before,
        ))
    };
    let (best_cached, executed_cached, saved, cache_hits, prefix_hits) =
        run_ga(EvalCache::default())?;
    let (best_uncached, executed_uncached, _, _, _) = run_ga(EvalCache::disabled())?;
    let savings_pct = if executed_uncached == 0 {
        0.0
    } else {
        100.0 * (executed_uncached - executed_cached.min(executed_uncached)) as f64
            / executed_uncached as f64
    };

    let report = Report {
        cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        benchmark,
        length,
        workers: points,
        ga: GaReport {
            budget: ga_budget,
            population: ga_pop,
            best_cached,
            best_uncached,
            executed_cached,
            executed_uncached,
            saved,
            cache_hits,
            prefix_hits,
            savings_pct,
        },
    };
    let rendered = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out_path, &rendered)?;
    if json {
        println!("{rendered}");
    } else {
        println!(
            "bench-pool on {} ({} cpus), {} evaluations of length {}:",
            report.benchmark, report.cpus, evaluations, report.length
        );
        println!(
            "  {:>7} {:>14} {:>14} {:>14} {:>7}",
            "workers", "evals/sec", "batch wall", "episodes/sec", "errors"
        );
        for p in &report.workers {
            println!(
                "  {:>7} {:>14.1} {:>12.0}ms {:>14.1} {:>7}",
                p.workers, p.evals_per_sec, p.batch_wall_ms, p.episodes_per_sec, p.errors
            );
        }
        println!(
            "\nGA at budget {} (population {}, {} workers):",
            report.ga.budget, report.ga.population, ga_workers
        );
        println!(
            "  raw actions executed: cached={} uncached={} saved={} ({:.1}% fewer)",
            report.ga.executed_cached,
            report.ga.executed_uncached,
            report.ga.saved,
            report.ga.savings_pct
        );
        println!(
            "  cache hits={} prefix hits={} best: cached={:+.4} uncached={:+.4}",
            report.ga.cache_hits,
            report.ga.prefix_hits,
            report.ga.best_cached,
            report.ga.best_uncached
        );
        println!("\nreport written to {out_path}");
    }
    if let Some(store) = store {
        store.flush();
        let s = store.stats();
        println!(
            "stdb: {} step(s), {} observation(s), {} dropped → {}",
            s.steps, s.observations, s.dropped_records, s.dir
        );
        cg_core::clear_transition_sink();
    }
    Ok(())
}

fn replay(path: Option<&str>, validate: bool) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.ok_or("missing state file")?;
    let text = std::fs::read_to_string(path)?;
    let state = cg_core::EnvState::from_json(&text)?;
    if validate {
        state.validate()?;
        println!("OK: state is reproducible and the reward checks out");
    } else {
        let env = state.replay()?;
        println!(
            "replayed {} actions, reward {:+.4}",
            state.actions.len(),
            env.episode_reward()
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The multi-tenant front door: `cg serve`, `cg loadtest`, and the
// `stampede` chaos mode. All three drive `cg_core::Broker` — the bounded
// worker fleet with admission control — over real TCP connections.
// ---------------------------------------------------------------------------

/// A synthetic compilation session that busy-spins a fixed duration per
/// applied action. Service time is constant and CPU-bound, so front-door
/// latency and fairness numbers measure the broker, not compiler noise.
struct SpinSession {
    steps: u64,
    spin: std::time::Duration,
}

impl cg_core::CompilationSession for SpinSession {
    fn action_spaces(&self) -> Vec<cg_core::ActionSpaceInfo> {
        vec![cg_core::ActionSpaceInfo {
            name: "Spin".into(),
            actions: (0..16).map(|i| format!("spin-{i}")).collect(),
        }]
    }

    fn observation_spaces(&self) -> Vec<cg_core::ObservationSpaceInfo> {
        Vec::new()
    }

    fn reward_spaces(&self) -> Vec<cg_core::RewardSpaceInfo> {
        Vec::new()
    }

    fn init(&mut self, _benchmark: &str, _action_space: usize) -> Result<(), String> {
        Ok(())
    }

    fn apply_action(&mut self, _action: usize) -> Result<cg_core::session::ActionOutcome, String> {
        let until = std::time::Instant::now() + self.spin;
        while std::time::Instant::now() < until {
            std::hint::spin_loop();
        }
        self.steps += 1;
        Ok(cg_core::session::ActionOutcome {
            end_of_episode: false,
            action_space_changed: false,
            changed: true,
        })
    }

    fn observe(&mut self, _space: &str) -> Result<cg_core::Observation, String> {
        Ok(cg_core::Observation::Scalar(self.steps as f64))
    }

    fn fork(&self) -> Box<dyn cg_core::CompilationSession> {
        Box::new(SpinSession {
            steps: self.steps,
            spin: self.spin,
        })
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.steps.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state
            .try_into()
            .map_err(|_| "bad spin-session snapshot".to_string())?;
        self.steps = u64::from_le_bytes(bytes);
        Ok(())
    }
}

/// A factory of [`SpinSession`]s with the given per-action cost.
fn spin_factory(spin_us: u64) -> cg_core::service::SessionFactory {
    let spin = std::time::Duration::from_micros(spin_us);
    std::sync::Arc::new(move || Box::new(SpinSession { steps: 0, spin }))
}

/// Calls through a raw [`cg_core::service::TcpClient`], absorbing typed
/// `Overloaded` refusals in place: count the refusal, sleep at least the
/// server-advised `retry_after_ms` (the policy's jittered exponential
/// backoff applies on top), and re-issue — up to the policy's attempt
/// count. Every other outcome is returned as-is. This is the well-behaved
/// tenant the front door is designed for.
fn call_absorbing_overload(
    client: &mut cg_core::service::TcpClient,
    req: &cg_core::service::Request,
    policy: &cg_core::RetryPolicy,
    refusals: &mut u64,
) -> Result<cg_core::service::Response, cg_core::CgError> {
    let mut attempt = 0u32;
    loop {
        match client.call(req) {
            Err(cg_core::CgError::Overloaded {
                retry_after_ms,
                reason,
            }) => {
                *refusals += 1;
                if attempt + 1 >= policy.max_attempts.max(1) {
                    return Err(cg_core::CgError::Overloaded {
                        retry_after_ms,
                        reason,
                    });
                }
                attempt += 1;
                std::thread::sleep(
                    policy.backoff_with_floor(
                        attempt,
                        std::time::Duration::from_millis(retry_after_ms),
                    ),
                );
            }
            other => return other,
        }
    }
}

/// The `p`-th percentile (0–100) of a latency sample, in the sample's
/// units. Sorts in place; an empty sample reads as 0.
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Jain's fairness index over per-tenant throughput: `(Σx)² / (n·Σx²)`.
/// 1.0 when perfectly even, `1/n` when one tenant takes everything.
fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= f64::EPSILON {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// `cg serve`: run the broker front door on a TCP address; with `--drain`,
/// ask an already-running server to checkpoint its sessions and exit.
fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Duration;

    let mut addr = "127.0.0.1:4567".to_string();
    let mut env_name = "llvm-v0".to_string();
    let mut workers: usize = 4;
    let mut max_sessions: usize = 512;
    let mut tenant_sessions: usize = 8;
    let mut tenant_aps: f64 = 0.0;
    let mut burst: f64 = 64.0;
    let mut queue_depth: usize = 64;
    let mut quantum: u64 = 8;
    let mut max_connections: usize = cg_core::service::DEFAULT_MAX_TCP_CONNECTIONS;
    let mut retry_after_ms: u64 = 50;
    let mut drain_grace_ms: u64 = 5_000;
    let mut spin_us: u64 = 0;
    let mut serve_metrics_addr: Option<String> = None;
    let mut drain = false;
    let mut drain_after_ms: u64 = 0;
    let mut codec = cg_core::WireCodec::Binary;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--addr" => addr = val("--addr")?.clone(),
            "--env" => env_name = val("--env")?.clone(),
            "--workers" => workers = val("--workers")?.parse()?,
            "--max-sessions" => max_sessions = val("--max-sessions")?.parse()?,
            "--tenant-sessions" => tenant_sessions = val("--tenant-sessions")?.parse()?,
            "--tenant-aps" => tenant_aps = val("--tenant-aps")?.parse()?,
            "--burst" => burst = val("--burst")?.parse()?,
            "--queue-depth" => queue_depth = val("--queue-depth")?.parse()?,
            "--quantum" => quantum = val("--quantum")?.parse()?,
            "--max-connections" => max_connections = val("--max-connections")?.parse()?,
            "--retry-after-ms" => retry_after_ms = val("--retry-after-ms")?.parse()?,
            "--drain-grace-ms" => drain_grace_ms = val("--drain-grace-ms")?.parse()?,
            "--spin-us" => spin_us = val("--spin-us")?.parse()?,
            "--serve-metrics" => serve_metrics_addr = Some(val("--serve-metrics")?.clone()),
            "--drain" => drain = true,
            "--drain-after-ms" => drain_after_ms = val("--drain-after-ms")?.parse()?,
            "--codec" => codec = val("--codec")?.parse::<cg_core::WireCodec>()?,
            other => return Err(format!("unknown serve flag `{other}`").into()),
        }
    }

    if drain {
        // Client mode: block until the server has checkpointed everything
        // live and is safe to kill.
        let mut client = cg_core::service::TcpClient::connect_with_policy(
            &addr,
            Duration::from_secs(600),
            cg_core::RetryPolicy::none(),
        )?;
        client.set_codec(codec);
        return match client.call(&cg_core::service::Request::Shutdown)? {
            cg_core::service::Response::Ok => {
                println!("server at {addr} drained");
                Ok(())
            }
            other => Err(format!("unexpected drain reply: {other:?}").into()),
        };
    }

    if let Some(maddr) = &serve_metrics_addr {
        let bound = cg_telemetry::export::spawn_metrics_server(maddr)?;
        eprintln!("serving metrics on http://{bound}/metrics");
    }
    let factory: cg_core::service::SessionFactory = if spin_us > 0 {
        spin_factory(spin_us)
    } else {
        cg_core::envs::session_factory(&env_name).map_err(cg_core::CgError::Unknown)?
    };
    let grace = Duration::from_millis(drain_grace_ms.max(1));
    let cfg = cg_core::BrokerConfig {
        workers,
        max_sessions,
        max_queue_depth: queue_depth,
        max_connections,
        quantum,
        retry_after_ms,
        drain_grace: grace,
        quota: cg_core::TenantQuota {
            max_sessions: tenant_sessions,
            actions_per_sec: tenant_aps,
            burst,
        },
        binary_wire: codec == cg_core::WireCodec::Binary,
        ..cg_core::BrokerConfig::default()
    };
    let listener = std::net::TcpListener::bind(&addr)?;
    let bound = listener.local_addr()?;
    println!(
        "cg serve: front door on {bound} — {workers} workers, \
         {tenant_sessions} sessions/tenant, queue depth {queue_depth}; \
         stop with `cg serve --drain --addr {bound}`"
    );
    let broker = cg_core::Broker::new(factory, cfg);
    if drain_after_ms > 0 {
        // Test hook: self-drain after a fixed delay so scripts can exercise
        // the full drain path without a second process.
        let self_drain = broker.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(drain_after_ms));
            self_drain.drain(grace);
        });
    }
    broker.serve(listener)?;
    // Serve only returns once drained; fetch the stored report.
    let report = broker.drain(Duration::ZERO);
    println!(
        "cg serve: drained — {} live sessions checkpointed, {} queued requests shed",
        report.checkpointed, report.shed_queued
    );
    Ok(())
}

/// What one well-behaved tenant saw during a measurement window.
struct VictimStats {
    latencies_us: Vec<u64>,
    episodes: u64,
    steps: u64,
    refusals: u64,
    errors: Vec<String>,
}

/// Runs episodes against the front door as one tenant until the window
/// closes: start a session, step it `episode_steps` times, end it, repeat.
/// Typed refusals are absorbed with server-advised backoff; anything else
/// lands in `errors` (the loadtest treats those as unrecovered).
fn drive_victim(
    addr: &str,
    tenant: &str,
    seed: u64,
    window: std::time::Duration,
    episode_steps: u64,
) -> VictimStats {
    use cg_core::service::{Request, Response, TcpClient};
    use std::time::{Duration, Instant};

    let mut out = VictimStats {
        latencies_us: Vec::new(),
        episodes: 0,
        steps: 0,
        refusals: 0,
        errors: Vec::new(),
    };
    let policy = cg_core::RetryPolicy::default()
        .with_max_attempts(10)
        .with_backoff(Duration::from_millis(2), Duration::from_millis(100))
        .with_jitter(0.25, seed);
    let mut client = match TcpClient::connect_with_policy(
        addr,
        Duration::from_secs(10),
        cg_core::RetryPolicy::none(),
    ) {
        Ok(client) => client,
        Err(e) => {
            out.errors.push(format!("{tenant}: connect: {e}"));
            return out;
        }
    };
    client.set_tenant(tenant);
    let deadline = Instant::now() + window;
    'episodes: while Instant::now() < deadline {
        let start = Request::StartSession {
            benchmark: "benchmark://spin/loadtest".into(),
            action_space: 0,
        };
        let sid = match call_absorbing_overload(&mut client, &start, &policy, &mut out.refusals) {
            Ok(Response::SessionStarted { session_id }) => session_id,
            Ok(other) => {
                out.errors
                    .push(format!("{tenant}: start: unexpected {other:?}"));
                break;
            }
            Err(e) => {
                out.errors.push(format!("{tenant}: start: {e}"));
                break;
            }
        };
        for _ in 0..episode_steps {
            let step = Request::Step {
                session_id: sid,
                actions: vec![0],
                observation_spaces: Vec::new(),
            };
            let issued = Instant::now();
            match call_absorbing_overload(&mut client, &step, &policy, &mut out.refusals) {
                Ok(Response::Stepped { .. }) => {
                    out.latencies_us.push(issued.elapsed().as_micros() as u64);
                    out.steps += 1;
                }
                Ok(other) => {
                    out.errors
                        .push(format!("{tenant}: step: unexpected {other:?}"));
                    break 'episodes;
                }
                Err(e) => {
                    out.errors.push(format!("{tenant}: step: {e}"));
                    break 'episodes;
                }
            }
        }
        let _ = client.call(&Request::EndSession { session_id: sid });
        out.episodes += 1;
    }
    out
}

/// Runs one victim tenant per thread for a measurement window.
fn run_victim_window(
    addr: &str,
    victims: usize,
    window: std::time::Duration,
    episode_steps: u64,
    seed_base: u64,
) -> Vec<VictimStats> {
    let handles: Vec<_> = (0..victims)
        .map(|v| {
            let addr = addr.to_string();
            let tenant = format!("victim-{v}");
            std::thread::spawn(move || {
                drive_victim(&addr, &tenant, seed_base + v as u64, window, episode_steps)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| VictimStats {
                latencies_us: Vec::new(),
                episodes: 0,
                steps: 0,
                refusals: 0,
                errors: vec!["victim thread panicked".into()],
            })
        })
        .collect()
}

/// One greedy client on the noisy tenant: hold a session whenever the door
/// allows, hammer `Step` flat out, and retry refusals as fast as the
/// server-advised delay permits. Returns (steps, typed refusals).
fn drive_noisy(addr: &str, stop: &std::sync::atomic::AtomicBool) -> (u64, u64) {
    use cg_core::service::{Request, Response, TcpClient};
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    let mut steps = 0u64;
    let mut refusals = 0u64;
    let Ok(mut client) =
        TcpClient::connect_with_policy(addr, Duration::from_secs(10), cg_core::RetryPolicy::none())
    else {
        return (0, 0);
    };
    client.set_tenant("noisy");
    let mut sid: Option<u64> = None;
    while !stop.load(Ordering::Relaxed) {
        match sid {
            None => {
                let start = Request::StartSession {
                    benchmark: "benchmark://spin/noisy".into(),
                    action_space: 0,
                };
                match client.call(&start) {
                    Ok(Response::SessionStarted { session_id }) => sid = Some(session_id),
                    Err(cg_core::CgError::Overloaded { retry_after_ms, .. }) => {
                        refusals += 1;
                        std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                    }
                    _ => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            Some(id) => {
                let step = Request::Step {
                    session_id: id,
                    actions: vec![0],
                    observation_spaces: Vec::new(),
                };
                match client.call(&step) {
                    Ok(Response::Stepped { .. }) => steps += 1,
                    Err(cg_core::CgError::Overloaded { retry_after_ms, .. }) => {
                        refusals += 1;
                        std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                    }
                    _ => sid = None,
                }
            }
        }
    }
    if let Some(id) = sid {
        let _ = client.call(&Request::EndSession { session_id: id });
    }
    (steps, refusals)
}

/// `cg loadtest`: measure the front door under deliberate multi-tenant
/// overload. Three phases against an in-process broker over real TCP:
///
/// * **A (uncontended)** — `--victims` well-behaved tenants run episodes
///   alone, establishing baseline step latency;
/// * **B (contended)** — the same victims run while `--noisy-clients`
///   connections on one tenant hammer the door (more clients than the
///   tenant's session quota, so typed refusals are guaranteed);
/// * **C (drain)** — fresh sessions are parked and the broker drains,
///   proving graceful degradation checkpoints live work.
///
/// Emits a JSON report (`--out`, the committed `BENCH_service.json`) with
/// p50/p99 step latency per phase, episodes/s, refusal/shed counts, the
/// victim p99 contended/uncontended ratio, and Jain's fairness index over
/// victim throughput. `--require-shed`, `--min-fairness` and
/// `--max-p99-ratio` turn the report into a pass/fail gate for CI.
fn loadtest(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::service::{Request, Response, TcpClient};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let mut workers: usize = 6;
    let mut victims: usize = 3;
    let mut noisy_clients: usize = 4;
    let mut tenant_sessions: usize = 2;
    let mut spin_us: u64 = 300;
    let mut window_ms: u64 = 1_500;
    let mut episode_steps: u64 = 20;
    let mut retry_after_ms: u64 = 25;
    let mut queue_depth: usize = 64;
    let mut out_path: Option<String> = None;
    let mut json = false;
    let mut require_shed = false;
    let mut min_fairness: f64 = 0.0;
    let mut max_p99_ratio: f64 = 0.0;
    let mut serve_metrics_addr: Option<String> = None;
    let mut linger_ms: u64 = 0;
    let mut codec = cg_core::WireCodec::Binary;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--workers" => workers = val("--workers")?.parse()?,
            "--victims" => victims = val("--victims")?.parse()?,
            "--noisy-clients" => noisy_clients = val("--noisy-clients")?.parse()?,
            "--tenant-sessions" => tenant_sessions = val("--tenant-sessions")?.parse()?,
            "--spin-us" => spin_us = val("--spin-us")?.parse()?,
            "--window-ms" => window_ms = val("--window-ms")?.parse()?,
            "--episode-steps" => episode_steps = val("--episode-steps")?.parse()?,
            "--retry-after-ms" => retry_after_ms = val("--retry-after-ms")?.parse()?,
            "--queue-depth" => queue_depth = val("--queue-depth")?.parse()?,
            "--out" => out_path = Some(val("--out")?.clone()),
            "--json" => json = true,
            "--require-shed" => require_shed = true,
            "--min-fairness" => min_fairness = val("--min-fairness")?.parse()?,
            "--max-p99-ratio" => max_p99_ratio = val("--max-p99-ratio")?.parse()?,
            "--serve-metrics" => serve_metrics_addr = Some(val("--serve-metrics")?.clone()),
            "--linger-ms" => linger_ms = val("--linger-ms")?.parse()?,
            "--codec" => codec = val("--codec")?.parse::<cg_core::WireCodec>()?,
            other => return Err(format!("unknown loadtest flag `{other}`").into()),
        }
    }

    let tel = cg_telemetry::global();
    tel.reset();
    if let Some(maddr) = &serve_metrics_addr {
        let bound = cg_telemetry::export::spawn_metrics_server(maddr)?;
        eprintln!("serving metrics on http://{bound}/metrics");
    }

    let cfg = cg_core::BrokerConfig {
        workers,
        max_queue_depth: queue_depth,
        retry_after_ms,
        quota: cg_core::TenantQuota {
            max_sessions: tenant_sessions,
            ..cg_core::TenantQuota::default()
        },
        binary_wire: codec == cg_core::WireCodec::Binary,
        ..cg_core::BrokerConfig::default()
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let broker = cg_core::Broker::new(spin_factory(spin_us), cfg);
    let server = {
        let broker = broker.clone();
        std::thread::spawn(move || broker.serve(listener))
    };
    let window = Duration::from_millis(window_ms.max(100));

    // Phase A: uncontended baseline.
    eprintln!(
        "loadtest: phase A — {victims} victim tenants alone for {}ms",
        window.as_millis()
    );
    let baseline = run_victim_window(&addr, victims, window, episode_steps, 0xA11CE);

    // Phase B: the same victims under a noisy tenant's stampede. More
    // noisy clients than the tenant's session quota guarantees the door
    // refuses (typed) no matter how the race lands.
    eprintln!("loadtest: phase B — plus {noisy_clients} noisy clients on one tenant");
    let stop = Arc::new(AtomicBool::new(false));
    let noisy: Vec<_> = (0..noisy_clients)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || drive_noisy(&addr, &stop))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let the noise establish
    let contended = run_victim_window(&addr, victims, window, episode_steps, 0xB0B);
    stop.store(true, Ordering::Relaxed);
    let mut noisy_steps = 0u64;
    let mut noisy_refusals = 0u64;
    for handle in noisy {
        let (steps, refusals) = handle.join().unwrap_or((0, 0));
        noisy_steps += steps;
        noisy_refusals += refusals;
    }

    // Phase C: park fresh live sessions and drain gracefully under them.
    eprintln!("loadtest: phase C — drain with live sessions parked");
    let mut parked = Vec::new();
    for v in 0..victims {
        let Ok(mut client) = TcpClient::connect_with_policy(
            &addr,
            Duration::from_secs(10),
            cg_core::RetryPolicy::none(),
        ) else {
            continue;
        };
        client.set_tenant(&format!("victim-{v}"));
        let start = Request::StartSession {
            benchmark: "benchmark://spin/parked".into(),
            action_space: 0,
        };
        if let Ok(Response::SessionStarted { session_id }) = client.call(&start) {
            let _ = client.call(&Request::Step {
                session_id,
                actions: vec![0],
                observation_spaces: Vec::new(),
            });
            parked.push(client); // hold the connection open across the drain
        }
    }
    let parked_sessions = parked.len();
    let drain = broker.drain(Duration::from_secs(5));
    let _ = server.join();
    drop(parked);

    // Distill the phases.
    let mut base_lat: Vec<u64> = baseline
        .iter()
        .flat_map(|v| v.latencies_us.iter().copied())
        .collect();
    let mut cont_lat: Vec<u64> = contended
        .iter()
        .flat_map(|v| v.latencies_us.iter().copied())
        .collect();
    let window_secs = window.as_secs_f64();
    let phase = |stats: &[VictimStats], lat: &mut [u64]| Phase {
        episodes: stats.iter().map(|v| v.episodes).sum(),
        steps: stats.iter().map(|v| v.steps).sum(),
        episodes_per_sec: stats.iter().map(|v| v.episodes).sum::<u64>() as f64 / window_secs,
        p50_step_us: percentile_us(lat, 50.0),
        p99_step_us: percentile_us(lat, 99.0),
        typed_refusals: stats.iter().map(|v| v.refusals).sum(),
    };
    let uncontended = phase(&baseline, &mut base_lat);
    let contended_phase = phase(&contended, &mut cont_lat);
    let p99_ratio = if uncontended.p99_step_us == 0 {
        0.0
    } else {
        contended_phase.p99_step_us as f64 / uncontended.p99_step_us as f64
    };
    let fairness = jain_fairness(
        &contended
            .iter()
            .map(|v| v.episodes as f64)
            .collect::<Vec<_>>(),
    );
    let unrecovered: Vec<String> = baseline
        .iter()
        .chain(contended.iter())
        .flat_map(|v| v.errors.clone())
        .collect();

    #[derive(serde::Serialize)]
    struct Phase {
        episodes: u64,
        steps: u64,
        episodes_per_sec: f64,
        p50_step_us: u64,
        p99_step_us: u64,
        typed_refusals: u64,
    }
    #[derive(serde::Serialize)]
    struct LoadtestReport {
        workers: usize,
        codec: String,
        victim_tenants: usize,
        noisy_clients: usize,
        tenant_sessions: usize,
        spin_us: u64,
        window_ms: u64,
        episode_steps: u64,
        uncontended: Phase,
        contended: Phase,
        /// Victim p99 step latency, contended over uncontended.
        p99_ratio: f64,
        /// Jain's fairness index over victim episode throughput under load.
        fairness: f64,
        noisy_steps: u64,
        noisy_refusals: u64,
        broker_admitted: u64,
        broker_refused: u64,
        broker_shed: u64,
        broker_quota_refusals: u64,
        parked_sessions: usize,
        drain: cg_core::DrainReport,
        unrecovered: Vec<String>,
    }
    let report = LoadtestReport {
        workers,
        codec: codec.name().to_string(),
        victim_tenants: victims,
        noisy_clients,
        tenant_sessions,
        spin_us,
        window_ms,
        episode_steps,
        uncontended,
        contended: contended_phase,
        p99_ratio,
        fairness,
        noisy_steps,
        noisy_refusals,
        broker_admitted: tel.broker.admitted.get(),
        broker_refused: tel.broker.refused.get(),
        broker_shed: tel.broker.shed.get(),
        broker_quota_refusals: tel.broker.quota_refusals.get(),
        parked_sessions,
        drain,
        unrecovered,
    };

    let rendered = serde_json::to_string_pretty(&report)?;
    if let Some(path) = &out_path {
        std::fs::write(path, format!("{rendered}\n"))?;
        eprintln!("loadtest: report written to {path}");
    }
    if json {
        println!("{rendered}");
    } else {
        println!(
            "loadtest: {} victims × {}ms windows, {} noisy clients (quota {})",
            report.victim_tenants, report.window_ms, report.noisy_clients, report.tenant_sessions
        );
        println!(
            "  uncontended: {} episodes ({:.1}/s), step p50 {}µs p99 {}µs",
            report.uncontended.episodes,
            report.uncontended.episodes_per_sec,
            report.uncontended.p50_step_us,
            report.uncontended.p99_step_us
        );
        println!(
            "  contended:   {} episodes ({:.1}/s), step p50 {}µs p99 {}µs — p99 ratio {:.2}",
            report.contended.episodes,
            report.contended.episodes_per_sec,
            report.contended.p50_step_us,
            report.contended.p99_step_us,
            report.p99_ratio
        );
        println!(
            "  fairness {:.3}; noisy tenant: {} steps, {} typed refusals",
            report.fairness, report.noisy_steps, report.noisy_refusals
        );
        println!(
            "  door: {} admitted, {} refused ({} quota), {} shed; drain checkpointed {} \
             ({} parked), shed {} queued",
            report.broker_admitted,
            report.broker_refused,
            report.broker_quota_refusals,
            report.broker_shed,
            report.drain.checkpointed,
            report.parked_sessions,
            report.drain.shed_queued
        );
        if !report.unrecovered.is_empty() {
            println!("  unrecovered ({}):", report.unrecovered.len());
            for e in &report.unrecovered {
                println!("    {e}");
            }
        }
    }

    if linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(linger_ms));
    }

    // Gates.
    let mut failures = Vec::new();
    if !report.unrecovered.is_empty() {
        failures.push(format!(
            "{} unrecovered victim errors",
            report.unrecovered.len()
        ));
    }
    if require_shed && report.broker_refused + report.broker_shed == 0 {
        failures.push("deliberate overload produced zero refusals or sheds".to_string());
    }
    if min_fairness > 0.0 && report.fairness < min_fairness {
        failures.push(format!(
            "fairness {:.3} below required {min_fairness:.3}",
            report.fairness
        ));
    }
    if max_p99_ratio > 0.0 && report.p99_ratio > max_p99_ratio {
        failures.push(format!(
            "victim p99 ratio {:.2} above allowed {max_p99_ratio:.2}",
            report.p99_ratio
        ));
    }
    if parked_sessions > 0 && report.drain.checkpointed < parked_sessions {
        failures.push(format!(
            "drain checkpointed {} of {parked_sessions} parked sessions",
            report.drain.checkpointed
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; ").into())
    }
}

/// One measured configuration of the wire benchmark: a codec crossed with
/// a call discipline (serial round trips vs a pipelined request window).
#[derive(serde::Serialize)]
struct WireRun {
    codec: String,
    mode: String,
    episodes: u64,
    steps: u64,
    /// Episode-step-loop throughput from the median episode; session
    /// setup/teardown (serial and codec-independent) is excluded.
    episodes_per_sec: f64,
    steps_per_sec: f64,
    p50_step_us: u64,
    p99_step_us: u64,
    /// One-directional wire bytes per step (requests + replies, client view).
    bytes_per_step: u64,
    decode_errors: u64,
}

/// `cg bench-wire`: measure the wire protocol itself — the JSON and CGB1
/// binary codecs crossed with serial and pipelined call disciplines — over
/// real TCP against an in-process llvm-v0 server. Every run replays the
/// same deterministic action script and requests graph-heavy observations
/// (`InstCount`, `Autophase`, `Inst2vec`, `Programl`), and the report
/// asserts that all four configurations produced byte-identical
/// observations and derived `IrInstructionCount` rewards before comparing
/// throughput. Emits the committed `BENCH_wire.json`; the built-in gates
/// (`--no-gates` to disable) require the binary codec to move at least 3x
/// fewer bytes per step than JSON, the pipelined discipline to beat serial
/// episodes/s, and zero decode errors.
fn bench_wire(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::service::{Request, Response, TcpTransport};
    use cg_core::WireCodec;
    use std::time::{Duration, Instant};

    let mut benchmark = "benchmark://cbench-v1/sha".to_string();
    let mut episodes: u64 = 10;
    let mut episode_len: usize = 12;
    let mut window: usize = 6;
    let mut out_path = "BENCH_wire.json".to_string();
    let mut json = false;
    let mut gates = true;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match flag.as_str() {
            "--benchmark" => benchmark = val("--benchmark")?.clone(),
            "--episodes" => episodes = val("--episodes")?.parse::<u64>()?.max(1),
            "--episode-len" => episode_len = val("--episode-len")?.parse::<usize>()?.max(1),
            "--window" => window = val("--window")?.parse::<usize>()?.max(1),
            "--out" => out_path = val("--out")?.clone(),
            "--json" => json = true,
            "--no-gates" => gates = false,
            other => return Err(format!("unknown bench-wire flag `{other}`").into()),
        }
    }

    // The same deterministic action script for every configuration: cycle
    // the bench-ir pass mix so episodes do real optimization work and the
    // graph observations shrink/grow the same way in every run.
    let space = cg_llvm::action_space::ActionSpace::new();
    let script: Vec<usize> = [
        "mem2reg",
        "gvn",
        "licm",
        "early-cse",
        "sccp",
        "instcombine",
        "dce",
        "jump-threading",
        "adce",
    ]
    .iter()
    .cycle()
    .take(episode_len)
    .map(|n| {
        space
            .index_of(n)
            .unwrap_or_else(|| panic!("unknown pass `{n}`"))
    })
    .collect();
    let obs_spaces: Vec<String> = ["InstCount", "Autophase", "Inst2vec", "Programl"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let factory = cg_core::envs::session_factory("llvm-v0").map_err(cg_core::CgError::Unknown)?;
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    // Detached on purpose: `serve_tcp` blocks in `accept` for its whole
    // life, so the thread is reaped by process exit, not joined.
    std::thread::spawn(move || cg_core::service::serve_tcp(listener, factory));

    let tel = cg_telemetry::global();
    // `(responses, rewards)` digest of one run: the serialized `Stepped`
    // frames in step order plus the per-step IrInstructionCount rewards
    // derived from the InstCount observation. Every configuration must
    // produce the same digest — codecs may not change episode semantics.
    type Digest = (Vec<String>, Vec<f64>);
    let mut digests: Vec<(String, Digest)> = Vec::new();

    // Returns the per-step latencies and the step-loop wall time. Session
    // setup/teardown is excluded from the timing on purpose: it is serial
    // and identical across configurations, and would only dilute the wire
    // effect under test.
    let run_episode = |transport: &TcpTransport,
                       pipelined: bool,
                       digest: Option<&mut Digest>|
     -> Result<(Vec<u64>, f64), Box<dyn std::error::Error>> {
        let sid = match transport.call(Request::StartSession {
            benchmark: benchmark.clone(),
            action_space: 0,
        })? {
            Response::SessionStarted { session_id } => session_id,
            other => return Err(format!("start answered {other:?}").into()),
        };
        let mut lat_us = Vec::with_capacity(episode_len);
        let mut stepped = Vec::with_capacity(episode_len);
        let loop_started = Instant::now();
        if pipelined {
            for chunk in script.chunks(window) {
                let reqs: Vec<Request> = chunk
                    .iter()
                    .map(|&a| Request::Step {
                        session_id: sid,
                        actions: vec![a],
                        observation_spaces: obs_spaces.clone(),
                    })
                    .collect();
                let issued = Instant::now();
                let replies = transport.call_pipelined(&reqs)?;
                let per_step = issued.elapsed().as_micros() as u64 / chunk.len() as u64;
                for r in replies {
                    lat_us.push(per_step);
                    match r {
                        Response::Stepped { .. } => stepped.push(r),
                        other => return Err(format!("step answered {other:?}").into()),
                    }
                }
            }
        } else {
            for &a in &script {
                let issued = Instant::now();
                let r = transport.call(Request::Step {
                    session_id: sid,
                    actions: vec![a],
                    observation_spaces: obs_spaces.clone(),
                })?;
                lat_us.push(issued.elapsed().as_micros() as u64);
                match r {
                    Response::Stepped { .. } => stepped.push(r),
                    other => return Err(format!("step answered {other:?}").into()),
                }
            }
        }
        let loop_secs = loop_started.elapsed().as_secs_f64();
        let _ = transport.call(Request::EndSession { session_id: sid });
        if let Some(digest) = digest {
            // IrInstructionCount reward: the drop in total
            // instructions (InstCount[0]) per step.
            let mut prev: Option<i64> = None;
            for r in &stepped {
                let Response::Stepped { observations, .. } = r else {
                    unreachable!()
                };
                let total = match &observations[0] {
                    cg_core::space::Observation::IntVector(v) => v[0],
                    other => return Err(format!("InstCount answered {other:?}").into()),
                };
                if let Some(prev) = prev {
                    digest.1.push((prev - total) as f64);
                }
                prev = Some(total);
                digest.0.push(serde_json::to_string(r)?);
            }
        }
        Ok((lat_us, loop_secs))
    };

    struct CfgState {
        codec: WireCodec,
        pipelined: bool,
        transport: TcpTransport,
        label: String,
        lat_us: Vec<u64>,
        ep_secs: Vec<f64>,
        digest: Digest,
        bytes: u64,
        decode_errors: u64,
    }
    let mut cfgs: Vec<CfgState> = Vec::new();
    for (codec, pipelined) in [
        (WireCodec::Json, false),
        (WireCodec::Json, true),
        (WireCodec::Binary, false),
        (WireCodec::Binary, true),
    ] {
        let transport = TcpTransport::connect(&addr, Duration::from_secs(120))?;
        transport.set_codec(codec);
        cfgs.push(CfgState {
            codec,
            pipelined,
            transport,
            label: format!(
                "{}-{}",
                codec.name(),
                if pipelined { "pipelined" } else { "serial" }
            ),
            lat_us: Vec::new(),
            ep_secs: Vec::new(),
            digest: (Vec::new(), Vec::new()),
            bytes: 0,
            decode_errors: 0,
        });
    }

    eprintln!(
        "bench-wire: {episodes} episodes x {episode_len} steps on {benchmark}, \
         interleaved across {} configurations",
        cfgs.len()
    );
    // One untimed warm-up episode per configuration pages in the dataset
    // and settles codec negotiation outside the measured window.
    for cfg in &mut cfgs {
        run_episode(&cfg.transport, cfg.pipelined, None)?;
    }
    // Measured episodes run round-robin across the configurations so that
    // ambient machine load lands on all of them equally instead of biasing
    // whichever configuration it happened to overlap.
    for _ in 0..episodes {
        for cfg in &mut cfgs {
            let before = tel.wire.snapshot();
            let (lat_us, loop_secs) =
                run_episode(&cfg.transport, cfg.pipelined, Some(&mut cfg.digest))?;
            cfg.lat_us.extend(lat_us);
            cfg.ep_secs.push(loop_secs);
            let after = tel.wire.snapshot();
            // Client and server share this process's telemetry, so every
            // frame is accounted at both ends; halve for the one-way view.
            cfg.bytes += match cfg.codec {
                WireCodec::Json => {
                    (after.tx_bytes_json - before.tx_bytes_json)
                        + (after.rx_bytes_json - before.rx_bytes_json)
                }
                WireCodec::Binary => {
                    (after.tx_bytes_binary - before.tx_bytes_binary)
                        + (after.rx_bytes_binary - before.rx_bytes_binary)
                }
            } / 2;
            cfg.decode_errors += after.decode_errors - before.decode_errors;
        }
    }

    let steps = episodes * episode_len as u64;
    let mut runs: Vec<WireRun> = Vec::new();
    for mut cfg in cfgs {
        cfg.lat_us.sort_unstable();
        let pct = |p: f64| -> u64 {
            if cfg.lat_us.is_empty() {
                return 0;
            }
            let idx = ((cfg.lat_us.len() - 1) as f64 * p / 100.0).round() as usize;
            cfg.lat_us[idx]
        };
        // Throughput from the median episode, not total wall time: a
        // single scheduler hiccup in one episode would otherwise swing
        // the serial/pipelined comparison by more than the effect size.
        cfg.ep_secs.sort_by(f64::total_cmp);
        let median_ep = cfg.ep_secs[cfg.ep_secs.len() / 2].max(1e-9);
        runs.push(WireRun {
            codec: cfg.codec.name().to_string(),
            mode: if cfg.pipelined { "pipelined" } else { "serial" }.to_string(),
            episodes,
            steps,
            episodes_per_sec: 1.0 / median_ep,
            steps_per_sec: episode_len as f64 / median_ep,
            p50_step_us: pct(50.0),
            p99_step_us: pct(99.0),
            bytes_per_step: cfg.bytes / steps.max(1),
            decode_errors: cfg.decode_errors,
        });
        digests.push((cfg.label, cfg.digest));
    }

    // Cross-codec agreement: every configuration saw the same episodes.
    let (ref_label, ref_digest) = &digests[0];
    let mut divergences: Vec<String> = Vec::new();
    for (label, digest) in &digests[1..] {
        if digest != ref_digest {
            divergences.push(format!(
                "{label} diverged from {ref_label}: observations or rewards differ"
            ));
        }
    }

    let by = |codec: &str, mode: &str| -> &WireRun {
        runs.iter()
            .find(|r| r.codec == codec && r.mode == mode)
            .expect("all four runs present")
    };
    let json_serial = by("json", "serial");
    let binary_serial = by("binary", "serial");
    let binary_pipelined = by("binary", "pipelined");
    let bytes_ratio =
        json_serial.bytes_per_step as f64 / binary_serial.bytes_per_step.max(1) as f64;
    let pipeline_speedup = binary_pipelined.episodes_per_sec / binary_serial.episodes_per_sec;

    #[derive(serde::Serialize)]
    struct WireReport {
        benchmark: String,
        episodes: u64,
        episode_len: usize,
        window: usize,
        observation_spaces: Vec<String>,
        runs: Vec<WireRun>,
        /// JSON bytes/step over binary bytes/step (serial runs).
        bytes_ratio: f64,
        /// Binary pipelined episodes/s over binary serial episodes/s.
        pipeline_speedup: f64,
        /// Cross-configuration digest mismatches (must be empty).
        divergences: Vec<String>,
    }
    let report = WireReport {
        benchmark,
        episodes,
        episode_len,
        window,
        observation_spaces: obs_spaces,
        runs,
        bytes_ratio,
        pipeline_speedup,
        divergences,
    };

    let rendered = serde_json::to_string_pretty(&report)?;
    std::fs::write(&out_path, format!("{rendered}\n"))?;
    eprintln!("bench-wire: report written to {out_path}");
    if json {
        println!("{rendered}");
    } else {
        println!(
            "bench-wire: {} episodes x {} steps, window {}",
            report.episodes, report.episode_len, report.window
        );
        for r in &report.runs {
            println!(
                "  {:<7}{:<10} {:>8.2} eps/s  {:>9.1} steps/s  p50 {:>7}us  p99 {:>7}us  {:>9} B/step",
                r.codec, r.mode, r.episodes_per_sec, r.steps_per_sec, r.p50_step_us, r.p99_step_us,
                r.bytes_per_step
            );
        }
        println!(
            "  bytes ratio (json/binary): {:.2}x; pipeline speedup (binary): {:.2}x",
            report.bytes_ratio, report.pipeline_speedup
        );
    }

    let mut failures = Vec::new();
    if !report.divergences.is_empty() {
        failures.extend(report.divergences.iter().cloned());
    }
    for r in &report.runs {
        if r.decode_errors > 0 {
            failures.push(format!(
                "{}-{}: {} decode errors",
                r.codec, r.mode, r.decode_errors
            ));
        }
    }
    if gates {
        if report.bytes_ratio < 3.0 {
            failures.push(format!(
                "binary codec saved only {bytes_ratio:.2}x bytes/step (need >= 3x)"
            ));
        }
        if report.pipeline_speedup <= 1.0 {
            failures.push(format!(
                "pipelined episodes/s did not beat serial ({pipeline_speedup:.3}x)"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; ").into())
    }
}

/// Inputs to the stampede front-door soak, carved off `cg chaos` flags.
struct StampedeOpts {
    soak_ms: u64,
    stampede_size: usize,
    seed: u64,
    json: bool,
    serve_metrics_addr: Option<String>,
    linger_ms: u64,
    /// Wire codec the server negotiates (`--codec json` disables CGB1, so
    /// the soak exercises the legacy fallback path under stampede load).
    codec: cg_core::WireCodec,
}

/// What happened to one stampeding connect.
enum StampedeFate {
    /// Refused with a typed in-band `Overloaded` frame — the contract.
    TypedRefusal,
    /// Admitted under the connection cap and served a `Ping`.
    Admitted,
    /// Anything else: a hang, a dropped connection, a garbled frame.
    Untyped(String),
}

/// One stampeding connect, framed by hand so it can *read first*: a
/// connection refused at the cap is answered immediately with an
/// `Overloaded` frame and closed, while an admitted one stays silent
/// awaiting a request — which the read timeout classifies. Admitted
/// connects then prove they are actually served by round-tripping a Ping.
fn stampede_connect(addr: &str) -> StampedeFate {
    use std::io::{Read, Write};
    use std::time::Duration;

    fn read_frame_raw(stream: &mut std::net::TcpStream) -> std::io::Result<Vec<u8>> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len)?;
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut body)?;
        Ok(body)
    }

    let mut stream = match std::net::TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => return StampedeFate::Untyped(format!("connect: {e}")),
    };
    if let Err(e) = stream.set_read_timeout(Some(Duration::from_millis(500))) {
        return StampedeFate::Untyped(format!("set timeout: {e}"));
    }
    match read_frame_raw(&mut stream) {
        Ok(frame) => match serde_json::from_slice::<cg_core::service::Response>(&frame) {
            Ok(cg_core::service::Response::Overloaded { .. }) => StampedeFate::TypedRefusal,
            Ok(other) => StampedeFate::Untyped(format!("unsolicited reply: {other:?}")),
            Err(e) => StampedeFate::Untyped(format!("garbled refusal frame: {e}")),
        },
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            // Silence means admitted: the server is waiting for a request.
            let ping = match serde_json::to_vec(&cg_core::service::Request::Ping) {
                Ok(bytes) => bytes,
                Err(e) => return StampedeFate::Untyped(format!("encode ping: {e}")),
            };
            let frame = (ping.len() as u32).to_le_bytes();
            if let Err(e) = stream
                .write_all(&frame)
                .and_then(|()| stream.write_all(&ping))
            {
                return StampedeFate::Untyped(format!("send ping: {e}"));
            }
            match read_frame_raw(&mut stream) {
                Ok(frame) => match serde_json::from_slice::<cg_core::service::Response>(&frame) {
                    Ok(cg_core::service::Response::Pong) => StampedeFate::Admitted,
                    Ok(cg_core::service::Response::Overloaded { .. }) => StampedeFate::TypedRefusal,
                    Ok(other) => StampedeFate::Untyped(format!("ping answered {other:?}")),
                    Err(e) => StampedeFate::Untyped(format!("garbled pong: {e}")),
                },
                Err(e) => StampedeFate::Untyped(format!("ping read: {e}")),
            }
        }
        Err(e) => StampedeFate::Untyped(format!("read: {e}")),
    }
}

/// The `stampede` front-door fault (`cg chaos --faults stampede`): a
/// broker server with established tenant sessions is hit mid-soak by
/// bursts of simultaneous connects. Passes when every established session
/// keeps stepping through the bursts, every excess connect is refused with
/// a typed `Overloaded` (no hangs, no dropped connections), and the server
/// drains cleanly afterwards.
fn chaos_stampede(opts: StampedeOpts) -> Result<(), Box<dyn std::error::Error>> {
    use cg_core::service::{Request, Response, TcpClient};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const TENANTS: usize = 2;
    const CLIENTS: usize = 4;

    let tel = cg_telemetry::global();
    tel.reset();
    if let Some(maddr) = &opts.serve_metrics_addr {
        let bound = cg_telemetry::export::spawn_metrics_server(maddr)?;
        eprintln!("serving metrics on http://{bound}/metrics");
    }

    // Sized so every burst *must* shed: room for the established
    // connections plus a couple of stampede survivors.
    let cfg = cg_core::BrokerConfig {
        workers: 2,
        max_connections: CLIENTS + 2,
        retry_after_ms: 25,
        quota: cg_core::TenantQuota {
            max_sessions: 2,
            ..cg_core::TenantQuota::default()
        },
        binary_wire: opts.codec == cg_core::WireCodec::Binary,
        ..cg_core::BrokerConfig::default()
    };
    let plan = cg_core::chaos::FaultPlan::seeded(opts.seed).with_stampede_size(opts.stampede_size);
    let burst_size = plan.stampede_size;
    let (factory, stats) = plan.wrap(spin_factory(200));
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let broker = cg_core::Broker::new(factory, cfg);
    let server = {
        let broker = broker.clone();
        std::thread::spawn(move || broker.serve(listener))
    };

    // Established tenants: CLIENTS long-lived sessions stepping for the
    // whole soak, counting progress into shared counters.
    let stop = Arc::new(AtomicBool::new(false));
    let counters: Vec<Arc<AtomicU64>> = (0..CLIENTS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let drivers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let count = Arc::clone(&counters[i]);
            std::thread::spawn(move || -> Result<(), String> {
                let mut refusals = 0u64;
                let policy = cg_core::RetryPolicy::default()
                    .with_max_attempts(20)
                    .with_backoff(Duration::from_millis(5), Duration::from_millis(100))
                    .with_jitter(0.25, 0xE57 + i as u64);
                let mut client = TcpClient::connect_with_policy(
                    &addr,
                    Duration::from_secs(5),
                    cg_core::RetryPolicy::none(),
                )
                .map_err(|e| format!("client {i}: connect: {e}"))?;
                client.set_tenant(&format!("tenant-{}", i % TENANTS));
                let start = Request::StartSession {
                    benchmark: "benchmark://spin/soak".into(),
                    action_space: 0,
                };
                let sid = match call_absorbing_overload(&mut client, &start, &policy, &mut refusals)
                    .map_err(|e| format!("client {i}: start: {e}"))?
                {
                    Response::SessionStarted { session_id } => session_id,
                    other => return Err(format!("client {i}: start answered {other:?}")),
                };
                while !stop.load(Ordering::Relaxed) {
                    let step = Request::Step {
                        session_id: sid,
                        actions: vec![0],
                        observation_spaces: Vec::new(),
                    };
                    match call_absorbing_overload(&mut client, &step, &policy, &mut refusals) {
                        Ok(Response::Stepped { .. }) => {
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => return Err(format!("client {i}: step answered {other:?}")),
                        Err(e) => return Err(format!("client {i}: established session: {e}")),
                    }
                }
                let _ = client.call(&Request::EndSession { session_id: sid });
                Ok(())
            })
        })
        .collect();

    // Two bursts of simultaneous connects, a third of the soak apart.
    let soak = Duration::from_millis(opts.soak_ms.max(300));
    let started = Instant::now();
    let mut typed_refusals = 0u64;
    let mut admitted_connects = 0u64;
    let mut untyped: Vec<String> = Vec::new();
    let mut before_bursts: Vec<u64> = Vec::new();
    for (burst, at) in [soak / 3, soak * 2 / 3].into_iter().enumerate() {
        std::thread::sleep(at.saturating_sub(started.elapsed()));
        if burst == 0 {
            before_bursts = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        }
        stats.record_stampede();
        eprintln!(
            "stampede: burst {} — {burst_size} simultaneous connects",
            burst + 1
        );
        let barrier = Arc::new(std::sync::Barrier::new(burst_size));
        let connects: Vec<_> = (0..burst_size)
            .map(|_| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    stampede_connect(&addr)
                })
            })
            .collect();
        for handle in connects {
            match handle
                .join()
                .unwrap_or_else(|_| StampedeFate::Untyped("connect thread panicked".into()))
            {
                StampedeFate::TypedRefusal => typed_refusals += 1,
                StampedeFate::Admitted => admitted_connects += 1,
                StampedeFate::Untyped(e) => untyped.push(e),
            }
        }
    }
    std::thread::sleep(soak.saturating_sub(started.elapsed()));
    let after_bursts: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    stop.store(true, Ordering::Relaxed);
    let mut driver_errors: Vec<String> = Vec::new();
    for driver in drivers {
        match driver.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => driver_errors.push(e),
            Err(_) => driver_errors.push("established client panicked".into()),
        }
    }
    let drain = broker.drain(Duration::from_secs(2));
    let _ = server.join();

    let stalled: Vec<usize> = before_bursts
        .iter()
        .zip(after_bursts.iter())
        .enumerate()
        .filter(|(_, (before, after))| after <= before)
        .map(|(i, _)| i)
        .collect();
    let steps_total: u64 = after_bursts.iter().sum();
    let min_steps_during_bursts = before_bursts
        .iter()
        .zip(after_bursts.iter())
        .map(|(before, after)| after.saturating_sub(*before))
        .min()
        .unwrap_or(0);

    #[derive(serde::Serialize)]
    struct StampedeReport {
        soak_ms: u64,
        bursts: u64,
        burst_size: usize,
        established_clients: usize,
        steps_total: u64,
        min_steps_during_bursts: u64,
        typed_refusals: u64,
        admitted_connects: u64,
        untyped_failures: Vec<String>,
        driver_errors: Vec<String>,
        stalled_clients: Vec<usize>,
        drain_checkpointed: usize,
        drain_shed_queued: usize,
    }
    let report = StampedeReport {
        soak_ms: opts.soak_ms,
        bursts: stats.stampedes(),
        burst_size,
        established_clients: CLIENTS,
        steps_total,
        min_steps_during_bursts,
        typed_refusals,
        admitted_connects,
        untyped_failures: untyped,
        driver_errors,
        stalled_clients: stalled,
        drain_checkpointed: drain.checkpointed,
        drain_shed_queued: drain.shed_queued,
    };
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "stampede: {} bursts × {} connects over {}ms soak",
            report.bursts, report.burst_size, report.soak_ms
        );
        println!(
            "  established: {} clients, {} steps total, min {} steps during the burst window",
            report.established_clients, report.steps_total, report.min_steps_during_bursts
        );
        println!(
            "  connects: {} typed refusals, {} admitted, {} untyped failures",
            report.typed_refusals,
            report.admitted_connects,
            report.untyped_failures.len()
        );
        println!(
            "  drain: {} checkpointed, {} shed",
            report.drain_checkpointed, report.drain_shed_queued
        );
        for e in report
            .untyped_failures
            .iter()
            .chain(report.driver_errors.iter())
        {
            println!("    ! {e}");
        }
    }

    if opts.linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(opts.linger_ms));
    }

    let mut failures = Vec::new();
    if report.typed_refusals == 0 {
        failures.push("stampede produced no typed refusals (cap never engaged)".to_string());
    }
    if !report.untyped_failures.is_empty() {
        failures.push(format!(
            "{} connects failed without a typed refusal",
            report.untyped_failures.len()
        ));
    }
    if !report.driver_errors.is_empty() {
        failures.push(format!(
            "{} established clients failed",
            report.driver_errors.len()
        ));
    }
    if !report.stalled_clients.is_empty() {
        failures.push(format!(
            "established clients {:?} made no progress through the bursts",
            report.stalled_clients
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; ").into())
    }
}
