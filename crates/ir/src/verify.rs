//! The IR verifier: structural, SSA and type invariants.
//!
//! Every optimization pass must leave modules in a state that passes
//! [`verify_module`]; the environment validates this after each action when
//! strict mode is enabled, which is how reproducibility/correctness bugs in
//! "compiler" passes are detected and reported.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::analysis::{Cfg, DomTree};
use crate::inst::{Op, Terminator};
use crate::module::{BlockId, Function, Module, ValueId};
use crate::types::{Operand, Type};

/// A verification failure, with enough context to locate the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function (empty for module-level errors).
    pub function: String,
    /// Block containing the fault, if applicable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed")?;
        if !self.function.is_empty() {
            write!(f, " in @{}", self.function)?;
        }
        if let Some(b) = self.block {
            write!(f, " ({b})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
/// Returns the first [`VerifyError`] found: dangling block/function/global
/// references, φ/predecessor mismatches, SSA violations (double definition or
/// use not dominated by definition), or type errors.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for &fid in m.func_ids() {
        verify_function(m, m.func(fid))?;
    }
    Ok(())
}

/// Verifies one function of a module.
///
/// # Errors
/// See [`verify_module`].
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        function: f.name.clone(),
        block,
        message,
    };

    if f.num_blocks() == 0 {
        return Err(err(None, "function has no blocks".into()));
    }

    // Collect value types; check single definition.
    let mut types: HashMap<ValueId, Type> = HashMap::new();
    let mut def_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for (v, t) in &f.params {
        if types.insert(*v, *t).is_some() {
            return Err(err(None, format!("duplicate parameter value {v}")));
        }
    }
    for &bid in f.block_ids() {
        let b = f.block(bid);
        let mut seen_non_phi = false;
        for (i, inst) in b.insts.iter().enumerate() {
            if matches!(inst.op, Op::Phi(_)) {
                if seen_non_phi {
                    return Err(err(Some(bid), "phi after non-phi instruction".into()));
                }
            } else {
                seen_non_phi = true;
            }
            if let Some(d) = inst.dest {
                if inst.ty == Type::Void {
                    return Err(err(Some(bid), format!("value {d} has void type")));
                }
                if types.insert(d, inst.ty).is_some() {
                    return Err(err(Some(bid), format!("value {d} defined more than once")));
                }
                def_site.insert(d, (bid, i));
            } else if inst.ty != Type::Void {
                return Err(err(
                    Some(bid),
                    "instruction without destination must be void".into(),
                ));
            } else if !matches!(inst.op, Op::Store { .. } | Op::Call { .. }) {
                return Err(err(
                    Some(bid),
                    format!("op `{}` must produce a value", inst.op.mnemonic()),
                ));
            }
        }
        // Terminator target existence.
        for s in b.term.successors() {
            if !f.block_exists(s) {
                return Err(err(Some(bid), format!("branch to deleted block {s}")));
            }
        }
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let entry = f.entry();

    if !cfg.preds(entry).is_empty() {
        return Err(err(Some(entry), "entry block has predecessors".into()));
    }

    // Operand typing helper.
    let operand_ty = |o: &Operand| -> Result<Type, String> {
        match o {
            Operand::Value(v) => types
                .get(v)
                .copied()
                .ok_or_else(|| format!("use of undefined value {v}")),
            Operand::Const(c) => Ok(c.ty()),
            Operand::Global(g) => {
                if (g.0 as usize) < m.globals().len() {
                    Ok(Type::Ptr)
                } else {
                    Err(format!("reference to missing global #{}", g.0))
                }
            }
            Operand::Func(_) => Err("bare function references are not allowed as operands".into()),
        }
    };

    for &bid in f.block_ids() {
        let b = f.block(bid);
        let preds: HashSet<BlockId> = cfg.preds(bid).iter().copied().collect();
        for inst in &b.insts {
            let check = |o: &Operand, want: Type| -> Result<(), String> {
                let got = operand_ty(o)?;
                if got != want {
                    return Err(format!(
                        "operand type mismatch in `{}`: expected {want}, got {got}",
                        inst.op.mnemonic()
                    ));
                }
                Ok(())
            };
            let r: Result<(), String> = (|| {
                match &inst.op {
                    Op::Bin(bop, x, y) => {
                        let want = bop.ty();
                        if inst.ty != want {
                            return Err(format!("`{bop}` must produce {want}"));
                        }
                        check(x, want)?;
                        check(y, want)?;
                    }
                    Op::Icmp(_, x, y) => {
                        if inst.ty != Type::I1 {
                            return Err("icmp must produce i1".into());
                        }
                        check(x, Type::I64)?;
                        check(y, Type::I64)?;
                    }
                    Op::Fcmp(_, x, y) => {
                        if inst.ty != Type::I1 {
                            return Err("fcmp must produce i1".into());
                        }
                        check(x, Type::F64)?;
                        check(y, Type::F64)?;
                    }
                    Op::Select {
                        cond,
                        on_true,
                        on_false,
                    } => {
                        check(cond, Type::I1)?;
                        check(on_true, inst.ty)?;
                        check(on_false, inst.ty)?;
                    }
                    Op::Alloca { slots } => {
                        if inst.ty != Type::Ptr {
                            return Err("alloca must produce ptr".into());
                        }
                        if *slots == 0 {
                            return Err("alloca of zero slots".into());
                        }
                    }
                    Op::Load { ptr } => {
                        check(ptr, Type::Ptr)?;
                        if inst.ty == Type::Void {
                            return Err("load of void".into());
                        }
                    }
                    Op::Store { ptr, value } => {
                        check(ptr, Type::Ptr)?;
                        let _ = operand_ty(value)?;
                    }
                    Op::Gep { base, offset } => {
                        if inst.ty != Type::Ptr {
                            return Err("gep must produce ptr".into());
                        }
                        check(base, Type::Ptr)?;
                        check(offset, Type::I64)?;
                    }
                    Op::Call { callee, args } => {
                        if !m.func_exists(*callee) {
                            return Err("call to deleted function".into());
                        }
                        let target = m.func(*callee);
                        if target.params.len() != args.len() {
                            return Err(format!(
                                "call to @{} with {} args, expected {}",
                                target.name,
                                args.len(),
                                target.params.len()
                            ));
                        }
                        for (a, (_, want)) in args.iter().zip(&target.params) {
                            check(a, *want)?;
                        }
                        if inst.ty != target.ret_ty {
                            return Err(format!(
                                "call result type {} does not match @{} return type {}",
                                inst.ty, target.name, target.ret_ty
                            ));
                        }
                    }
                    Op::Phi(incomings) => {
                        if bid == entry {
                            return Err("phi in entry block".into());
                        }
                        let mut seen: HashSet<BlockId> = HashSet::new();
                        for (p, v) in incomings {
                            if !seen.insert(*p) {
                                return Err(format!("phi has duplicate incoming block {p}"));
                            }
                            if !preds.contains(p) {
                                return Err(format!("phi incoming from non-predecessor {p}"));
                            }
                            check(v, inst.ty)?;
                        }
                        if dom.is_reachable(bid) {
                            for p in &preds {
                                if !seen.contains(p) {
                                    return Err(format!(
                                        "phi missing incoming for predecessor {p}"
                                    ));
                                }
                            }
                        }
                    }
                    Op::Cast(kind, v) => {
                        let (src, dst) = kind.signature();
                        check(v, src)?;
                        if inst.ty != dst {
                            return Err(format!("cast {kind} must produce {dst}"));
                        }
                    }
                    Op::Not(v) => {
                        if inst.ty != Type::I64 && inst.ty != Type::I1 {
                            return Err("not must produce i64 or i1".into());
                        }
                        check(v, inst.ty)?;
                    }
                    Op::Neg(v) => {
                        if inst.ty != Type::I64 {
                            return Err("neg must produce i64".into());
                        }
                        check(v, Type::I64)?;
                    }
                    Op::FNeg(v) => {
                        if inst.ty != Type::F64 {
                            return Err("fneg must produce f64".into());
                        }
                        check(v, Type::F64)?;
                    }
                }
                Ok(())
            })();
            if let Err(msg) = r {
                return Err(err(Some(bid), msg));
            }
        }
        // Terminator typing.
        let r: Result<(), String> = (|| {
            match &b.term {
                Terminator::CondBr { cond, .. } => {
                    let got = operand_ty(cond)?;
                    if got != Type::I1 {
                        return Err(format!("condbr condition must be i1, got {got}"));
                    }
                }
                Terminator::Switch { value, cases, .. } => {
                    let got = operand_ty(value)?;
                    if got != Type::I64 {
                        return Err(format!("switch scrutinee must be i64, got {got}"));
                    }
                    let mut seen = HashSet::new();
                    for (v, _) in cases {
                        if !seen.insert(*v) {
                            return Err(format!("switch has duplicate case {v}"));
                        }
                    }
                }
                Terminator::Ret { value } => match (value, f.ret_ty) {
                    (None, Type::Void) => {}
                    (None, t) => return Err(format!("ret void in function returning {t}")),
                    (Some(_), Type::Void) => return Err("ret with value in void function".into()),
                    (Some(v), t) => {
                        let got = operand_ty(v)?;
                        if got != t {
                            return Err(format!("ret type mismatch: expected {t}, got {got}"));
                        }
                    }
                },
                _ => {}
            }
            Ok(())
        })();
        if let Err(msg) = r {
            return Err(err(Some(bid), msg));
        }
    }

    // SSA dominance: every use must be dominated by its definition.
    // Checked only in reachable blocks (unreachable code may be malformed in
    // this respect; passes delete it rather than fix it, as LLVM does).
    for &bid in dom.rpo() {
        let b = f.block(bid);
        let check_use =
            |v: ValueId, at: usize, is_phi_from: Option<BlockId>| -> Result<(), String> {
                if !types.contains_key(&v) {
                    return Err(format!("use of undefined value {v}"));
                }
                match def_site.get(&v) {
                    None => Ok(()), // parameter: dominates everything
                    Some(&(db, di)) => {
                        let ok = match is_phi_from {
                            // φ use: treated as a use at the end of the incoming
                            // predecessor block. Edges from unreachable
                            // predecessors can never execute, so (like LLVM) no
                            // dominance is required along them.
                            Some(pred) => {
                                if !dom.is_reachable(pred) || db == pred {
                                    true
                                } else {
                                    dom.dominates(db, pred)
                                }
                            }
                            None => {
                                if db == bid {
                                    di < at
                                } else {
                                    dom.dominates(db, bid)
                                }
                            }
                        };
                        if ok {
                            Ok(())
                        } else {
                            Err(format!("use of {v} not dominated by its definition"))
                        }
                    }
                }
            };
        for (i, inst) in b.insts.iter().enumerate() {
            let mut bad: Option<String> = None;
            if let Op::Phi(incs) = &inst.op {
                for (p, o) in incs {
                    if let Some(v) = o.as_value() {
                        if let Err(msg) = check_use(v, i, Some(*p)) {
                            bad = Some(msg);
                        }
                    }
                }
            } else {
                inst.op.for_each_operand(|o| {
                    if let Some(v) = o.as_value() {
                        if bad.is_none() {
                            if let Err(msg) = check_use(v, i, None) {
                                bad = Some(msg);
                            }
                        }
                    }
                });
            }
            if let Some(msg) = bad {
                return Err(err(Some(bid), msg));
            }
        }
        let mut bad: Option<String> = None;
        b.term.for_each_operand(|o| {
            if let Some(v) = o.as_value() {
                if bad.is_none() {
                    if let Err(msg) = check_use(v, usize::MAX, None) {
                        bad = Some(msg);
                    }
                }
            }
        });
        if let Some(msg) = bad {
            return Err(err(Some(bid), msg));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Inst, Pred};
    use crate::types::Operand;

    #[test]
    fn rejects_type_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::F64], Type::I64);
        let p = fb.param(0);
        // add i64 with an f64 operand: type error.
        let x = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.ret(Some(x));
        fb.finish();
        let m = mb.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("mismatch"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[], Type::I64);
        fb.ret(Some(Operand::Value(crate::ValueId(99))));
        fb.finish();
        let m = mb.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undefined"), "{e}");
    }

    #[test]
    fn rejects_non_dominating_def() {
        // entry -> (a, b) -> join; join uses a value defined only in a.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let a = fb.new_block();
        let b = fb.new_block();
        let join = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, a, b);
        fb.switch_to(a);
        let v = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.br(join);
        fb.switch_to(b);
        fb.br(join);
        fb.switch_to(join);
        fb.ret(Some(v)); // not dominated!
        fb.finish();
        let m = mb.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_phi_missing_incoming() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let a = fb.new_block();
        let b = fb.new_block();
        let join = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, a, b);
        fb.switch_to(a);
        fb.br(join);
        fb.switch_to(b);
        fb.br(join);
        fb.switch_to(join);
        let phi = fb.phi(Type::I64, vec![(a, Operand::const_int(1))]); // missing b
        fb.ret(Some(phi));
        fb.finish();
        let m = mb.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("missing incoming"), "{e}");
    }

    #[test]
    fn rejects_double_definition() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[], Type::I64);
        let x = fb.bin(BinOp::Add, Operand::const_int(1), Operand::const_int(2));
        fb.ret(Some(x));
        fb.finish();
        let mut m = mb.finish();
        // Manually duplicate the defining instruction.
        let fid = m.find_func("f").unwrap();
        let entry = m.func(fid).entry();
        let inst = m.func(fid).block(entry).insts[0].clone();
        m.func_mut(fid).block_mut(entry).insts.push(Inst {
            dest: inst.dest,
            ty: inst.ty,
            op: inst.op,
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("more than once"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("callee", &[Type::I64], Type::I64);
        let p = fb.param(0);
        fb.ret(Some(p));
        let callee = fb.finish();
        let mut fb = mb.begin_function("caller", &[], Type::I64);
        let r = fb.call(callee, Type::I64, vec![]).unwrap(); // 0 args, wants 1
        fb.ret(Some(r));
        fb.finish();
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.message.contains("args"), "{e}");
    }
}
