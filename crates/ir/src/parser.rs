//! Parser for the textual IR format emitted by [`crate::printer`].
//!
//! The parser is the inverse of the printer: for any verified module `m`,
//! `parse(&print_module(&m))` succeeds and prints back identically. It exists
//! so that benchmarks can be stored as text, user programs can be supplied as
//! custom benchmarks, and the Autophase/OpenTuner baseline architectures can
//! pay a realistic "read and parse the IR from disk" cost at every step.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{BinOp, CastKind, Inst, Op, Pred, Terminator};
use crate::module::{BlockId, FuncId, Function, Global, GlobalId, InlineHint, Module, ValueId};
use crate::types::{Operand, Type};

/// An error produced while parsing textual IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] describing the first syntax or reference error.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).parse()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Value(u32),      // %n
    Global(String),  // @name
    FuncRef(String), // &name
    Int(i64),
    FloatBits(u64),
    Str(String),
    Punct(char),
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            toks: Vec::new(),
            pos: 0,
            text,
        }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn lex(&mut self) -> Result<(), ParseError> {
        let mut line = 1usize;
        let mut chars = self.text.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                '\n' => {
                    line += 1;
                    chars.next();
                }
                c if c.is_whitespace() => {
                    chars.next();
                }
                ';' => {
                    // comment to end of line
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(c) => s.push(c),
                            None => return self.err(line, "unterminated string"),
                        }
                    }
                    self.toks.push((Tok::Str(s), line));
                }
                '%' => {
                    chars.next();
                    let n = lex_u32(&mut chars).ok_or(ParseError {
                        line,
                        message: "bad value id".into(),
                    })?;
                    self.toks.push((Tok::Value(n), line));
                }
                '@' | '&' => {
                    let sigil = c;
                    chars.next();
                    let name = lex_ident(&mut chars);
                    if name.is_empty() {
                        return self.err(line, "expected symbol name");
                    }
                    let t = if sigil == '@' {
                        Tok::Global(name)
                    } else {
                        Tok::FuncRef(name)
                    };
                    self.toks.push((t, line));
                }
                '-' => {
                    chars.next();
                    match lex_u64(&mut chars) {
                        Some(n) => self.toks.push((Tok::Int(-(n as i64)), line)),
                        None => return self.err(line, "expected digits after '-'"),
                    }
                }
                c if c.is_ascii_digit() => {
                    let n = lex_u64(&mut chars).unwrap();
                    self.toks.push((Tok::Int(n as i64), line));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let id = lex_ident(&mut chars);
                    // float constants print as f0x....
                    if let Some(hex) = id.strip_prefix("f0x") {
                        match u64::from_str_radix(hex, 16) {
                            Ok(bits) => self.toks.push((Tok::FloatBits(bits), line)),
                            Err(_) => return self.err(line, format!("bad float literal {id}")),
                        }
                    } else {
                        self.toks.push((Tok::Ident(id), line));
                    }
                }
                '=' | ',' | '(' | ')' | '[' | ']' | '{' | '}' | ':' => {
                    chars.next();
                    self.toks.push((Tok::Punct(c), line));
                }
                other => return self.err(line, format!("unexpected character {other:?}")),
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => self.err(line, format!("expected {c:?}, found {other:?}")),
        }
    }

    fn expect_ident(&mut self, s: &str) -> Result<(), ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(i)) if i == s => Ok(()),
            other => self.err(line, format!("expected `{s}`, found {other:?}")),
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(i)) => match i.as_str() {
                "i1" => Ok(Type::I1),
                "i64" => Ok(Type::I64),
                "f64" => Ok(Type::F64),
                "ptr" => Ok(Type::Ptr),
                "void" => Ok(Type::Void),
                other => self.err(line, format!("unknown type `{other}`")),
            },
            other => self.err(line, format!("expected type, found {other:?}")),
        }
    }

    fn parse(mut self) -> Result<Module, ParseError> {
        self.lex()?;

        // Pre-pass: register function and global names in definition order so
        // that forward references resolve.
        let mut func_names: HashMap<String, FuncId> = HashMap::new();
        let mut global_names: HashMap<String, GlobalId> = HashMap::new();
        {
            let mut i = 0;
            let mut nfuncs = 0u32;
            let mut nglobals = 0u32;
            let mut depth = 0i32;
            while i < self.toks.len() {
                match &self.toks[i].0 {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => depth -= 1,
                    Tok::Ident(id) if depth == 0 && id == "define" => {
                        // define <ty> @name
                        if let Some((Tok::Global(name), _)) = self.toks.get(i + 2) {
                            func_names.insert(name.clone(), FuncId(nfuncs));
                            nfuncs += 1;
                        }
                    }
                    Tok::Ident(id) if depth == 0 && id == "global" => {
                        if let Some((Tok::Global(name), _)) = self.toks.get(i + 1) {
                            global_names.insert(name.clone(), GlobalId(nglobals));
                            nglobals += 1;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }

        self.expect_ident("module")?;
        let line = self.line();
        let name = match self.next() {
            Some(Tok::Str(s)) => s,
            other => {
                return self.err(
                    line,
                    format!("expected module name string, found {other:?}"),
                )
            }
        };
        let mut module = Module::new(name);

        let ctx = NameCtx {
            funcs: func_names,
            globals: global_names,
        };

        loop {
            match self.peek() {
                None => break,
                Some(Tok::Ident(i)) if i == "global" => {
                    self.next();
                    let line = self.line();
                    let gname = match self.next() {
                        Some(Tok::Global(n)) => n,
                        other => return self.err(line, format!("expected @name, found {other:?}")),
                    };
                    let line = self.line();
                    let slots = match self.next() {
                        Some(Tok::Int(n)) if n >= 0 => n as u32,
                        other => {
                            return self.err(line, format!("expected slot count, found {other:?}"))
                        }
                    };
                    let constant = matches!(self.peek(), Some(Tok::Ident(i)) if i == "const");
                    if constant {
                        self.next();
                    }
                    self.expect_punct('[')?;
                    let mut init = Vec::new();
                    if !matches!(self.peek(), Some(Tok::Punct(']'))) {
                        loop {
                            let line = self.line();
                            match self.next() {
                                Some(Tok::Int(v)) => init.push(v),
                                other => {
                                    return self
                                        .err(line, format!("expected init value, found {other:?}"))
                                }
                            }
                            if matches!(self.peek(), Some(Tok::Punct(','))) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_punct(']')?;
                    module.add_global(Global {
                        name: gname,
                        slots,
                        init,
                        constant,
                    });
                }
                Some(Tok::Ident(i)) if i == "define" => {
                    let f = self.parse_function(&ctx)?;
                    module.add_function(f);
                }
                other => {
                    let line = self.line();
                    return self.err(
                        line,
                        format!("expected `global` or `define`, found {other:?}"),
                    );
                }
            }
        }
        Ok(module)
    }

    fn parse_function(&mut self, ctx: &NameCtx) -> Result<Function, ParseError> {
        self.expect_ident("define")?;
        let ret_ty = self.parse_type()?;
        let line = self.line();
        let name = match self.next() {
            Some(Tok::Global(n)) => n,
            other => return self.err(line, format!("expected @name, found {other:?}")),
        };
        self.expect_punct('(')?;
        let mut param_tys = Vec::new();
        let mut max_value = 0u32;
        if !matches!(self.peek(), Some(Tok::Punct(')'))) {
            loop {
                let ty = self.parse_type()?;
                let line = self.line();
                match self.next() {
                    Some(Tok::Value(v)) => max_value = max_value.max(v + 1),
                    other => return self.err(line, format!("expected %n param, found {other:?}")),
                }
                param_tys.push(ty);
                if matches!(self.peek(), Some(Tok::Punct(','))) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        let mut hint = InlineHint::None;
        if matches!(self.peek(), Some(Tok::Ident(i)) if i == "hint") {
            self.next();
            self.expect_punct('(')?;
            let line = self.line();
            match self.next() {
                Some(Tok::Ident(h)) if h == "always" => hint = InlineHint::Always,
                Some(Tok::Ident(h)) if h == "never" => hint = InlineHint::Never,
                other => return self.err(line, format!("bad hint {other:?}")),
            }
            self.expect_punct(')')?;
        }
        self.expect_punct('{')?;

        let mut f = Function::new(name, &param_tys, ret_ty);
        f.inline_hint = hint;

        // Blocks: `bbN:` then instructions until next label or `}`.
        let mut current: Option<BlockId> = None;
        loop {
            match self.peek() {
                Some(Tok::Punct('}')) => {
                    self.next();
                    break;
                }
                Some(Tok::Ident(id))
                    if id.starts_with("bb")
                        && matches!(self.toks.get(self.pos + 1), Some((Tok::Punct(':'), _))) =>
                {
                    let line = self.line();
                    let n: u32 = match id[2..].parse() {
                        Ok(n) => n,
                        Err(_) => return self.err(line, format!("bad block label `{id}`")),
                    };
                    self.next();
                    self.next(); // ':'
                    let bid = BlockId(n);
                    f.add_block_with_id(bid);
                    current = Some(bid);
                }
                Some(_) => {
                    let line = self.line();
                    let Some(bid) = current else {
                        return self.err(line, "instruction before first block label");
                    };
                    let item = self.parse_inst_or_term(ctx, &mut max_value)?;
                    match item {
                        InstOrTerm::Inst(inst) => f.block_mut(bid).insts.push(inst),
                        InstOrTerm::Term(t) => f.block_mut(bid).term = t,
                    }
                }
                None => return self.err(self.line(), "unexpected end of input in function body"),
            }
        }
        f.reserve_values(max_value);
        Ok(f)
    }

    fn parse_operand(&mut self, ctx: &NameCtx, max_value: &mut u32) -> Result<Operand, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Value(v)) => {
                *max_value = (*max_value).max(v + 1);
                Ok(Operand::Value(ValueId(v)))
            }
            Some(Tok::Int(i)) => Ok(Operand::const_int(i)),
            Some(Tok::FloatBits(b)) => Ok(Operand::const_float(f64::from_bits(b))),
            Some(Tok::Ident(i)) if i == "true" => Ok(Operand::const_bool(true)),
            Some(Tok::Ident(i)) if i == "false" => Ok(Operand::const_bool(false)),
            Some(Tok::Global(g)) => match ctx.globals.get(&g) {
                Some(id) => Ok(Operand::Global(*id)),
                None => self.err(line, format!("unknown global @{g}")),
            },
            Some(Tok::FuncRef(fname)) => match ctx.funcs.get(&fname) {
                Some(id) => Ok(Operand::Func(*id)),
                None => self.err(line, format!("unknown function &{fname}")),
            },
            other => self.err(line, format!("expected operand, found {other:?}")),
        }
    }

    fn parse_block_ref(&mut self) -> Result<BlockId, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(id)) if id.starts_with("bb") => match id[2..].parse() {
                Ok(n) => Ok(BlockId(n)),
                Err(_) => self.err(line, format!("bad block ref `{id}`")),
            },
            other => self.err(line, format!("expected block ref, found {other:?}")),
        }
    }

    fn parse_pred(&mut self) -> Result<Pred, ParseError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(p)) => match p.as_str() {
                "eq" => Ok(Pred::Eq),
                "ne" => Ok(Pred::Ne),
                "lt" => Ok(Pred::Lt),
                "le" => Ok(Pred::Le),
                "gt" => Ok(Pred::Gt),
                "ge" => Ok(Pred::Ge),
                other => self.err(line, format!("unknown predicate `{other}`")),
            },
            other => self.err(line, format!("expected predicate, found {other:?}")),
        }
    }

    fn parse_inst_or_term(
        &mut self,
        ctx: &NameCtx,
        max_value: &mut u32,
    ) -> Result<InstOrTerm, ParseError> {
        let line = self.line();
        // Optional `%n =` destination.
        let dest = if let Some(Tok::Value(v)) = self.peek() {
            let v = *v;
            self.next();
            self.expect_punct('=')?;
            *max_value = (*max_value).max(v + 1);
            Some(ValueId(v))
        } else {
            None
        };
        let mnem = match self.next() {
            Some(Tok::Ident(m)) => m,
            other => return self.err(line, format!("expected mnemonic, found {other:?}")),
        };

        let binop = BinOp::all().iter().find(|b| b.mnemonic() == mnem).copied();
        if let Some(b) = binop {
            let ty = self.parse_type()?;
            let x = self.parse_operand(ctx, max_value)?;
            self.expect_punct(',')?;
            let y = self.parse_operand(ctx, max_value)?;
            let dest = dest.ok_or(ParseError {
                line,
                message: "binop needs a destination".into(),
            })?;
            return Ok(InstOrTerm::Inst(Inst::new(dest, ty, Op::Bin(b, x, y))));
        }

        match mnem.as_str() {
            "icmp" | "fcmp" => {
                let p = self.parse_pred()?;
                let x = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let y = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "cmp needs a destination".into(),
                })?;
                let op = if mnem == "icmp" {
                    Op::Icmp(p, x, y)
                } else {
                    Op::Fcmp(p, x, y)
                };
                Ok(InstOrTerm::Inst(Inst::new(dest, Type::I1, op)))
            }
            "select" => {
                let ty = self.parse_type()?;
                let c = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let t = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let e = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "select needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(
                    dest,
                    ty,
                    Op::Select {
                        cond: c,
                        on_true: t,
                        on_false: e,
                    },
                )))
            }
            "alloca" => {
                let line = self.line();
                let slots = match self.next() {
                    Some(Tok::Int(n)) if n >= 0 => n as u32,
                    other => {
                        return self.err(line, format!("expected slot count, found {other:?}"))
                    }
                };
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "alloca needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(
                    dest,
                    Type::Ptr,
                    Op::Alloca { slots },
                )))
            }
            "load" => {
                let ty = self.parse_type()?;
                let ptr = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "load needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(dest, ty, Op::Load { ptr })))
            }
            "store" => {
                let ptr = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let value = self.parse_operand(ctx, max_value)?;
                Ok(InstOrTerm::Inst(Inst::new_void(Op::Store { ptr, value })))
            }
            "gep" => {
                let base = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let offset = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "gep needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(
                    dest,
                    Type::Ptr,
                    Op::Gep { base, offset },
                )))
            }
            "call" => {
                let ty = self.parse_type()?;
                let line = self.line();
                let callee_name = match self.next() {
                    Some(Tok::Global(n)) => n,
                    other => return self.err(line, format!("expected @callee, found {other:?}")),
                };
                let callee = *ctx.funcs.get(&callee_name).ok_or(ParseError {
                    line,
                    message: format!("unknown function @{callee_name}"),
                })?;
                self.expect_punct('(')?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Some(Tok::Punct(')'))) {
                    loop {
                        args.push(self.parse_operand(ctx, max_value)?);
                        if matches!(self.peek(), Some(Tok::Punct(','))) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_punct(')')?;
                let op = Op::Call { callee, args };
                match dest {
                    Some(d) => Ok(InstOrTerm::Inst(Inst::new(d, ty, op))),
                    None => Ok(InstOrTerm::Inst(Inst::new_void(op))),
                }
            }
            "phi" => {
                let ty = self.parse_type()?;
                let mut incomings = Vec::new();
                while matches!(self.peek(), Some(Tok::Punct('['))) {
                    self.next();
                    let b = self.parse_block_ref()?;
                    let v = self.parse_operand(ctx, max_value)?;
                    self.expect_punct(']')?;
                    incomings.push((b, v));
                }
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "phi needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(dest, ty, Op::Phi(incomings))))
            }
            "cast" => {
                let line = self.line();
                let kind = match self.next() {
                    Some(Tok::Ident(k)) => match k.as_str() {
                        "i2f" => CastKind::IntToFloat,
                        "f2i" => CastKind::FloatToInt,
                        "b2i" => CastKind::BoolToInt,
                        "i2b" => CastKind::IntToBool,
                        "i2p" => CastKind::IntToPtr,
                        "p2i" => CastKind::PtrToInt,
                        other => return self.err(line, format!("unknown cast `{other}`")),
                    },
                    other => return self.err(line, format!("expected cast kind, found {other:?}")),
                };
                let v = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "cast needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(
                    dest,
                    kind.signature().1,
                    Op::Cast(kind, v),
                )))
            }
            "not" => {
                let ty = self.parse_type()?;
                let v = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "not needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(dest, ty, Op::Not(v))))
            }
            "neg" => {
                let v = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "neg needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(dest, Type::I64, Op::Neg(v))))
            }
            "fneg" => {
                let v = self.parse_operand(ctx, max_value)?;
                let dest = dest.ok_or(ParseError {
                    line,
                    message: "fneg needs a destination".into(),
                })?;
                Ok(InstOrTerm::Inst(Inst::new(dest, Type::F64, Op::FNeg(v))))
            }
            // Terminators.
            "br" => {
                let t = self.parse_block_ref()?;
                Ok(InstOrTerm::Term(Terminator::Br { target: t }))
            }
            "condbr" => {
                let c = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                let t = self.parse_block_ref()?;
                self.expect_punct(',')?;
                let e = self.parse_block_ref()?;
                Ok(InstOrTerm::Term(Terminator::CondBr {
                    cond: c,
                    on_true: t,
                    on_false: e,
                }))
            }
            "switch" => {
                let v = self.parse_operand(ctx, max_value)?;
                self.expect_punct(',')?;
                self.expect_ident("default")?;
                let default = self.parse_block_ref()?;
                let mut cases = Vec::new();
                while matches!(self.peek(), Some(Tok::Punct('['))) {
                    self.next();
                    let line = self.line();
                    let cv = match self.next() {
                        Some(Tok::Int(n)) => n,
                        other => {
                            return self.err(line, format!("expected case value, found {other:?}"))
                        }
                    };
                    self.expect_punct(':')?;
                    let b = self.parse_block_ref()?;
                    self.expect_punct(']')?;
                    cases.push((cv, b));
                }
                Ok(InstOrTerm::Term(Terminator::Switch {
                    value: v,
                    cases,
                    default,
                }))
            }
            "ret" => {
                if matches!(self.peek(), Some(Tok::Ident(i)) if i == "void") {
                    self.next();
                    Ok(InstOrTerm::Term(Terminator::Ret { value: None }))
                } else {
                    let v = self.parse_operand(ctx, max_value)?;
                    Ok(InstOrTerm::Term(Terminator::Ret { value: Some(v) }))
                }
            }
            "unreachable" => Ok(InstOrTerm::Term(Terminator::Unreachable)),
            other => self.err(line, format!("unknown mnemonic `{other}`")),
        }
    }
}

struct NameCtx {
    funcs: HashMap<String, FuncId>,
    globals: HashMap<String, GlobalId>,
}

enum InstOrTerm {
    Inst(Inst),
    Term(Terminator),
}

fn lex_ident(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '/' {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s
}

fn lex_u32(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u32> {
    lex_u64(chars).and_then(|v| u32::try_from(v).ok())
}

fn lex_u64(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u64> {
    let mut any = false;
    let mut v: u64 = 0;
    while let Some(&c) = chars.peek() {
        if let Some(d) = c.to_digit(10) {
            any = true;
            v = v.wrapping_mul(10).wrapping_add(d as u64);
            chars.next();
        } else {
            break;
        }
    }
    any.then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module "test"
global @tab 4 const [1, 2, 3, 4]
define i64 @main(i64 %0) {
bb0:
  %1 = add i64 %0, 1
  %2 = icmp lt %1, 10
  condbr %2, bb1, bb2
bb1:
  %3 = load i64 @tab
  ret %3
bb2:
  %4 = call i64 @helper(%1)
  ret %4
}
define i64 @helper(i64 %0) hint(always) {
bb0:
  %1 = mul i64 %0, %0
  ret %1
}
"#;

    #[test]
    fn parse_and_roundtrip() {
        let m = parse_module(SAMPLE).unwrap();
        crate::verify::verify_module(&m).unwrap();
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.globals().len(), 1);
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(
            printed,
            print_module(&m2),
            "print→parse→print is a fixpoint"
        );
    }

    #[test]
    fn forward_references_resolve() {
        // @main calls @helper which is defined later.
        let m = parse_module(SAMPLE).unwrap();
        let main = m.find_func("main").unwrap();
        let helper = m.find_func("helper").unwrap();
        let found_call = m
            .func(main)
            .blocks()
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(&i.op, Op::Call { callee, .. } if *callee == helper));
        assert!(found_call);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_module("module \"x\"\nbogus").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn comments_are_skipped() {
        let text =
            "module \"x\" ; trailing\n; full line\ndefine void @f() {\nbb0:\n  ret void\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    fn negative_and_float_constants() {
        let text = format!(
            "module \"x\"\ndefine f64 @f() {{\nbb0:\n  %0 = fadd f64 f{:#018x}, f{:#018x}\n  %1 = add i64 -5, 3\n  ret %0\n}}\n",
            (1.5f64).to_bits(),
            (2.5f64).to_bits()
        );
        let m = parse_module(&text).unwrap();
        crate::verify::verify_module(&m).unwrap();
    }
}
