//! Modules, functions, blocks and the value/block/function id spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::inst::{Inst, Op, Terminator};
use crate::types::Type;

/// Identifies an SSA value within a function (parameter or instruction
/// result). Printed as `%n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifies a basic block within a function. Printed as `bbN`. Stable
/// across block insertion and deletion (blocks live in an arena).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifies a function within a module. Stable across function deletion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a global variable within a module.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// A basic block: a straight-line sequence of instructions ended by a
/// [`Terminator`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Block {
    /// This block's id (equal to its arena slot).
    pub id: BlockId,
    /// The non-terminator instructions, in order. φ-nodes must be a prefix.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// The number of φ-nodes at the head of the block.
    pub fn phi_count(&self) -> usize {
        self.insts
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi(_)))
            .count()
    }
}

/// A global variable: `slots` 8-byte cells of module memory with an optional
/// initializer.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in 8-byte cells.
    pub slots: u32,
    /// Initial cell values (zero-padded to `slots`).
    pub init: Vec<i64>,
    /// True if the program never writes this global (enables optimizations).
    pub constant: bool,
}

/// A function: parameters, return type and a CFG of basic blocks.
///
/// Blocks are stored in an arena so that [`BlockId`]s remain stable when
/// passes delete blocks; `layout` holds the current textual/emission order
/// with the entry block first.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter values and types. Parameters occupy the first value ids.
    pub params: Vec<(ValueId, Type)>,
    /// Return type ([`Type::Void`] for procedures).
    pub ret_ty: Type,
    /// Inline-cost hint: functions marked `always_inline` are prioritized by
    /// the inliner; `no_inline` are skipped.
    pub inline_hint: InlineHint,
    blocks: Vec<Option<Block>>,
    layout: Vec<BlockId>,
    next_value: u32,
}

/// Inlining hints attached to functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum InlineHint {
    /// No preference; the inliner uses its cost model.
    #[default]
    None,
    /// Always profitable to inline.
    Always,
    /// Never inline.
    Never,
}

impl Function {
    /// Creates an empty function with the given signature. Parameters are
    /// assigned value ids `0..param_tys.len()`. The function initially has no
    /// blocks; create the entry with [`Function::add_block`].
    pub fn new(name: impl Into<String>, param_tys: &[Type], ret_ty: Type) -> Function {
        let params = param_tys
            .iter()
            .enumerate()
            .map(|(i, t)| (ValueId(i as u32), *t))
            .collect::<Vec<_>>();
        Function {
            name: name.into(),
            next_value: params.len() as u32,
            params,
            ret_ty,
            inline_hint: InlineHint::None,
            blocks: Vec::new(),
            layout: Vec::new(),
        }
    }

    /// Allocates a fresh SSA value id.
    pub fn fresh_value(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    /// The upper bound on value ids (all ids are `< value_bound()`).
    pub fn value_bound(&self) -> u32 {
        self.next_value
    }

    /// Raises the value id watermark (used by the parser).
    pub fn reserve_values(&mut self, bound: u32) {
        self.next_value = self.next_value.max(bound);
    }

    /// Adds a new empty block (terminated by `Unreachable`) and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Some(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }));
        self.layout.push(id);
        id
    }

    /// Adds a block with a specific id, extending the arena as needed (used
    /// by the parser, whose block labels carry explicit ids). The block is
    /// appended to the layout order.
    ///
    /// # Panics
    /// Panics if a live block already occupies the id.
    pub fn add_block_with_id(&mut self, id: BlockId) {
        let idx = id.0 as usize;
        if idx >= self.blocks.len() {
            self.blocks.resize_with(idx + 1, || None);
        }
        assert!(self.blocks[idx].is_none(), "block {id} already exists");
        self.blocks[idx] = Some(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        self.layout.push(id);
    }

    /// Removes a block from the function. Panics if it is the entry block.
    ///
    /// The caller is responsible for first rewriting all references to the
    /// block (branches and φ incomings).
    pub fn remove_block(&mut self, id: BlockId) {
        assert_ne!(
            Some(id),
            self.layout.first().copied(),
            "cannot remove the entry block"
        );
        self.blocks[id.0 as usize] = None;
        self.layout.retain(|b| *b != id);
    }

    /// The entry block id.
    ///
    /// # Panics
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        self.layout[0]
    }

    /// True if the block id refers to a live block.
    pub fn block_exists(&self, id: BlockId) -> bool {
        self.blocks
            .get(id.0 as usize)
            .map(|b| b.is_some())
            .unwrap_or(false)
    }

    /// Borrows a block.
    ///
    /// # Panics
    /// Panics if the block has been removed.
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks[id.0 as usize]
            .as_ref()
            .expect("block was removed")
    }

    /// Mutably borrows a block.
    ///
    /// # Panics
    /// Panics if the block has been removed.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.blocks[id.0 as usize]
            .as_mut()
            .expect("block was removed")
    }

    /// Block ids in layout order (entry first).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.layout.clone()
    }

    /// The arena capacity: all block ids are `< block_bound()`. Useful for
    /// dense side tables indexed by `BlockId.0`.
    pub fn block_bound(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.layout.len()
    }

    /// Iterates over live blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> + '_ {
        self.layout.iter().map(move |id| self.block(*id))
    }

    /// Moves `id` to immediately after `after` in layout order.
    pub fn move_block_after(&mut self, id: BlockId, after: BlockId) {
        self.layout.retain(|b| *b != id);
        let pos = self
            .layout
            .iter()
            .position(|b| *b == after)
            .expect("anchor block not in layout");
        self.layout.insert(pos + 1, id);
    }

    /// Total instruction count including terminators (the `IrInstructionCount`
    /// metric of the LLVM environment).
    pub fn inst_count(&self) -> usize {
        self.blocks().map(|b| b.insts.len() + 1).sum()
    }

    /// Rewrites every use of value `from` into the operand `to` across all
    /// instructions and terminators.
    pub fn replace_all_uses(&mut self, from: ValueId, to: crate::Operand) {
        for id in self.block_ids() {
            let block = self.block_mut(id);
            for inst in &mut block.insts {
                inst.op.for_each_operand_mut(|o| {
                    if o.as_value() == Some(from) {
                        *o = to;
                    }
                });
            }
            block.term.for_each_operand_mut(|o| {
                if o.as_value() == Some(from) {
                    *o = to;
                }
            });
        }
    }
}

/// A compilation unit: functions plus global variables.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Module {
    /// Module name (usually the benchmark URI path).
    pub name: String,
    functions: Vec<Option<Function>>,
    globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Some(f));
        id
    }

    /// Removes a function. The caller must have rewritten all calls to it.
    pub fn remove_function(&mut self, id: FuncId) {
        self.functions[id.0 as usize] = None;
    }

    /// True if the function id refers to a live function.
    pub fn func_exists(&self, id: FuncId) -> bool {
        self.functions
            .get(id.0 as usize)
            .map(|f| f.is_some())
            .unwrap_or(false)
    }

    /// Borrows a function.
    ///
    /// # Panics
    /// Panics if the function has been removed.
    pub fn func(&self, id: FuncId) -> &Function {
        self.functions[id.0 as usize]
            .as_ref()
            .expect("function was removed")
    }

    /// Mutably borrows a function.
    ///
    /// # Panics
    /// Panics if the function has been removed.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        self.functions[id.0 as usize]
            .as_mut()
            .expect("function was removed")
    }

    /// Live function ids in definition order.
    pub fn func_ids(&self) -> Vec<FuncId> {
        (0..self.functions.len() as u32)
            .map(FuncId)
            .filter(|id| self.func_exists(*id))
            .collect()
    }

    /// The arena capacity: all function ids are `< func_bound()`.
    pub fn func_bound(&self) -> u32 {
        self.functions.len() as u32
    }

    /// Finds a function by name.
    pub fn find_func(&self, name: &str) -> Option<FuncId> {
        self.func_ids()
            .into_iter()
            .find(|id| self.func(*id).name == name)
    }

    /// Takes a function out of the module, leaving a hole (used by the
    /// inliner to mutate one function while reading another).
    pub fn take_func(&mut self, id: FuncId) -> Function {
        self.functions[id.0 as usize]
            .take()
            .expect("function was removed")
    }

    /// Puts a function back into its arena slot.
    pub fn put_func(&mut self, id: FuncId, f: Function) {
        assert!(self.functions[id.0 as usize].is_none());
        self.functions[id.0 as usize] = Some(f);
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Borrows a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// All globals in definition order.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Mutably borrows the globals.
    pub fn globals_mut(&mut self) -> &mut Vec<Global> {
        &mut self.globals
    }

    /// Total instruction count across all functions (the `IrInstructionCount`
    /// metric / "code size" reward of the LLVM environment).
    pub fn inst_count(&self) -> usize {
        self.func_ids()
            .into_iter()
            .map(|id| self.func(id).inst_count())
            .sum()
    }

    /// Number of live functions.
    pub fn num_functions(&self) -> usize {
        self.func_ids().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Operand;

    fn tiny_function() -> Function {
        let mut f = Function::new("f", &[Type::I64], Type::I64);
        let entry = f.add_block();
        f.block_mut(entry).term = Terminator::Ret {
            value: Some(Operand::Value(ValueId(0))),
        };
        f
    }

    #[test]
    fn block_arena_ids_are_stable() {
        let mut f = tiny_function();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.remove_block(b1);
        assert!(!f.block_exists(b1));
        assert!(f.block_exists(b2));
        assert_eq!(f.block(b2).id, b2);
        let b3 = f.add_block();
        assert_ne!(b3, b1); // removed slots are not recycled
    }

    #[test]
    #[should_panic(expected = "cannot remove the entry block")]
    fn removing_entry_panics() {
        let mut f = tiny_function();
        let entry = f.entry();
        f.remove_block(entry);
    }

    #[test]
    fn inst_count_counts_terminators() {
        let f = tiny_function();
        assert_eq!(f.inst_count(), 1);
        let mut m = Module::new("m");
        m.add_function(f);
        assert_eq!(m.inst_count(), 1);
    }

    #[test]
    fn replace_all_uses() {
        let mut f = tiny_function();
        f.replace_all_uses(ValueId(0), Operand::const_int(42));
        let entry = f.entry();
        match &f.block(entry).term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v.as_const_int(), Some(42)),
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn function_arena() {
        let mut m = Module::new("m");
        let f1 = m.add_function(tiny_function());
        let f2 = m.add_function(Function::new("g", &[], Type::Void));
        m.remove_function(f1);
        assert!(!m.func_exists(f1));
        assert_eq!(m.func_ids(), vec![f2]);
        assert_eq!(m.find_func("g"), Some(f2));
        assert_eq!(m.find_func("f"), None);
    }
}
