//! Modules, functions, blocks and the value/block/function id spaces.
//!
//! Storage layout: blocks and functions live in **dense arenas** (`Vec<T>`
//! with no holes) indexed through a *slot map* (`id → dense index`, with
//! `u32::MAX` marking a dead id). Ids are allocated from a monotonically
//! increasing watermark and never recycled, so `BlockId`/`FuncId` stay
//! stable across deletion exactly as they did under the historical
//! `Vec<Option<T>>` representation — but iteration walks contiguous memory
//! and removal is `swap_remove` instead of leaving a hole.
//!
//! Every structural mutation of a [`Function`] advances its [`Stamp`], a
//! globally unique modification counter. Analyses cached by
//! [`crate::am::AnalysisManager`] record the stamp they were computed at and
//! are discarded when it no longer matches, which makes cache invalidation a
//! single integer compare instead of a guess.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::inst::{Inst, Op, Terminator};
use crate::types::Type;

/// Identifies an SSA value within a function (parameter or instruction
/// result). Printed as `%n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifies a basic block within a function. Printed as `bbN`. Stable
/// across block insertion and deletion (ids are never recycled).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifies a function within a module. Stable across function deletion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a global variable within a module.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Sentinel in the slot map for a dead (removed or taken) id.
const DEAD: u32 = u32::MAX;

static STAMP_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A globally unique modification stamp. Two equal stamps guarantee the
/// function has not been structurally mutated in between; every mutation
/// draws a fresh value from a process-wide counter, so stale analysis
/// entries can never collide with a recomputed function state (no ABA).
///
/// Stamps are transient bookkeeping: cloning a function copies its stamp
/// (same content ⇒ same analyses apply), while deserialization draws a
/// fresh one (nothing cached can exist for it yet). Stamps never influence
/// printed IR, hashing, or equality of functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stamp(u64);

impl Stamp {
    fn next() -> Stamp {
        Stamp(STAMP_COUNTER.fetch_add(1, Ordering::Relaxed))
    }
}

impl Serialize for Stamp {
    fn to_value(&self) -> serde::value::Value {
        // The numeric value is meaningless outside this process; serialize a
        // placeholder so the wire format stays stable.
        serde::value::Value::UInt(0)
    }
}

impl Deserialize for Stamp {
    fn from_value(_: &serde::value::Value) -> Result<Stamp, serde::DeError> {
        // A fresh stamp is always sound: no cache can hold an entry for it.
        Ok(Stamp::next())
    }
}

/// A basic block: a straight-line sequence of instructions ended by a
/// [`Terminator`]. Instructions are stored densely (`Vec<Inst>`), which is
/// the per-block instruction arena: passes index and splice it in place.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// The non-terminator instructions, in order. φ-nodes must be a prefix.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// The number of φ-nodes at the head of the block.
    pub fn phi_count(&self) -> usize {
        self.insts
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi(_)))
            .count()
    }
}

/// A global variable: `slots` 8-byte cells of module memory with an optional
/// initializer.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in 8-byte cells.
    pub slots: u32,
    /// Initial cell values (zero-padded to `slots`).
    pub init: Vec<i64>,
    /// True if the program never writes this global (enables optimizations).
    pub constant: bool,
}

/// A function: parameters, return type and a CFG of basic blocks.
///
/// Blocks are stored in a dense arena (`blocks`) addressed through the
/// `slot` map, so [`BlockId`]s remain stable when passes delete blocks
/// while iteration touches only live, contiguous memory; `layout` holds
/// the current textual/emission order with the entry block first.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter values and types. Parameters occupy the first value ids.
    pub params: Vec<(ValueId, Type)>,
    /// Return type ([`Type::Void`] for procedures).
    pub ret_ty: Type,
    /// Inline-cost hint: functions marked `always_inline` are prioritized by
    /// the inliner; `no_inline` are skipped.
    pub inline_hint: InlineHint,
    blocks: Vec<Block>,
    slot: Vec<u32>,
    layout: Vec<BlockId>,
    next_value: u32,
    stamp: Stamp,
}

/// Structural equality. The dense-arena order is history-dependent
/// (removal is `swap_remove`), so equality compares layout order, per-block
/// content, signatures and the id/value watermarks — everything observable
/// through the public API — and ignores internal storage order and stamps.
impl PartialEq for Function {
    fn eq(&self, other: &Function) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.ret_ty == other.ret_ty
            && self.inline_hint == other.inline_hint
            && self.next_value == other.next_value
            && self.slot.len() == other.slot.len()
            && self.layout == other.layout
            && self.layout.iter().all(|&b| self.block(b) == other.block(b))
    }
}

/// Inlining hints attached to functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum InlineHint {
    /// No preference; the inliner uses its cost model.
    #[default]
    None,
    /// Always profitable to inline.
    Always,
    /// Never inline.
    Never,
}

impl Function {
    /// Creates an empty function with the given signature. Parameters are
    /// assigned value ids `0..param_tys.len()`. The function initially has no
    /// blocks; create the entry with [`Function::add_block`].
    pub fn new(name: impl Into<String>, param_tys: &[Type], ret_ty: Type) -> Function {
        let params = param_tys
            .iter()
            .enumerate()
            .map(|(i, t)| (ValueId(i as u32), *t))
            .collect::<Vec<_>>();
        Function {
            name: name.into(),
            next_value: params.len() as u32,
            params,
            ret_ty,
            inline_hint: InlineHint::None,
            blocks: Vec::new(),
            slot: Vec::new(),
            layout: Vec::new(),
            stamp: Stamp::next(),
        }
    }

    /// The current modification stamp. Advances on every structural
    /// mutation; see [`Stamp`].
    pub fn stamp(&self) -> Stamp {
        self.stamp
    }

    /// Allocates a fresh SSA value id.
    pub fn fresh_value(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        self.stamp = Stamp::next();
        v
    }

    /// The upper bound on value ids (all ids are `< value_bound()`).
    pub fn value_bound(&self) -> u32 {
        self.next_value
    }

    /// Raises the value id watermark (used by the parser).
    pub fn reserve_values(&mut self, bound: u32) {
        if bound > self.next_value {
            self.next_value = bound;
            self.stamp = Stamp::next();
        }
    }

    /// Adds a new empty block (terminated by `Unreachable`) and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.slot.len() as u32);
        self.slot.push(self.blocks.len() as u32);
        self.blocks.push(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        self.layout.push(id);
        self.stamp = Stamp::next();
        id
    }

    /// Adds a block with a specific id, raising the id watermark as needed
    /// (used by the parser, whose block labels carry explicit ids). The
    /// block is appended to the layout order.
    ///
    /// # Panics
    /// Panics if a live block already occupies the id.
    pub fn add_block_with_id(&mut self, id: BlockId) {
        let idx = id.0 as usize;
        if idx >= self.slot.len() {
            self.slot.resize(idx + 1, DEAD);
        }
        assert!(self.slot[idx] == DEAD, "block {id} already exists");
        self.slot[idx] = self.blocks.len() as u32;
        self.blocks.push(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        self.layout.push(id);
        self.stamp = Stamp::next();
    }

    /// Removes a block from the function. Panics if it is the entry block.
    ///
    /// The caller is responsible for first rewriting all references to the
    /// block (branches and φ incomings).
    pub fn remove_block(&mut self, id: BlockId) {
        assert_ne!(
            Some(id),
            self.layout.first().copied(),
            "cannot remove the entry block"
        );
        let dense = self.slot[id.0 as usize];
        if dense != DEAD {
            self.blocks.swap_remove(dense as usize);
            if let Some(moved) = self.blocks.get(dense as usize) {
                self.slot[moved.id.0 as usize] = dense;
            }
            self.slot[id.0 as usize] = DEAD;
        }
        self.layout.retain(|b| *b != id);
        self.stamp = Stamp::next();
    }

    /// The entry block id.
    ///
    /// # Panics
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        self.layout[0]
    }

    /// True if the block id refers to a live block.
    pub fn block_exists(&self, id: BlockId) -> bool {
        self.slot
            .get(id.0 as usize)
            .map(|&d| d != DEAD)
            .unwrap_or(false)
    }

    /// Borrows a block.
    ///
    /// # Panics
    /// Panics if the block has been removed.
    pub fn block(&self, id: BlockId) -> &Block {
        let dense = self.slot[id.0 as usize];
        assert!(dense != DEAD, "block was removed");
        &self.blocks[dense as usize]
    }

    /// Mutably borrows a block. Counts as a structural mutation: the
    /// function's [`Stamp`] advances even if the caller changes nothing
    /// (pass runners re-validate analyses for functions a pass reports
    /// unchanged, recovering the cache for no-op sweeps).
    ///
    /// # Panics
    /// Panics if the block has been removed.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        let dense = self.slot[id.0 as usize];
        assert!(dense != DEAD, "block was removed");
        self.stamp = Stamp::next();
        &mut self.blocks[dense as usize]
    }

    /// Block ids in layout order (entry first). Borrows the internal layout
    /// — zero allocation. Take [`Function::block_ids_vec`] when mutating
    /// blocks while iterating.
    pub fn block_ids(&self) -> &[BlockId] {
        &self.layout
    }

    /// An owned copy of [`Function::block_ids`], for loops that mutate the
    /// function while walking its blocks.
    pub fn block_ids_vec(&self) -> Vec<BlockId> {
        self.layout.clone()
    }

    /// The id watermark: all block ids are `< block_bound()`. Useful for
    /// dense side tables indexed by `BlockId.0`.
    pub fn block_bound(&self) -> u32 {
        self.slot.len() as u32
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.layout.len()
    }

    /// Iterates over live blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> + '_ {
        self.layout.iter().map(move |id| self.block(*id))
    }

    /// Moves `id` to immediately after `after` in layout order.
    pub fn move_block_after(&mut self, id: BlockId, after: BlockId) {
        self.layout.retain(|b| *b != id);
        let pos = self
            .layout
            .iter()
            .position(|b| *b == after)
            .expect("anchor block not in layout");
        self.layout.insert(pos + 1, id);
        self.stamp = Stamp::next();
    }

    /// Total instruction count including terminators (the `IrInstructionCount`
    /// metric of the LLVM environment).
    pub fn inst_count(&self) -> usize {
        // Dense sweep: every arena entry is live, order is irrelevant.
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Rewrites every use of value `from` into the operand `to` across all
    /// instructions and terminators.
    pub fn replace_all_uses(&mut self, from: ValueId, to: crate::Operand) {
        for block in &mut self.blocks {
            for inst in &mut block.insts {
                inst.op.for_each_operand_mut(|o| {
                    if o.as_value() == Some(from) {
                        *o = to;
                    }
                });
            }
            block.term.for_each_operand_mut(|o| {
                if o.as_value() == Some(from) {
                    *o = to;
                }
            });
        }
        self.stamp = Stamp::next();
    }
}

/// A compilation unit: functions plus global variables.
///
/// Functions use the same dense-arena + slot-map scheme as blocks within a
/// function; `order` caches the live ids sorted ascending, which equals
/// definition order because ids are allocated monotonically.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Module {
    /// Module name (usually the benchmark URI path).
    pub name: String,
    functions: Vec<Function>,
    /// Dense index → id (functions, unlike blocks, don't carry their id).
    ids: Vec<FuncId>,
    slot: Vec<u32>,
    order: Vec<FuncId>,
    globals: Vec<Global>,
}

/// Structural equality over live functions in definition order, globals and
/// the id watermark; internal dense order is ignored (history-dependent).
impl PartialEq for Module {
    fn eq(&self, other: &Module) -> bool {
        self.name == other.name
            && self.globals == other.globals
            && self.slot.len() == other.slot.len()
            && self.order == other.order
            && self.order.iter().all(|&id| self.func(id) == other.func(id))
    }
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            ids: Vec::new(),
            slot: Vec::new(),
            order: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.slot.len() as u32);
        self.slot.push(self.functions.len() as u32);
        self.functions.push(f);
        self.ids.push(id);
        self.order.push(id);
        id
    }

    /// Unlinks `id` from the dense arena, fixing up the displaced entry's
    /// slot, and returns the function. Shared by removal and take.
    fn detach_func(&mut self, id: FuncId) -> Function {
        let dense = self.slot[id.0 as usize];
        assert!(dense != DEAD, "function was removed");
        let f = self.functions.swap_remove(dense as usize);
        self.ids.swap_remove(dense as usize);
        if let Some(&moved) = self.ids.get(dense as usize) {
            self.slot[moved.0 as usize] = dense;
        }
        self.slot[id.0 as usize] = DEAD;
        self.order.retain(|o| *o != id);
        f
    }

    /// Removes a function. The caller must have rewritten all calls to it.
    pub fn remove_function(&mut self, id: FuncId) {
        let _ = self.detach_func(id);
    }

    /// True if the function id refers to a live function.
    pub fn func_exists(&self, id: FuncId) -> bool {
        self.slot
            .get(id.0 as usize)
            .map(|&d| d != DEAD)
            .unwrap_or(false)
    }

    /// Borrows a function.
    ///
    /// # Panics
    /// Panics if the function has been removed.
    pub fn func(&self, id: FuncId) -> &Function {
        let dense = self.slot[id.0 as usize];
        assert!(dense != DEAD, "function was removed");
        &self.functions[dense as usize]
    }

    /// Mutably borrows a function. Does *not* advance the function's stamp
    /// by itself — only actual mutations through [`Function`] methods do —
    /// so per-function pass sweeps that merely look at each function keep
    /// their cached analyses.
    ///
    /// # Panics
    /// Panics if the function has been removed.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        let dense = self.slot[id.0 as usize];
        assert!(dense != DEAD, "function was removed");
        &mut self.functions[dense as usize]
    }

    /// Live function ids in definition order. Borrows the internal order —
    /// zero allocation. Take [`Module::func_ids_vec`] when mutating the
    /// module while iterating.
    pub fn func_ids(&self) -> &[FuncId] {
        &self.order
    }

    /// An owned copy of [`Module::func_ids`], for loops that mutate the
    /// module while walking its functions.
    pub fn func_ids_vec(&self) -> Vec<FuncId> {
        self.order.clone()
    }

    /// The id watermark: all function ids are `< func_bound()`.
    pub fn func_bound(&self) -> u32 {
        self.slot.len() as u32
    }

    /// Finds a function by name.
    pub fn find_func(&self, name: &str) -> Option<FuncId> {
        self.order
            .iter()
            .copied()
            .find(|id| self.func(*id).name == name)
    }

    /// Takes a function out of the module, leaving its id dead until
    /// [`Module::put_func`] restores it (used by the inliner to mutate one
    /// function while reading another). While taken, the function is absent
    /// from [`Module::func_ids`] and iteration.
    pub fn take_func(&mut self, id: FuncId) -> Function {
        self.detach_func(id)
    }

    /// Puts a function back into its arena slot.
    ///
    /// # Panics
    /// Panics if the id is live.
    pub fn put_func(&mut self, id: FuncId, f: Function) {
        assert!(self.slot[id.0 as usize] == DEAD);
        self.slot[id.0 as usize] = self.functions.len() as u32;
        self.functions.push(f);
        self.ids.push(id);
        // Ids are allocated monotonically, so ascending id order *is*
        // definition order; reinsert at the sorted position.
        let pos = self.order.partition_point(|&o| o < id);
        self.order.insert(pos, id);
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Borrows a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// All globals in definition order.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Mutably borrows the globals.
    pub fn globals_mut(&mut self) -> &mut Vec<Global> {
        &mut self.globals
    }

    /// Total instruction count across all functions (the `IrInstructionCount`
    /// metric / "code size" reward of the LLVM environment).
    pub fn inst_count(&self) -> usize {
        // Dense sweep over live functions; order is irrelevant for a sum.
        self.functions.iter().map(Function::inst_count).sum()
    }

    /// Number of live functions.
    pub fn num_functions(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Operand;

    fn tiny_function() -> Function {
        let mut f = Function::new("f", &[Type::I64], Type::I64);
        let entry = f.add_block();
        f.block_mut(entry).term = Terminator::Ret {
            value: Some(Operand::Value(ValueId(0))),
        };
        f
    }

    #[test]
    fn block_arena_ids_are_stable() {
        let mut f = tiny_function();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.remove_block(b1);
        assert!(!f.block_exists(b1));
        assert!(f.block_exists(b2));
        assert_eq!(f.block(b2).id, b2);
        let b3 = f.add_block();
        assert_ne!(b3, b1); // removed slots are not recycled
    }

    #[test]
    #[should_panic(expected = "cannot remove the entry block")]
    fn removing_entry_panics() {
        let mut f = tiny_function();
        let entry = f.entry();
        f.remove_block(entry);
    }

    #[test]
    fn inst_count_counts_terminators() {
        let f = tiny_function();
        assert_eq!(f.inst_count(), 1);
        let mut m = Module::new("m");
        m.add_function(f);
        assert_eq!(m.inst_count(), 1);
    }

    #[test]
    fn replace_all_uses() {
        let mut f = tiny_function();
        f.replace_all_uses(ValueId(0), Operand::const_int(42));
        let entry = f.entry();
        match &f.block(entry).term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v.as_const_int(), Some(42)),
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn function_arena() {
        let mut m = Module::new("m");
        let f1 = m.add_function(tiny_function());
        let f2 = m.add_function(Function::new("g", &[], Type::Void));
        m.remove_function(f1);
        assert!(!m.func_exists(f1));
        assert_eq!(m.func_ids(), &[f2]);
        assert_eq!(m.find_func("g"), Some(f2));
        assert_eq!(m.find_func("f"), None);
    }

    #[test]
    fn stamps_advance_on_mutation() {
        let mut f = tiny_function();
        let s0 = f.stamp();
        let _ = f.block_ids();
        let _ = f.block(f.entry());
        assert_eq!(f.stamp(), s0, "reads must not advance the stamp");
        let e = f.entry();
        let _ = f.block_mut(e);
        let s1 = f.stamp();
        assert_ne!(s1, s0);
        f.add_block();
        assert_ne!(f.stamp(), s1);
    }

    #[test]
    fn clone_preserves_stamp_and_equality() {
        let f = tiny_function();
        let g = f.clone();
        assert_eq!(f.stamp(), g.stamp());
        assert_eq!(f, g);
    }

    #[test]
    fn equality_ignores_dense_storage_order() {
        // Build two functions whose layouts match but whose dense arenas
        // were perturbed differently by removals.
        let build = |extra_first: bool| {
            let mut f = tiny_function();
            let a = f.add_block();
            let b = f.add_block();
            let c = f.add_block();
            if extra_first {
                f.remove_block(a); // swap_remove moves c into a's dense slot
                f.remove_block(b);
            } else {
                f.remove_block(b);
                f.remove_block(a);
            }
            assert!(f.block_exists(c));
            f
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn take_and_put_func_round_trips() {
        let mut m = Module::new("m");
        let f1 = m.add_function(tiny_function());
        let f2 = m.add_function(Function::new("g", &[], Type::Void));
        let taken = m.take_func(f1);
        assert_eq!(m.func_ids(), &[f2]);
        assert!(!m.func_exists(f1));
        m.put_func(f1, taken);
        assert_eq!(m.func_ids(), &[f1, f2], "definition order restored");
        assert_eq!(m.func(f1).name, "f");
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let mut m = Module::new("m");
        m.add_function(tiny_function());
        let v = serde::Serialize::to_value(&m);
        let back: Module = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}
