//! Control-flow analyses: predecessor/successor maps, reverse postorder,
//! dominator trees (Cooper–Harvey–Kennedy), dominance frontiers, natural
//! loops, and per-block liveness.
//!
//! All side tables are dense vectors indexed by `BlockId.0`, sized by
//! [`Function::block_bound`]; slots for deleted blocks are simply unused.

use std::collections::HashSet;

use crate::inst::Op;
use crate::module::{BlockId, Function, ValueId};

/// Predecessor/successor maps for a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.block_bound() as usize;
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &id in f.block_ids() {
            let mut seen = HashSet::new();
            for s in f.block(id).term.successors() {
                succs[id.0 as usize].push(s);
                // A block is recorded as a predecessor once per *edge kind*,
                // matching φ semantics (one incoming entry per pred block).
                if seen.insert(s) {
                    preds[s.0 as usize].push(id);
                }
            }
        }
        Cfg { preds, succs }
    }

    /// Predecessor blocks of `b` (unique).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Successor blocks of `b` (in terminator order; may repeat for switches).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }
}

/// Blocks reachable from the entry, in reverse postorder (entry first).
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.block_bound() as usize;
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(f.num_blocks());
    // Iterative DFS with an explicit stack to avoid recursion depth limits on
    // pathological CFGs (e.g. generated switch ladders).
    let entry = f.entry();
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.0 as usize] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = f.block(b).term.successors();
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Blocks *not* reachable from the entry.
pub fn unreachable_blocks(f: &Function) -> Vec<BlockId> {
    let reach: HashSet<BlockId> = reverse_postorder(f).into_iter().collect();
    f.block_ids()
        .iter()
        .copied()
        .filter(|b| !reach.contains(b))
        .collect()
}

/// Dominator tree (plus dominance frontiers) of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`. `None` for
    /// unreachable or deleted blocks.
    idom: Vec<Option<BlockId>>,
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `f` using the Cooper–Harvey–Kennedy
    /// iterative algorithm over reverse postorder.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.block_bound() as usize;
        let rpo = reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0 as usize] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.0 as usize].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.0 as usize]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.0 as usize].is_some()
    }

    /// The blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Dominance frontier of every block, as a dense table indexed by
    /// `BlockId.0`.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut df: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        for &b in &self.rpo {
            let preds = cfg.preds(b);
            if preds.len() >= 2 {
                for &p in preds {
                    if !self.is_reachable(p) {
                        continue;
                    }
                    let mut runner = p;
                    let stop = self.idom[b.0 as usize].expect("reachable");
                    while runner != stop {
                        df[runner.0 as usize].insert(b);
                        match self.idom(runner) {
                            Some(next) => runner = next,
                            None => break,
                        }
                    }
                }
            }
        }
        df.into_iter()
            .map(|s| {
                let mut v: Vec<BlockId> = s.into_iter().collect();
                v.sort();
                v
            })
            .collect()
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed");
        }
    }
    a
}

/// A natural loop: a header plus the set of blocks that reach a latch without
/// leaving the header's dominance region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Blocks outside the loop that are targets of edges leaving the loop.
    pub exits: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl Loop {
    /// True if the block belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Finds all natural loops of `f`. Loops sharing a header are merged (as in
/// LLVM's LoopInfo). Returned in order of decreasing depth, so transforming
/// inner loops first is the natural iteration order.
pub fn find_loops(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<Loop> {
    // Collect back edges: u -> h where h dominates u.
    let mut loops: Vec<Loop> = Vec::new();
    for &u in dom.rpo() {
        for &h in cfg.succs(u) {
            if dom.is_reachable(h) && dom.dominates(h, u) {
                // Natural loop of back edge u->h.
                if let Some(l) = loops.iter_mut().find(|l| l.header == h) {
                    if !l.latches.contains(&u) {
                        l.latches.push(u);
                    }
                    grow_loop(f, cfg, h, u, &mut l.blocks);
                } else {
                    let mut blocks = vec![h];
                    grow_loop(f, cfg, h, u, &mut blocks);
                    loops.push(Loop {
                        header: h,
                        blocks,
                        latches: vec![u],
                        exits: Vec::new(),
                        depth: 0,
                    });
                }
            }
        }
    }
    // Exits and depths.
    for i in 0..loops.len() {
        let mut exits = Vec::new();
        for &b in &loops[i].blocks {
            for &s in cfg.succs(b) {
                if !loops[i].blocks.contains(&s) && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        loops[i].exits = exits;
        let header = loops[i].header;
        let depth = loops.iter().filter(|l| l.blocks.contains(&header)).count();
        loops[i].depth = depth;
    }
    loops.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.header.cmp(&b.header)));
    loops
}

fn grow_loop(f: &Function, cfg: &Cfg, header: BlockId, latch: BlockId, blocks: &mut Vec<BlockId>) {
    let _ = f;
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if blocks.contains(&b) {
            continue;
        }
        blocks.push(b);
        for &p in cfg.preds(b) {
            if p != header && !blocks.contains(&p) {
                stack.push(p);
            }
        }
        if !blocks.contains(&header) {
            blocks.push(header);
        }
    }
}

/// Loop-nesting depth per block, as a dense table indexed by `BlockId.0`
/// (0 = not in any loop). Useful for spill-cost weighting in register
/// allocation and for feature extraction.
pub fn loop_depths(f: &Function, loops: &[Loop]) -> Vec<usize> {
    let mut depth = vec![0usize; f.block_bound() as usize];
    for l in loops {
        for &b in &l.blocks {
            depth[b.0 as usize] = depth[b.0 as usize].max(l.depth);
        }
    }
    depth
}

/// Per-block liveness of SSA values (live-in and live-out sets), computed by
/// iterative backward dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    live_in: Vec<HashSet<ValueId>>,
    live_out: Vec<HashSet<ValueId>>,
}

impl Liveness {
    /// Computes liveness for `f`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let n = f.block_bound() as usize;
        // Per block: use (read before any local def) and def sets.
        let mut uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        // φ inputs are treated as uses at the end of the predecessor block,
        // which is the standard SSA liveness convention.
        let mut phi_uses: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        for &id in f.block_ids() {
            let b = f.block(id);
            let i = id.0 as usize;
            for inst in &b.insts {
                if let Op::Phi(incs) = &inst.op {
                    for (pred, v) in incs {
                        if let Some(v) = v.as_value() {
                            phi_uses[pred.0 as usize].insert(v);
                        }
                    }
                } else {
                    inst.op.for_each_operand(|o| {
                        if let Some(v) = o.as_value() {
                            if !defs[i].contains(&v) {
                                uses[i].insert(v);
                            }
                        }
                    });
                }
                if let Some(d) = inst.dest {
                    defs[i].insert(d);
                }
            }
            b.term.for_each_operand(|o| {
                if let Some(v) = o.as_value() {
                    if !defs[i].contains(&v) {
                        uses[i].insert(v);
                    }
                }
            });
        }

        let mut live_in: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for &id in f.block_ids().iter().rev() {
                let i = id.0 as usize;
                let mut out: HashSet<ValueId> = phi_uses[i].clone();
                for &s in cfg.succs(id) {
                    for v in &live_in[s.0 as usize] {
                        out.insert(*v);
                    }
                }
                let mut inn: HashSet<ValueId> = uses[i].clone();
                for v in &out {
                    if !defs[i].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<ValueId> {
        &self.live_in[b.0 as usize]
    }

    /// Values live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<ValueId> {
        &self.live_out[b.0 as usize]
    }
}

/// Instruction index marking a use inside a block's terminator (terminators
/// have no index in `Block::insts`).
pub const TERM_INDEX: u32 = u32::MAX;

/// Def-use maps: for every SSA value, where it is defined and every site
/// that reads it, with O(1) lookup per value. Built in one sweep; use sites
/// within a φ record the φ's own position (not the predecessor edge — see
/// [`Liveness`] for edge-accurate φ semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefUse {
    /// Defining site per value, indexed by `ValueId.0`. `None` for function
    /// parameters (defined on entry) and never-defined ids.
    def: Vec<Option<(BlockId, u32)>>,
    /// Use sites per value, indexed by `ValueId.0`, in layout/program order.
    /// The `u32` is the instruction index, or [`TERM_INDEX`] for a use in
    /// the block's terminator.
    uses: Vec<Vec<(BlockId, u32)>>,
}

impl DefUse {
    /// Computes def-use maps for `f`.
    pub fn compute(f: &Function) -> DefUse {
        let n = f.value_bound() as usize;
        let mut def: Vec<Option<(BlockId, u32)>> = vec![None; n];
        let mut uses: Vec<Vec<(BlockId, u32)>> = vec![Vec::new(); n];
        for &bid in f.block_ids() {
            let b = f.block(bid);
            for (i, inst) in b.insts.iter().enumerate() {
                if let Some(d) = inst.dest {
                    def[d.0 as usize] = Some((bid, i as u32));
                }
                inst.op.for_each_operand(|o| {
                    if let Some(v) = o.as_value() {
                        uses[v.0 as usize].push((bid, i as u32));
                    }
                });
            }
            b.term.for_each_operand(|o| {
                if let Some(v) = o.as_value() {
                    uses[v.0 as usize].push((bid, TERM_INDEX));
                }
            });
        }
        DefUse { def, uses }
    }

    /// The defining site of `v`, or `None` for parameters/undefined ids.
    pub fn def(&self, v: ValueId) -> Option<(BlockId, u32)> {
        self.def.get(v.0 as usize).copied().flatten()
    }

    /// All use sites of `v` in layout/program order.
    pub fn uses(&self, v: ValueId) -> &[(BlockId, u32)] {
        self.uses
            .get(v.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of uses of `v`.
    pub fn use_count(&self, v: ValueId) -> usize {
        self.uses(v).len()
    }

    /// True if nothing reads `v`.
    pub fn is_unused(&self, v: ValueId) -> bool {
        self.uses(v).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::types::{Operand, Type};

    /// Builds the classic diamond: entry -> (l, r) -> join.
    fn diamond() -> (crate::Module, crate::FuncId) {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let entry = fb.current_block();
        let l = fb.new_block();
        let r = fb.new_block();
        let join = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, l, r);
        fb.switch_to(l);
        let a = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.br(join);
        fb.switch_to(r);
        let b = fb.bin(BinOp::Sub, p, Operand::const_int(1));
        fb.br(join);
        fb.switch_to(join);
        let phi = fb.phi(Type::I64, vec![(l, a), (r, b)]);
        fb.ret(Some(phi));
        let _ = entry;
        let fid = fb.finish();
        (mb.finish(), fid)
    }

    #[test]
    fn diamond_dominators() {
        let (m, fid) = diamond();
        let f = m.func(fid);
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let ids = f.block_ids();
        let (entry, l, r, join) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(dom.idom(l), Some(entry));
        assert_eq!(dom.idom(r), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(l, join));
        assert!(dom.dominates(join, join));
        let df = dom.dominance_frontiers(&cfg);
        assert_eq!(df[l.0 as usize], vec![join]);
        assert_eq!(df[r.0 as usize], vec![join]);
        assert!(df[entry.0 as usize].is_empty());
    }

    #[test]
    fn diamond_liveness() {
        let (m, fid) = diamond();
        let f = m.func(fid);
        let cfg = Cfg::compute(f);
        let live = Liveness::compute(f, &cfg);
        let ids = f.block_ids();
        // The parameter %0 is live into both arms.
        assert!(live.live_in(ids[1]).contains(&ValueId(0)));
        assert!(live.live_in(ids[2]).contains(&ValueId(0)));
        // The φ destination is defined in join; arms' results are live out of
        // the arms (φ-use convention).
        assert!(live.live_out(ids[1]).iter().count() >= 1);
    }

    fn looped() -> (crate::Module, crate::FuncId) {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let fid = fb.finish();
        (mb.finish(), fid)
    }

    #[test]
    fn natural_loop_detection() {
        let (m, fid) = looped();
        let f = m.func(fid);
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let loops = find_loops(f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        let ids = f.block_ids();
        let (header, body, exit) = (ids[1], ids[2], ids[3]);
        assert_eq!(loops[0].header, header);
        assert!(loops[0].contains(body));
        assert!(!loops[0].contains(exit));
        assert_eq!(loops[0].latches, vec![body]);
        assert_eq!(loops[0].exits, vec![exit]);
        assert_eq!(loops[0].depth, 1);
        let depths = loop_depths(f, &loops);
        assert_eq!(depths[header.0 as usize], 1);
        assert_eq!(depths[exit.0 as usize], 0);
    }

    #[test]
    fn def_use_maps() {
        let (m, fid) = diamond();
        let f = m.func(fid);
        let du = DefUse::compute(f);
        // The parameter has no def site but is used in both arms and the
        // compare.
        assert_eq!(du.def(ValueId(0)), None);
        assert!(du.use_count(ValueId(0)) >= 3);
        // Every non-param value with a destination has a def site.
        for b in f.blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if let Some(d) = inst.dest {
                    assert_eq!(du.def(d), Some((b.id, i as u32)));
                }
            }
        }
        // The φ result is used only by the return terminator.
        let ids = f.block_ids();
        let join = ids[3];
        let phi_dest = f.block(join).insts[0].dest.unwrap();
        assert_eq!(du.uses(phi_dest), &[(join, TERM_INDEX)]);
        assert!(!du.is_unused(phi_dest));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (m, fid) = diamond();
        let f = m.func(fid);
        let rpo = reverse_postorder(f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
        assert!(unreachable_blocks(f).is_empty());
    }
}
