//! A fuel-limited reference interpreter for the IR.
//!
//! The interpreter serves three roles in the reproduction, mirroring how the
//! paper uses program execution:
//!
//! 1. **Runtime reward**: the weighted dynamic cycle count of an execution is
//!    the deterministic core of the LLVM environment's `Runtime` reward (the
//!    environment layers measurement noise on top, as real wall time is
//!    nondeterministic).
//! 2. **Semantics validation**: differential testing compares the
//!    [`ExecOutcome`] of a benchmark before and after optimization
//!    (§III-B4 of the paper).
//! 3. **Sanitizing**: traps (division by zero, out-of-bounds access,
//!    executing `unreachable`) are surfaced as [`ExecError`]s, standing in
//!    for LLVM's UBSan/ASan integration.

use std::fmt;

use crate::inst::{BinOp, CastKind, Op, Pred, Terminator};
use crate::module::{BlockId, FuncId, Module, ValueId};
use crate::types::{Constant, Type};

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer (cell index into the linear memory; 0 is the null page).
    Ptr(u32),
}

impl Value {
    fn to_bits(self) -> i64 {
        match self {
            Value::Bool(b) => b as i64,
            Value::Int(i) => i,
            Value::Float(f) => f.to_bits() as i64,
            Value::Ptr(p) => p as i64,
        }
    }

    fn from_bits(bits: i64, ty: Type) -> Value {
        match ty {
            Type::I1 => Value::Bool(bits != 0),
            Type::I64 => Value::Int(bits),
            Type::F64 => Value::Float(f64::from_bits(bits as u64)),
            Type::Ptr => Value::Ptr(bits as u32),
            Type::Void => Value::Int(0),
        }
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// A trap or resource-limit violation during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division or remainder by zero (or `i64::MIN / -1`).
    DivByZero,
    /// Memory access outside the allocated region or through null.
    OutOfBounds,
    /// The dynamic instruction budget was exhausted (probable infinite loop).
    FuelExhausted,
    /// Call depth exceeded the limit.
    StackOverflow,
    /// Stack allocation exhausted linear memory.
    OutOfMemory,
    /// An `unreachable` terminator was executed.
    UnreachableExecuted,
    /// Internal evaluation error (malformed IR that escaped the verifier).
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::OutOfBounds => write!(f, "memory access out of bounds"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::StackOverflow => write!(f, "call depth limit exceeded"),
            ExecError::OutOfMemory => write!(f, "stack allocation exhausted memory"),
            ExecError::UnreachableExecuted => write!(f, "executed unreachable code"),
            ExecError::Malformed(m) => write!(f, "malformed IR: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Resource limits for an execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum dynamic instructions before [`ExecError::FuelExhausted`].
    pub max_insts: u64,
    /// Maximum call depth. Kept conservative because the interpreter
    /// recurses natively and debug-build frames are large.
    pub max_call_depth: u32,
    /// Linear memory size in 8-byte cells (globals + stack).
    pub memory_slots: u32,
}

impl Default for ExecLimits {
    fn default() -> ExecLimits {
        ExecLimits {
            max_insts: 20_000_000,
            max_call_depth: 64,
            memory_slots: 1 << 20,
        }
    }
}

/// The result of a successful execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The value returned by the entry function.
    pub ret: Option<Value>,
    /// Dynamic instruction count.
    pub dyn_insts: u64,
    /// Weighted cycle estimate (the deterministic core of the runtime
    /// reward; see [`cycle_cost`]).
    pub cycles: u64,
    /// FNV-1a hash of the final global memory region. Together with `ret`
    /// this is the observable behaviour compared by differential testing.
    pub globals_hash: u64,
}

/// The simulated cycle cost of one executed operation. The weights are
/// loosely calibrated to a modern out-of-order core and are what makes
/// "runtime" a *different* optimization target from "code size": e.g.
/// replacing a multiply with shifts wins cycles but may lose size.
pub fn cycle_cost(op: &Op) -> u64 {
    match op {
        Op::Bin(b, _, _) => match b {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 20,
            BinOp::FAdd | BinOp::FSub => 3,
            BinOp::FMul => 4,
            BinOp::FDiv => 15,
            _ => 1,
        },
        Op::Icmp(..) | Op::Fcmp(..) | Op::Select { .. } => 1,
        Op::Alloca { .. } => 1,
        Op::Load { .. } => 4,
        Op::Store { .. } => 4,
        Op::Gep { .. } => 1,
        Op::Call { .. } => 10,
        Op::Phi(_) => 0,
        Op::Cast(..) | Op::Not(_) | Op::Neg(_) | Op::FNeg(_) => 1,
    }
}

/// Runs `fid` in `module` with the given arguments.
///
/// # Errors
/// Returns an [`ExecError`] on any trap or resource exhaustion.
pub fn run_function(
    module: &Module,
    fid: FuncId,
    args: &[Value],
    limits: &ExecLimits,
) -> Result<ExecOutcome, ExecError> {
    let mut machine = Machine::new(module, limits)?;
    let ret = machine.call(fid, args, 0)?;
    Ok(ExecOutcome {
        ret,
        dyn_insts: machine.dyn_insts,
        cycles: machine.cycles,
        globals_hash: machine.globals_hash(),
    })
}

/// Runs the module's `main` function with no arguments — the convention used
/// by runnable benchmarks (their inputs are baked into globals).
///
/// # Errors
/// Returns [`ExecError::Malformed`] if there is no nullary `main`, or any
/// execution trap.
pub fn run_main(module: &Module, limits: &ExecLimits) -> Result<ExecOutcome, ExecError> {
    let fid = module
        .find_func("main")
        .ok_or_else(|| ExecError::Malformed("no main function".into()))?;
    if !module.func(fid).params.is_empty() {
        return Err(ExecError::Malformed("main must take no parameters".into()));
    }
    run_function(module, fid, &[], limits)
}

struct Machine<'a> {
    module: &'a Module,
    memory: Vec<i64>,
    globals_end: u32,
    sp: u32,
    dyn_insts: u64,
    cycles: u64,
    limits: ExecLimits,
    global_base: Vec<u32>,
}

impl<'a> Machine<'a> {
    fn new(module: &'a Module, limits: &ExecLimits) -> Result<Machine<'a>, ExecError> {
        // Cell 0 is the null page: never readable or writable.
        let mut base = 1u32;
        let mut global_base = Vec::with_capacity(module.globals().len());
        for g in module.globals() {
            global_base.push(base);
            base = base.checked_add(g.slots).ok_or(ExecError::OutOfMemory)?;
        }
        if base > limits.memory_slots {
            return Err(ExecError::OutOfMemory);
        }
        let mut memory = vec![0i64; limits.memory_slots as usize];
        for (g, &b) in module.globals().iter().zip(&global_base) {
            for (i, v) in g.init.iter().take(g.slots as usize).enumerate() {
                memory[b as usize + i] = *v;
            }
        }
        Ok(Machine {
            module,
            memory,
            globals_end: base,
            sp: base,
            dyn_insts: 0,
            cycles: 0,
            limits: *limits,
            global_base,
        })
    }

    fn globals_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity((self.globals_end as usize - 1) * 8);
        for cell in &self.memory[1..self.globals_end as usize] {
            bytes.extend_from_slice(&cell.to_le_bytes());
        }
        crate::fnv1a(&bytes)
    }

    fn check_addr(&self, addr: u32) -> Result<usize, ExecError> {
        if addr == 0 || addr as usize >= self.memory.len() {
            return Err(ExecError::OutOfBounds);
        }
        Ok(addr as usize)
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: &[Value],
        depth: u32,
    ) -> Result<Option<Value>, ExecError> {
        if depth > self.limits.max_call_depth {
            return Err(ExecError::StackOverflow);
        }
        if !self.module.func_exists(fid) {
            return Err(ExecError::Malformed("call to deleted function".into()));
        }
        let f = self.module.func(fid);
        if args.len() != f.params.len() {
            return Err(ExecError::Malformed(format!(
                "arity mismatch calling @{}",
                f.name
            )));
        }
        let saved_sp = self.sp;
        let mut regs: Vec<Option<Value>> = vec![None; f.value_bound() as usize];
        for ((v, _), a) in f.params.iter().zip(args) {
            regs[v.0 as usize] = Some(*a);
        }

        fn read_operand(
            global_base: &[u32],
            regs: &[Option<Value>],
            o: &crate::types::Operand,
        ) -> Result<Value, ExecError> {
            match o {
                crate::types::Operand::Value(v) => regs[v.0 as usize]
                    .ok_or_else(|| ExecError::Malformed(format!("read of unset value {v}"))),
                crate::types::Operand::Const(c) => Ok(match c {
                    Constant::Bool(b) => Value::Bool(*b),
                    Constant::Int(i) => Value::Int(*i),
                    Constant::Float(f) => Value::Float(*f),
                }),
                crate::types::Operand::Global(g) => Ok(Value::Ptr(global_base[g.0 as usize])),
                crate::types::Operand::Func(_) => {
                    Err(ExecError::Malformed("function operand evaluated".into()))
                }
            }
        }
        macro_rules! read {
            ($regs:expr, $o:expr) => {
                read_operand(&self.global_base, $regs, $o)
            };
        }

        let mut current = f.entry();
        let mut previous: Option<BlockId> = None;
        loop {
            let block = f.block(current);
            // φ-nodes evaluate simultaneously against the previous block.
            let phi_n = block.phi_count();
            if phi_n > 0 {
                let prev = previous.ok_or_else(|| {
                    ExecError::Malformed("phi executed with no predecessor".into())
                })?;
                let mut staged: Vec<(ValueId, Value)> = Vec::with_capacity(phi_n);
                for inst in &block.insts[..phi_n] {
                    let Op::Phi(incs) = &inst.op else {
                        unreachable!()
                    };
                    let (_, o) = incs
                        .iter()
                        .find(|(b, _)| *b == prev)
                        .ok_or_else(|| ExecError::Malformed("phi missing incoming".into()))?;
                    staged.push((inst.dest.unwrap(), read!(&regs, o)?));
                }
                for (d, v) in staged {
                    regs[d.0 as usize] = Some(v);
                }
                self.dyn_insts += phi_n as u64;
            }
            for inst in &block.insts[phi_n..] {
                self.dyn_insts += 1;
                self.cycles += cycle_cost(&inst.op);
                if self.dyn_insts > self.limits.max_insts {
                    return Err(ExecError::FuelExhausted);
                }
                let result: Option<Value> = match &inst.op {
                    Op::Bin(bop, x, y) => {
                        let a = read!(&regs, x)?;
                        let b = read!(&regs, y)?;
                        Some(eval_bin(*bop, a, b)?)
                    }
                    Op::Icmp(p, x, y) => {
                        let a = read!(&regs, x)?.to_bits();
                        let b = read!(&regs, y)?.to_bits();
                        Some(Value::Bool(eval_icmp(*p, a, b)))
                    }
                    Op::Fcmp(p, x, y) => {
                        let Value::Float(a) = read!(&regs, x)? else {
                            return Err(ExecError::Malformed("fcmp on non-float".into()));
                        };
                        let Value::Float(b) = read!(&regs, y)? else {
                            return Err(ExecError::Malformed("fcmp on non-float".into()));
                        };
                        Some(Value::Bool(eval_fcmp(*p, a, b)))
                    }
                    Op::Select {
                        cond,
                        on_true,
                        on_false,
                    } => {
                        let Value::Bool(c) = read!(&regs, cond)? else {
                            return Err(ExecError::Malformed("select on non-bool".into()));
                        };
                        Some(if c {
                            read!(&regs, on_true)?
                        } else {
                            read!(&regs, on_false)?
                        })
                    }
                    Op::Alloca { slots } => {
                        let addr = self.sp;
                        let new_sp = self.sp.checked_add(*slots).ok_or(ExecError::OutOfMemory)?;
                        if new_sp > self.limits.memory_slots {
                            return Err(ExecError::OutOfMemory);
                        }
                        // Zero the frame (fresh allocas read as zero, keeping
                        // execution deterministic across optimization).
                        for cell in &mut self.memory[addr as usize..new_sp as usize] {
                            *cell = 0;
                        }
                        self.sp = new_sp;
                        Some(Value::Ptr(addr))
                    }
                    Op::Load { ptr } => {
                        let Value::Ptr(a) = read!(&regs, ptr)? else {
                            return Err(ExecError::Malformed("load from non-pointer".into()));
                        };
                        let idx = self.check_addr(a)?;
                        Some(Value::from_bits(self.memory[idx], inst.ty))
                    }
                    Op::Store { ptr, value } => {
                        let Value::Ptr(a) = read!(&regs, ptr)? else {
                            return Err(ExecError::Malformed("store to non-pointer".into()));
                        };
                        let v = read!(&regs, value)?;
                        let idx = self.check_addr(a)?;
                        self.memory[idx] = v.to_bits();
                        None
                    }
                    Op::Gep { base, offset } => {
                        let Value::Ptr(b) = read!(&regs, base)? else {
                            return Err(ExecError::Malformed("gep on non-pointer".into()));
                        };
                        let Value::Int(o) = read!(&regs, offset)? else {
                            return Err(ExecError::Malformed("gep offset non-int".into()));
                        };
                        Some(Value::Ptr((b as i64).wrapping_add(o) as u32))
                    }
                    Op::Call {
                        callee,
                        args: call_args,
                    } => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(read!(&regs, a)?);
                        }
                        self.call(*callee, &vals, depth + 1)?
                    }
                    Op::Phi(_) => {
                        return Err(ExecError::Malformed("phi after non-phi".into()));
                    }
                    Op::Cast(kind, v) => {
                        let x = read!(&regs, v)?;
                        Some(eval_cast(*kind, x)?)
                    }
                    Op::Not(v) => match read!(&regs, v)? {
                        Value::Int(i) => Some(Value::Int(!i)),
                        Value::Bool(b) => Some(Value::Bool(!b)),
                        _ => return Err(ExecError::Malformed("not on bad type".into())),
                    },
                    Op::Neg(v) => {
                        let Value::Int(i) = read!(&regs, v)? else {
                            return Err(ExecError::Malformed("neg on non-int".into()));
                        };
                        Some(Value::Int(i.wrapping_neg()))
                    }
                    Op::FNeg(v) => {
                        let Value::Float(x) = read!(&regs, v)? else {
                            return Err(ExecError::Malformed("fneg on non-float".into()));
                        };
                        Some(Value::Float(-x))
                    }
                };
                if let Some(d) = inst.dest {
                    regs[d.0 as usize] = result;
                }
            }
            // Terminator.
            self.dyn_insts += 1;
            self.cycles += 1;
            if self.dyn_insts > self.limits.max_insts {
                return Err(ExecError::FuelExhausted);
            }
            match &block.term {
                Terminator::Br { target } => {
                    previous = Some(current);
                    current = *target;
                }
                Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                } => {
                    let Value::Bool(c) = read!(&regs, cond)? else {
                        return Err(ExecError::Malformed("condbr on non-bool".into()));
                    };
                    previous = Some(current);
                    current = if c { *on_true } else { *on_false };
                }
                Terminator::Switch {
                    value,
                    cases,
                    default,
                } => {
                    let Value::Int(v) = read!(&regs, value)? else {
                        return Err(ExecError::Malformed("switch on non-int".into()));
                    };
                    previous = Some(current);
                    current = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                }
                Terminator::Ret { value } => {
                    let r = match value {
                        Some(o) => Some(read!(&regs, o)?),
                        None => None,
                    };
                    self.sp = saved_sp;
                    return Ok(r);
                }
                Terminator::Unreachable => return Err(ExecError::UnreachableExecuted),
            }
        }
    }
}

/// Evaluates a binary operation on constant values (shared by the interpreter
/// and the constant-folding pass so they can never disagree).
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    match op {
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => {
            let (Value::Float(x), Value::Float(y)) = (a, b) else {
                return Err(ExecError::Malformed("float op on non-float".into()));
            };
            let r = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            };
            Ok(Value::Float(r))
        }
        _ => {
            let (Value::Int(x), Value::Int(y)) = (a, b) else {
                return Err(ExecError::Malformed("int op on non-int".into()));
            };
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 || (x == i64::MIN && y == -1) {
                        return Err(ExecError::DivByZero);
                    }
                    x / y
                }
                BinOp::Rem => {
                    if y == 0 || (x == i64::MIN && y == -1) {
                        return Err(ExecError::DivByZero);
                    }
                    x % y
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32 & 63),
                BinOp::AShr => x.wrapping_shr(y as u32 & 63),
                BinOp::LShr => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
                _ => unreachable!(),
            };
            Ok(Value::Int(r))
        }
    }
}

/// Evaluates an integer comparison (on raw bit values, so pointers compare
/// by address and booleans by 0/1 — matching hardware semantics).
pub fn eval_icmp(p: Pred, a: i64, b: i64) -> bool {
    match p {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Lt => a < b,
        Pred::Le => a <= b,
        Pred::Gt => a > b,
        Pred::Ge => a >= b,
    }
}

/// Evaluates an ordered float comparison (NaN compares false, except `Ne`).
pub fn eval_fcmp(p: Pred, a: f64, b: f64) -> bool {
    match p {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Lt => a < b,
        Pred::Le => a <= b,
        Pred::Gt => a > b,
        Pred::Ge => a >= b,
    }
}

/// Evaluates a cast (shared with constant folding).
pub fn eval_cast(kind: CastKind, v: Value) -> Result<Value, ExecError> {
    Ok(match (kind, v) {
        (CastKind::IntToFloat, Value::Int(i)) => Value::Float(i as f64),
        (CastKind::FloatToInt, Value::Float(f)) => Value::Int(f as i64),
        (CastKind::BoolToInt, Value::Bool(b)) => Value::Int(b as i64),
        (CastKind::IntToBool, Value::Int(i)) => Value::Bool(i != 0),
        (CastKind::IntToPtr, Value::Int(i)) => Value::Ptr(i as u32),
        (CastKind::PtrToInt, Value::Ptr(p)) => Value::Int(p as i64),
        _ => return Err(ExecError::Malformed("cast on wrong value type".into())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Operand;

    #[test]
    fn arithmetic_and_memory() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 2, vec![7, 0]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let p = Operand::Global(g);
        let v = fb.load(Type::I64, p);
        let v2 = fb.bin(BinOp::Mul, v, Operand::const_int(6));
        let slot1 = fb.gep(p, Operand::const_int(1));
        fb.store(slot1, v2);
        fb.ret(Some(v2));
        fb.finish();
        let m = mb.finish();
        crate::verify::verify_module(&m).unwrap();
        let out = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(out.ret, Some(Value::Int(42)));
        assert!(out.dyn_insts >= 5);
        assert!(out.cycles > out.dyn_insts); // loads/stores cost more than 1
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let d = fb.bin(BinOp::Div, Operand::const_int(1), Operand::const_int(0));
        fb.ret(Some(d));
        fb.finish();
        let m = mb.finish();
        assert_eq!(
            run_main(&m, &ExecLimits::default()),
            Err(ExecError::DivByZero)
        );
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let b = fb.current_block();
        let l = fb.new_block();
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
        let _ = b;
        fb.finish();
        let m = mb.finish();
        let limits = ExecLimits {
            max_insts: 1000,
            ..ExecLimits::default()
        };
        assert_eq!(run_main(&m, &limits), Err(ExecError::FuelExhausted));
    }

    #[test]
    fn recursion_depth_limit() {
        let mut mb = ModuleBuilder::new("t");
        // fn f() -> i64 { f() }  (via pre-reserved id)
        let self_id = mb.next_func_id();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let r = fb.call(self_id, Type::I64, vec![]).unwrap();
        fb.ret(Some(r));
        fb.finish();
        let m = mb.finish();
        assert_eq!(
            run_main(&m, &ExecLimits::default()),
            Err(ExecError::StackOverflow)
        );
    }

    #[test]
    fn null_deref_traps() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let null = fb.cast(CastKind::IntToPtr, Operand::const_int(0));
        let v = fb.load(Type::I64, null);
        fb.ret(Some(v));
        fb.finish();
        let m = mb.finish();
        assert_eq!(
            run_main(&m, &ExecLimits::default()),
            Err(ExecError::OutOfBounds)
        );
    }

    #[test]
    fn globals_hash_reflects_writes() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![0]);
        let mut fb = mb.begin_function("main", &[Type::I64], Type::I64);
        let p = fb.param(0);
        fb.store(Operand::Global(g), p);
        fb.ret(Some(p));
        fb.finish();
        let m = mb.finish();
        let fid = m.find_func("main").unwrap();
        let a = run_function(&m, fid, &[Value::Int(1)], &ExecLimits::default()).unwrap();
        let b = run_function(&m, fid, &[Value::Int(2)], &ExecLimits::default()).unwrap();
        assert_ne!(a.globals_hash, b.globals_hash);
    }

    #[test]
    fn shift_semantics_mask_amount() {
        assert_eq!(
            eval_bin(BinOp::Shl, Value::Int(1), Value::Int(64)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_bin(BinOp::LShr, Value::Int(-1), Value::Int(1)).unwrap(),
            Value::Int(i64::MAX)
        );
    }

    #[test]
    fn fcmp_nan_semantics() {
        assert!(!eval_fcmp(Pred::Eq, f64::NAN, f64::NAN));
        assert!(eval_fcmp(Pred::Ne, f64::NAN, 1.0));
        assert!(!eval_fcmp(Pred::Lt, f64::NAN, 1.0));
    }
}
