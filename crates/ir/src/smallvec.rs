//! A minimal inline small vector for hot analysis paths.
//!
//! [`SmallVec<T, N>`] stores up to `N` elements inline (no heap allocation)
//! and spills to a `Vec<T>` beyond that. The one consumer that matters is
//! [`crate::Terminator::successors`]: every CFG construction and RPO walk
//! calls it per block, and all terminators except `Switch` have ≤ 2
//! successors, so the inline path removes an allocation from the innermost
//! loop of `Cfg::compute`/`reverse_postorder`.
//!
//! `T: Copy` keeps the implementation trivially drop-safe: the inline
//! buffer is `MaybeUninit` but never owns anything needing `Drop`.

use std::mem::MaybeUninit;
use std::ops::Deref;

/// A vector with `N` elements of inline storage; see the module docs.
pub struct SmallVec<T: Copy, const N: usize> {
    inline: [MaybeUninit<T>; N],
    /// Total element count. Elements live inline iff `len <= N`, otherwise
    /// all of them (including the first `N`) live in `spill`.
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// An empty vector (allocation-free).
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            inline: [MaybeUninit::uninit(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = MaybeUninit::new(v);
        } else {
            if self.len == N {
                self.spill.reserve(N + 1);
                // SAFETY: the first `len == N` inline entries are initialized.
                for slot in &self.inline {
                    self.spill.push(unsafe { slot.assume_init() });
                }
            }
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            // SAFETY: the first `len` inline entries are initialized, and
            // `MaybeUninit<T>` has the same layout as `T`.
            unsafe { std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len) }
        } else {
            &self.spill
        }
    }
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T: Copy, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        for &v in self.as_slice() {
            out.push(v);
        }
        out
    }
}

impl<T: Copy, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]> for SmallVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// By-value iteration (`for s in term.successors()`), matching the calling
/// convention of the `Vec`-returning API this type replaced.
pub struct IntoIter<T: Copy, const N: usize> {
    vec: SmallVec<T, N>,
    pos: usize,
}

impl<T: Copy, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let v = self.vec.as_slice().get(self.pos).copied();
        self.pos += 1;
        v
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl<T: Copy, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, pos: 0 }
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(v.as_slice(), &[1, 2]);
        v.push(3); // crosses into the spill vec
        v.push(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn by_value_iteration_and_equality() {
        let v: SmallVec<u32, 2> = [7u32, 8, 9].into_iter().collect();
        let collected: Vec<u32> = v.clone().into_iter().collect();
        assert_eq!(collected, vec![7, 8, 9]);
        assert_eq!(v, vec![7, 8, 9]);
        assert_eq!(v[0], 7); // Deref indexing
        assert!(v.contains(&8)); // slice methods via Deref
    }

    #[test]
    fn empty_and_clone() {
        let v: SmallVec<u32, 2> = SmallVec::default();
        assert_eq!(v.len(), 0);
        assert_eq!(v.as_slice(), &[] as &[u32]);
        let w = v.clone();
        assert_eq!(v, w);
    }
}
