//! Test-case reduction utilities.
//!
//! When differential testing finds a miscompilation, the raw failing program
//! is typically hundreds of lines of generated IR. This module provides the
//! program-side half of automatic shrinking: a set of *candidate reductions*
//! (drop a function, fold a branch, delete an instruction) and a greedy
//! fixpoint driver, [`reduce_module`], that applies every candidate which
//! keeps a caller-supplied predicate (usually "still verifies and still
//! miscompiles") true.
//!
//! Every candidate is applied to a scratch clone and committed only if the
//! predicate holds, so the driver never leaves the module in a state the
//! predicate rejects. Reduction preserves *validity*, not semantics: dropped
//! values are replaced by zero constants, so the reduced program computes
//! something different from the original — all that matters is that the
//! divergence between reference and optimized execution survives.

use crate::analysis::Cfg;
use crate::inst::{Op, Terminator};
use crate::module::{BlockId, FuncId, Module, ValueId};
use crate::types::{Constant, Operand, Type};

/// Statistics from one [`reduce_module`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Candidate reductions tried.
    pub attempts: u64,
    /// Candidates accepted (predicate stayed true).
    pub accepted: u64,
    /// Fixpoint rounds executed.
    pub rounds: u64,
}

/// A zero-ish operand of the given type, used to replace the results of
/// deleted instructions. Pointer values fall back to the first global (if
/// any); returns `None` when no replacement operand exists.
fn default_operand(m: &Module, ty: Type) -> Option<Operand> {
    match ty {
        Type::I1 => Some(Operand::Const(Constant::Bool(false))),
        Type::I64 => Some(Operand::const_int(0)),
        Type::F64 => Some(Operand::const_float(0.0)),
        Type::Ptr => {
            if m.globals().is_empty() {
                None
            } else {
                Some(Operand::Global(crate::module::GlobalId(0)))
            }
        }
        Type::Void => None,
    }
}

/// Removes φ-incomings that no longer correspond to a CFG predecessor, for
/// every block of `f`. Needed after any terminator rewrite.
pub fn prune_phi_incomings(f: &mut crate::module::Function) {
    let cfg = Cfg::compute(f);
    for bid in f.block_ids_vec() {
        let preds: Vec<BlockId> = cfg.preds(bid).to_vec();
        let block = f.block_mut(bid);
        for inst in &mut block.insts {
            if let Op::Phi(incs) = &mut inst.op {
                incs.retain(|(p, _)| preds.contains(p));
            }
        }
    }
}

/// Deletes every block unreachable from the entry, fixing up φ-incomings in
/// the survivors. Safe to call on any function.
pub fn prune_unreachable_blocks(f: &mut crate::module::Function) {
    let dead = crate::analysis::unreachable_blocks(f);
    if dead.is_empty() {
        return;
    }
    for bid in &dead {
        // Cut branches out of the doomed region so `remove_block`'s
        // contract (no remaining references) holds between deletions.
        f.block_mut(*bid).term = Terminator::Unreachable;
        f.block_mut(*bid).insts.clear();
    }
    for bid in dead {
        f.remove_block(bid);
    }
    prune_phi_incomings(f);
}

/// Replaces every use of `v` in `f` with a default operand of type `ty`.
/// Returns `false` (leaving `f` untouched) when no default operand exists.
fn replace_uses_with_default(
    m: &Module,
    f: &mut crate::module::Function,
    v: ValueId,
    ty: Type,
) -> bool {
    match default_operand(m, ty) {
        Some(op) => {
            f.replace_all_uses(v, op);
            true
        }
        None => false,
    }
}

/// The candidate reductions, coarse to fine. Each returns `true` if it
/// produced a structurally different module (which the driver then tests).
mod candidates {
    use super::*;

    /// Drops function `fid` entirely, replacing every call to it (in any
    /// other function) with the callee's zero value.
    pub fn drop_function(m: &mut Module, fid: FuncId) -> bool {
        // `main` is the differential entry point; never drop it.
        if m.func(fid).name == "main" {
            return false;
        }
        let ret_ty = m.func(fid).ret_ty;
        if ret_ty != Type::Void && default_operand(m, ret_ty).is_none() {
            return false;
        }
        for other in m.func_ids_vec() {
            if other == fid {
                continue;
            }
            let mut f = m.take_func(other);
            for bid in f.block_ids_vec() {
                let block = f.block_mut(bid);
                let mut dead_dests: Vec<(ValueId, Type)> = Vec::new();
                block.insts.retain(|inst| {
                    if let Op::Call { callee, .. } = &inst.op {
                        if *callee == fid {
                            if let Some(d) = inst.dest {
                                dead_dests.push((d, inst.ty));
                            }
                            return false;
                        }
                    }
                    true
                });
                for (d, ty) in dead_dests {
                    replace_uses_with_default(m, &mut f, d, ty);
                }
            }
            m.put_func(other, f);
        }
        m.remove_function(fid);
        true
    }

    /// Rewrites a conditional terminator of `bid` into an unconditional
    /// branch to successor `which`, then prunes newly unreachable blocks.
    pub fn fold_terminator(m: &mut Module, fid: FuncId, bid: BlockId, which: usize) -> bool {
        let f = m.func_mut(fid);
        if !f.block_exists(bid) {
            return false;
        }
        let succs = f.block(bid).term.successors();
        if succs.len() < 2 || which >= succs.len() {
            return false;
        }
        f.block_mut(bid).term = Terminator::Br {
            target: succs[which],
        };
        prune_phi_incomings(f);
        prune_unreachable_blocks(f);
        true
    }

    /// Removes an empty forwarding block — no instructions, unconditional
    /// `br` — by retargeting every predecessor's terminator straight at its
    /// successor and rehoming the successor's φ-incomings from `bid` to each
    /// predecessor. Generated IR (and branch folding) leaves long `br`-only
    /// chains that the other candidates cannot touch.
    pub fn thread_empty_block(m: &mut Module, fid: FuncId, bid: BlockId) -> bool {
        let f = m.func_mut(fid);
        if !f.block_exists(bid) || bid == f.entry() || !f.block(bid).insts.is_empty() {
            return false;
        }
        let Terminator::Br { target } = f.block(bid).term else {
            return false;
        };
        if target == bid {
            return false;
        }
        let cfg = Cfg::compute(f);
        let mut preds: Vec<BlockId> = cfg.preds(bid).to_vec();
        preds.sort_by_key(|b| b.0);
        preds.dedup();
        if preds.is_empty() {
            return false; // already unreachable; pruning handles it
        }
        // Rehoming a φ-incoming from `bid` onto a predecessor that already
        // has its own edge into `target` would leave two incomings for one
        // predecessor — skip those.
        for inst in &f.block(target).insts {
            if let Op::Phi(incs) = &inst.op {
                if incs.iter().any(|(p, _)| preds.contains(p)) {
                    return false;
                }
            }
        }
        for p in &preds {
            f.block_mut(*p).term.replace_successor(bid, target);
        }
        // The value that flowed into `target` from `bid` now flows in from
        // each former predecessor of `bid`. (Any such value strictly
        // dominates `bid`, hence dominates every predecessor's exit.)
        for inst in &mut f.block_mut(target).insts {
            if let Op::Phi(incs) = &mut inst.op {
                if let Some(pos) = incs.iter().position(|(p, _)| *p == bid) {
                    let (_, v) = incs.remove(pos);
                    for p in &preds {
                        incs.push((*p, v));
                    }
                }
            }
        }
        prune_unreachable_blocks(f);
        true
    }

    /// Deletes instruction `idx` of block `bid`, replacing its result (if
    /// any) with a zero constant.
    pub fn drop_inst(m: &mut Module, fid: FuncId, bid: BlockId, idx: usize) -> bool {
        let mut f = m.take_func(fid);
        let ok = (|| {
            if !f.block_exists(bid) || idx >= f.block(bid).insts.len() {
                return false;
            }
            let (dest, ty) = {
                let inst = &f.block(bid).insts[idx];
                (inst.dest, inst.ty)
            };
            if let Some(d) = dest {
                if !replace_uses_with_default(m, &mut f, d, ty) {
                    return false;
                }
            }
            f.block_mut(bid).insts.remove(idx);
            true
        })();
        m.put_func(fid, f);
        ok
    }
}

/// Greedily shrinks `m` while `still_failing` holds.
///
/// The predicate receives candidate modules and must return `true` iff the
/// property being reduced (e.g. "this module still miscompiles under the
/// given pipeline") is preserved. Candidates that break the predicate are
/// rolled back. Runs rounds of function-dropping, branch-folding and
/// instruction-deletion until a full round accepts nothing or `max_attempts`
/// is exhausted.
pub fn reduce_module<F>(m: &mut Module, mut still_failing: F, max_attempts: u64) -> ReduceStats
where
    F: FnMut(&Module) -> bool,
{
    let mut stats = ReduceStats::default();
    loop {
        stats.rounds += 1;
        let mut accepted_this_round = false;

        // Coarse: drop whole functions (highest payoff first — later
        // functions tend to be callees of earlier ones, so iterate in
        // reverse definition order).
        for fid in m.func_ids_vec().into_iter().rev() {
            if stats.attempts >= max_attempts {
                return stats;
            }
            let mut candidate = m.clone();
            if !candidates::drop_function(&mut candidate, fid) {
                continue;
            }
            stats.attempts += 1;
            if still_failing(&candidate) {
                *m = candidate;
                stats.accepted += 1;
                accepted_this_round = true;
            }
        }

        // Medium: fold two-way branches and switches down to one arm.
        for fid in m.func_ids_vec() {
            for bid in m.func(fid).block_ids_vec() {
                if !m.func(fid).block_exists(bid) {
                    continue; // pruned by an earlier accepted fold
                }
                let n_succs = m.func(fid).block(bid).term.successors().len();
                for which in 0..n_succs.min(2) {
                    if stats.attempts >= max_attempts {
                        return stats;
                    }
                    if !m.func(fid).block_exists(bid)
                        || m.func(fid).block(bid).term.successors().len() < 2
                    {
                        break;
                    }
                    let mut candidate = m.clone();
                    if !candidates::fold_terminator(&mut candidate, fid, bid, which) {
                        continue;
                    }
                    stats.attempts += 1;
                    if still_failing(&candidate) {
                        *m = candidate;
                        stats.accepted += 1;
                        accepted_this_round = true;
                        break;
                    }
                }
            }
        }

        // Medium: thread away empty `br`-only forwarding blocks (the bulk
        // of leftover lines once branches have been folded).
        for fid in m.func_ids_vec() {
            for bid in m.func(fid).block_ids_vec() {
                if stats.attempts >= max_attempts {
                    return stats;
                }
                if !m.func(fid).block_exists(bid) {
                    continue;
                }
                let mut candidate = m.clone();
                if !candidates::thread_empty_block(&mut candidate, fid, bid) {
                    continue;
                }
                stats.attempts += 1;
                if still_failing(&candidate) {
                    *m = candidate;
                    stats.accepted += 1;
                    accepted_this_round = true;
                }
            }
        }

        // Fine: delete individual instructions (back to front, so indices
        // of untried instructions stay valid as deletions land).
        for fid in m.func_ids_vec() {
            for bid in m.func(fid).block_ids_vec() {
                if !m.func(fid).block_exists(bid) {
                    continue;
                }
                let mut idx = m.func(fid).block(bid).insts.len();
                while idx > 0 {
                    idx -= 1;
                    if stats.attempts >= max_attempts {
                        return stats;
                    }
                    let mut candidate = m.clone();
                    if !candidates::drop_inst(&mut candidate, fid, bid, idx) {
                        continue;
                    }
                    stats.attempts += 1;
                    if still_failing(&candidate) {
                        *m = candidate;
                        stats.accepted += 1;
                        accepted_this_round = true;
                    }
                }
            }
        }

        if !accepted_this_round || stats.attempts >= max_attempts {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::verify::verify_module;

    /// entry → (then, else) → join, plus a helper function called twice.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("helper", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let x = fb.bin(BinOp::Mul, p, Operand::const_int(3));
        fb.ret(Some(x));
        let helper = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let a = fb
            .call(helper, Type::I64, vec![Operand::const_int(5)])
            .unwrap();
        let c = fb.icmp(Pred::Lt, a, Operand::const_int(10));
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let tv = fb.bin(BinOp::Add, a, Operand::const_int(1));
        fb.br(j);
        fb.switch_to(e);
        let ev = fb.call(helper, Type::I64, vec![a]).unwrap();
        fb.br(j);
        fb.switch_to(j);
        let phi = fb.phi(Type::I64, vec![(t, tv), (e, ev)]);
        fb.ret(Some(phi));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn reduce_to_always_true_predicate_shrinks_hard() {
        let mut m = sample();
        let before = m.inst_count();
        let stats = reduce_module(&mut m, |c| verify_module(c).is_ok(), 10_000);
        assert!(stats.accepted > 0);
        assert!(m.inst_count() < before, "{} -> {}", before, m.inst_count());
        verify_module(&m).unwrap();
        // main survives; the helper should be gone.
        assert!(m.find_func("main").is_some());
        assert!(m.find_func("helper").is_none());
    }

    #[test]
    fn reduce_respects_predicate() {
        let mut m = sample();
        // Predicate: module must keep at least one call instruction.
        let has_call = |c: &Module| {
            verify_module(c).is_ok()
                && c.func_ids().iter().any(|fid| {
                    c.func(*fid)
                        .blocks()
                        .any(|b| b.insts.iter().any(|i| matches!(i.op, Op::Call { .. })))
                })
        };
        reduce_module(&mut m, has_call, 10_000);
        assert!(has_call(&m));
    }

    #[test]
    fn fold_terminator_cleans_phis_and_unreachable() {
        let mut m = sample();
        let fid = m.find_func("main").unwrap();
        let entry = m.func(fid).entry();
        assert!(candidates::fold_terminator(&mut m, fid, entry, 0));
        verify_module(&m).unwrap();
        // One arm and its phi incoming must be gone.
        let f = m.func(fid);
        let phis: Vec<usize> = f
            .blocks()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match &i.op {
                Op::Phi(incs) => Some(incs.len()),
                _ => None,
            })
            .collect();
        assert!(phis.iter().all(|n| *n == 1), "phi incomings {phis:?}");
    }

    #[test]
    fn thread_empty_block_rehomes_phis() {
        // entry -> fwd -> join, entry -> other -> join; fwd is empty.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        let fwd = fb.new_block();
        let other = fb.new_block();
        let join = fb.new_block();
        fb.cond_br(c, fwd, other);
        fb.switch_to(fwd);
        fb.br(join);
        fb.switch_to(other);
        let ov = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.br(join);
        fb.switch_to(join);
        let phi = fb.phi(Type::I64, vec![(fwd, p), (other, ov)]);
        fb.ret(Some(phi));
        fb.finish();
        let mut m = mb.finish();
        let fid = m.find_func("main").unwrap();
        assert!(candidates::thread_empty_block(&mut m, fid, fwd));
        verify_module(&m).unwrap();
        let f = m.func(fid);
        assert_eq!(f.num_blocks(), 3, "fwd threaded away");
        // The phi incoming formerly labelled `fwd` must now come from entry.
        let incs: Vec<(BlockId, Operand)> = f
            .blocks()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match &i.op {
                Op::Phi(incs) => Some(incs.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(incs.len(), 2);
        assert!(incs.iter().any(|(b, v)| *b == f.entry() && *v == p));
    }

    #[test]
    fn prune_unreachable_blocks_removes_dead_region() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let dead = fb.new_block();
        let dead2 = fb.new_block();
        fb.ret(Some(Operand::const_int(1)));
        fb.switch_to(dead);
        fb.br(dead2);
        fb.switch_to(dead2);
        fb.br(dead);
        fb.finish();
        let mut m = mb.finish();
        let fid = m.find_func("main").unwrap();
        let f = m.func_mut(fid);
        assert_eq!(f.num_blocks(), 3);
        prune_unreachable_blocks(f);
        assert_eq!(f.num_blocks(), 1);
        verify_module(&m).unwrap();
    }
}
