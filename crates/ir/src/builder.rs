//! Ergonomic construction of IR modules.
//!
//! [`ModuleBuilder`] owns a module under construction; [`FunctionBuilder`]
//! appends instructions to a current block and hands out [`Operand`]s for the
//! results, so generators can compose programs without touching value ids.

use crate::inst::{BinOp, CastKind, Inst, Op, Pred, Terminator};
use crate::module::{BlockId, FuncId, Function, Global, GlobalId, InlineHint, Module};
use crate::types::{Operand, Type};

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declares a global variable.
    pub fn add_global(&mut self, name: impl Into<String>, slots: u32, init: Vec<i64>) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            slots,
            init,
            constant: false,
        })
    }

    /// Declares a read-only global variable.
    pub fn add_const_global(
        &mut self,
        name: impl Into<String>,
        slots: u32,
        init: Vec<i64>,
    ) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            slots,
            init,
            constant: true,
        })
    }

    /// Begins a new function; the returned [`FunctionBuilder`] borrows this
    /// builder and must be [`FunctionBuilder::finish`]ed before beginning the
    /// next function. The entry block is created and selected.
    pub fn begin_function(
        &mut self,
        name: impl Into<String>,
        param_tys: &[Type],
        ret_ty: Type,
    ) -> FunctionBuilder<'_> {
        let mut f = Function::new(name, param_tys, ret_ty);
        let entry = f.add_block();
        FunctionBuilder {
            mb: self,
            func: Some(f),
            current: entry,
        }
    }

    /// Reserves a function id for a (mutually recursive) function defined
    /// later via [`ModuleBuilder::begin_function`]; the ids are assigned in
    /// call order, so `declare` then `begin_function` pairs line up as long
    /// as they happen in the same order. Most callers won't need this —
    /// `find` after construction also works.
    pub fn next_func_id(&self) -> FuncId {
        FuncId(self.module.func_bound())
    }

    /// Finalizes and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds a single [`Function`] block-by-block.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    mb: &'a mut ModuleBuilder,
    func: Option<Function>,
    current: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    fn f(&mut self) -> &mut Function {
        self.func.as_mut().expect("function already finished")
    }

    /// The `i`-th parameter as an operand.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Operand {
        let f = self.func.as_ref().expect("function already finished");
        Operand::Value(f.params[i].0)
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.func
            .as_ref()
            .expect("function already finished")
            .params
            .len()
    }

    /// Marks the function with an inline hint.
    pub fn set_inline_hint(&mut self, hint: InlineHint) {
        self.f().inline_hint = hint;
    }

    /// Creates a new (unterminated) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        self.f().add_block()
    }

    /// Selects the block that subsequent instructions are appended to.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(self.f().block_exists(block));
        self.current = block;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push_valued(&mut self, ty: Type, op: Op) -> Operand {
        let dest = self.f().fresh_value();
        let cur = self.current;
        self.f().block_mut(cur).insts.push(Inst::new(dest, ty, op));
        Operand::Value(dest)
    }

    /// Appends a binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        self.push_valued(op.ty(), Op::Bin(op, lhs, rhs))
    }

    /// Appends an integer comparison.
    pub fn icmp(&mut self, pred: Pred, lhs: Operand, rhs: Operand) -> Operand {
        self.push_valued(Type::I1, Op::Icmp(pred, lhs, rhs))
    }

    /// Appends a float comparison.
    pub fn fcmp(&mut self, pred: Pred, lhs: Operand, rhs: Operand) -> Operand {
        self.push_valued(Type::I1, Op::Fcmp(pred, lhs, rhs))
    }

    /// Appends a select.
    pub fn select(
        &mut self,
        ty: Type,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    ) -> Operand {
        self.push_valued(
            ty,
            Op::Select {
                cond,
                on_true,
                on_false,
            },
        )
    }

    /// Appends a stack allocation of `slots` cells.
    pub fn alloca(&mut self, slots: u32) -> Operand {
        self.push_valued(Type::Ptr, Op::Alloca { slots })
    }

    /// Appends a typed load.
    pub fn load(&mut self, ty: Type, ptr: Operand) -> Operand {
        self.push_valued(ty, Op::Load { ptr })
    }

    /// Appends a store.
    pub fn store(&mut self, ptr: Operand, value: Operand) {
        let cur = self.current;
        self.f()
            .block_mut(cur)
            .insts
            .push(Inst::new_void(Op::Store { ptr, value }));
    }

    /// Appends pointer arithmetic (`base + offset` cells).
    pub fn gep(&mut self, base: Operand, offset: Operand) -> Operand {
        self.push_valued(Type::Ptr, Op::Gep { base, offset })
    }

    /// Appends a call returning `ret_ty` (use [`Type::Void`] for procedures).
    pub fn call(&mut self, callee: FuncId, ret_ty: Type, args: Vec<Operand>) -> Option<Operand> {
        if ret_ty == Type::Void {
            let cur = self.current;
            self.f()
                .block_mut(cur)
                .insts
                .push(Inst::new_void(Op::Call { callee, args }));
            None
        } else {
            Some(self.push_valued(ret_ty, Op::Call { callee, args }))
        }
    }

    /// Appends a φ-node. φ-nodes must precede all non-φ instructions in a
    /// block; the builder inserts them at the φ prefix.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Operand)>) -> Operand {
        let dest = self.f().fresh_value();
        let cur = self.current;
        let block = self.f().block_mut(cur);
        let at = block.phi_count();
        block
            .insts
            .insert(at, Inst::new(dest, ty, Op::Phi(incomings)));
        Operand::Value(dest)
    }

    /// Appends a cast.
    pub fn cast(&mut self, kind: CastKind, value: Operand) -> Operand {
        self.push_valued(kind.signature().1, Op::Cast(kind, value))
    }

    /// Appends a bitwise/logical not. The operand type must be `i64` or `i1`;
    /// the result type follows the operand (assumed `i64` unless `i1` is
    /// evident from a constant).
    pub fn not(&mut self, value: Operand, ty: Type) -> Operand {
        self.push_valued(ty, Op::Not(value))
    }

    /// Appends an integer negation.
    pub fn neg(&mut self, value: Operand) -> Operand {
        self.push_valued(Type::I64, Op::Neg(value))
    }

    /// Appends a float negation.
    pub fn fneg(&mut self, value: Operand) -> Operand {
        self.push_valued(Type::F64, Op::FNeg(value))
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        let cur = self.current;
        self.f().block_mut(cur).term = Terminator::Br { target };
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, on_true: BlockId, on_false: BlockId) {
        let cur = self.current;
        self.f().block_mut(cur).term = Terminator::CondBr {
            cond,
            on_true,
            on_false,
        };
    }

    /// Terminates the current block with a switch.
    pub fn switch(&mut self, value: Operand, cases: Vec<(i64, BlockId)>, default: BlockId) {
        let cur = self.current;
        self.f().block_mut(cur).term = Terminator::Switch {
            value,
            cases,
            default,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        let cur = self.current;
        self.f().block_mut(cur).term = Terminator::Ret { value };
    }

    /// Terminates the current block as unreachable.
    pub fn unreachable(&mut self) {
        let cur = self.current;
        self.f().block_mut(cur).term = Terminator::Unreachable;
    }

    /// Adds an incoming edge to an existing φ-node (identified by its result
    /// operand) — used when building loops where the latch value is only
    /// known after the φ is created.
    pub fn add_phi_incoming(&mut self, phi: Operand, from: BlockId, value: Operand) {
        let phi_id = phi.as_value().expect("phi operand must be a value");
        let f = self.f();
        for bid in f.block_ids_vec() {
            let block = f.block_mut(bid);
            for inst in &mut block.insts {
                if inst.dest == Some(phi_id) {
                    if let Op::Phi(incomings) = &mut inst.op {
                        incomings.push((from, value));
                        return;
                    }
                }
            }
        }
        panic!("phi value {phi_id:?} not found");
    }

    /// Finishes the function, adds it to the module and returns its id.
    pub fn finish(mut self) -> FuncId {
        let f = self.func.take().expect("function already finished");
        self.mb.module.add_function(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn build_straightline() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64, Type::I64], Type::I64);
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.bin(BinOp::Add, a, b);
        let t = fb.bin(BinOp::Mul, s, Operand::const_int(2));
        fb.ret(Some(t));
        fb.finish();
        let m = mb.finish();
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 3);
    }

    #[test]
    fn build_loop_with_phi() {
        // sum = 0; for i in 0..n { sum += i }
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("sum_to_n", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);

        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let sum = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let cond = fb.icmp(Pred::Lt, i, n);
        fb.cond_br(cond, body, exit);

        fb.switch_to(body);
        let sum2 = fb.bin(BinOp::Add, sum, i);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(sum, body, sum2);
        fb.br(header);

        fb.switch_to(exit);
        fb.ret(Some(sum));
        fb.finish();

        let m = mb.finish();
        verify_module(&m).unwrap();

        // And it computes the right thing.
        let out = crate::interp::run_function(
            &m,
            m.find_func("sum_to_n").unwrap(),
            &[crate::interp::Value::Int(10)],
            &crate::interp::ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(crate::interp::Value::Int(45)));
    }

    #[test]
    fn void_call() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("helper", &[], Type::Void);
        fb.ret(None);
        let helper = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let r = fb.call(helper, Type::Void, vec![]);
        assert!(r.is_none());
        fb.ret(Some(Operand::const_int(0)));
        fb.finish();
        verify_module(&mb.finish()).unwrap();
    }
}
