//! Instructions, opcodes and terminators.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::module::{BlockId, FuncId, ValueId};
use crate::smallvec::SmallVec;
use crate::types::{Operand, Type};

/// Binary arithmetic and bitwise opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division. Traps on division by zero or overflow.
    Div,
    /// Signed integer remainder. Traps on division by zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount masked to 0..64).
    Shl,
    /// Arithmetic shift right (shift amount masked to 0..64).
    AShr,
    /// Logical shift right (shift amount masked to 0..64).
    LShr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl BinOp {
    /// The result (and operand) type of the operation.
    pub fn ty(&self) -> Type {
        match self {
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => Type::F64,
            _ => Type::I64,
        }
    }

    /// True for commutative operations (used by reassociation and value
    /// numbering to canonicalize operand order).
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// True for operations that can trap at runtime (integer div/rem).
    pub fn can_trap(&self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// The textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }

    /// All binary opcodes, in mnemonic-stable order.
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::LShr,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicates, shared by `icmp` and `fcmp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed / ordered).
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Pred {
    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(&self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
        }
    }

    /// The logically negated predicate (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(&self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Lt => Pred::Ge,
            Pred::Le => Pred::Gt,
            Pred::Gt => Pred::Le,
            Pred::Ge => Pred::Lt,
        }
    }

    /// The textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Lt => "lt",
            Pred::Le => "le",
            Pred::Gt => "gt",
            Pred::Ge => "ge",
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Cast opcodes between primitive types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CastKind {
    /// Signed integer to float (`i64` → `f64`).
    IntToFloat,
    /// Float to signed integer, truncating toward zero (`f64` → `i64`).
    FloatToInt,
    /// Boolean zero-extension (`i1` → `i64`).
    BoolToInt,
    /// Integer to boolean (`i64` → `i1`, nonzero test).
    IntToBool,
    /// Integer to pointer reinterpretation.
    IntToPtr,
    /// Pointer to integer reinterpretation.
    PtrToInt,
}

impl CastKind {
    /// The (source, destination) types of the cast.
    pub fn signature(&self) -> (Type, Type) {
        match self {
            CastKind::IntToFloat => (Type::I64, Type::F64),
            CastKind::FloatToInt => (Type::F64, Type::I64),
            CastKind::BoolToInt => (Type::I1, Type::I64),
            CastKind::IntToBool => (Type::I64, Type::I1),
            CastKind::IntToPtr => (Type::I64, Type::Ptr),
            CastKind::PtrToInt => (Type::Ptr, Type::I64),
        }
    }

    /// The textual mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CastKind::IntToFloat => "i2f",
            CastKind::FloatToInt => "f2i",
            CastKind::BoolToInt => "b2i",
            CastKind::IntToBool => "i2b",
            CastKind::IntToPtr => "i2p",
            CastKind::PtrToInt => "p2i",
        }
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The operation performed by an [`Inst`].
///
/// `Op` is `Eq + Hash` (floats compare by bit pattern via [`Constant`]), so
/// value-numbering passes can use operations directly as table keys.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Binary arithmetic/bitwise operation.
    Bin(BinOp, Operand, Operand),
    /// Integer comparison producing an `i1`.
    Icmp(Pred, Operand, Operand),
    /// Float comparison producing an `i1` (ordered; NaN compares false
    /// except under `Ne`).
    Fcmp(Pred, Operand, Operand),
    /// Conditional select: `cond ? on_true : on_false`.
    Select {
        /// The `i1` condition.
        cond: Operand,
        /// Value when the condition is true.
        on_true: Operand,
        /// Value when the condition is false.
        on_false: Operand,
    },
    /// Stack allocation of `slots` 8-byte cells; yields a pointer.
    Alloca {
        /// Number of 8-byte cells to reserve.
        slots: u32,
    },
    /// Load one cell from a pointer.
    Load {
        /// Address to load from.
        ptr: Operand,
    },
    /// Store one cell to a pointer. Produces no value.
    Store {
        /// Address to store to.
        ptr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Pointer arithmetic: `base + offset` cells; yields a pointer.
    Gep {
        /// Base pointer.
        base: Operand,
        /// Cell offset (i64).
        offset: Operand,
    },
    /// Direct function call.
    Call {
        /// The called function.
        callee: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// SSA φ-node: selects a value based on the incoming CFG edge.
    Phi(Vec<(BlockId, Operand)>),
    /// Type cast.
    Cast(CastKind, Operand),
    /// Bitwise not (integers) / logical not (`i1`).
    Not(Operand),
    /// Integer negation.
    Neg(Operand),
    /// Float negation.
    FNeg(Operand),
}

impl Op {
    /// Visits every operand of this operation.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Op::Bin(_, a, b)
            | Op::Icmp(_, a, b)
            | Op::Fcmp(_, a, b)
            | Op::Gep { base: a, offset: b } => {
                f(a);
                f(b);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Op::Alloca { .. } => {}
            Op::Load { ptr } => f(ptr),
            Op::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            Op::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Phi(incomings) => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            Op::Cast(_, a) | Op::Not(a) | Op::Neg(a) | Op::FNeg(a) => f(a),
        }
    }

    /// Visits every operand of this operation mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Op::Bin(_, a, b)
            | Op::Icmp(_, a, b)
            | Op::Fcmp(_, a, b)
            | Op::Gep { base: a, offset: b } => {
                f(a);
                f(b);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Op::Alloca { .. } => {}
            Op::Load { ptr } => f(ptr),
            Op::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            Op::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Phi(incomings) => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            Op::Cast(_, a) | Op::Not(a) | Op::Neg(a) | Op::FNeg(a) => f(a),
        }
    }

    /// True if the op reads or writes memory, calls a function, or can trap —
    /// i.e. it must not be removed even if its result is unused, and must not
    /// be reordered across other effectful ops.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. })
            || matches!(self, Op::Bin(op, _, _) if op.can_trap())
    }

    /// True if the op reads memory (loads are pure but not speculatable past
    /// stores).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Call { .. })
    }

    /// True if the op writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. })
    }

    /// A coarse opcode index used by feature extractors (70-way).
    pub fn opcode_index(&self) -> usize {
        match self {
            Op::Bin(b, _, _) => *b as usize,       // 0..15
            Op::Icmp(p, _, _) => 15 + *p as usize, // 15..21
            Op::Fcmp(p, _, _) => 21 + *p as usize, // 21..27
            Op::Select { .. } => 27,
            Op::Alloca { .. } => 28,
            Op::Load { .. } => 29,
            Op::Store { .. } => 30,
            Op::Gep { .. } => 31,
            Op::Call { .. } => 32,
            Op::Phi(_) => 33,
            Op::Cast(k, _) => 34 + *k as usize, // 34..40
            Op::Not(_) => 40,
            Op::Neg(_) => 41,
            Op::FNeg(_) => 42,
        }
    }

    /// The mnemonic for this op (used by the printer and opcode histograms).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Bin(b, _, _) => b.mnemonic(),
            Op::Icmp(..) => "icmp",
            Op::Fcmp(..) => "fcmp",
            Op::Select { .. } => "select",
            Op::Alloca { .. } => "alloca",
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Gep { .. } => "gep",
            Op::Call { .. } => "call",
            Op::Phi(_) => "phi",
            Op::Cast(..) => "cast",
            Op::Not(_) => "not",
            Op::Neg(_) => "neg",
            Op::FNeg(_) => "fneg",
        }
    }
}

/// A single IR instruction: an optional destination SSA value, its type,
/// and the operation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Inst {
    /// Destination value, or `None` for `store` and void calls.
    pub dest: Option<ValueId>,
    /// The type of the destination ([`Type::Void`] when `dest` is `None`).
    pub ty: Type,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// Creates an instruction with a destination value.
    pub fn new(dest: ValueId, ty: Type, op: Op) -> Inst {
        Inst {
            dest: Some(dest),
            ty,
            op,
        }
    }

    /// Creates a void instruction (store / void call).
    pub fn new_void(op: Op) -> Inst {
        Inst {
            dest: None,
            ty: Type::Void,
            op,
        }
    }

    /// True if removing this instruction cannot change program behaviour
    /// (pure, no trap, result unused is the caller's concern).
    pub fn is_removable_if_unused(&self) -> bool {
        !self.op.has_side_effects()
    }
}

/// A basic block terminator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Br {
        /// Branch target.
        target: BlockId,
    },
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// The `i1` condition operand.
        cond: Operand,
        /// Target when true.
        on_true: BlockId,
        /// Target when false.
        on_false: BlockId,
    },
    /// Multi-way switch on an `i64`.
    Switch {
        /// The scrutinee operand.
        value: Operand,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, BlockId)>,
        /// Target when no case matches.
        default: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value; `None` in a `void` function.
        value: Option<Operand>,
    },
    /// Marks unreachable control flow; executing it is a trap.
    Unreachable,
}

impl Terminator {
    /// Successor block ids, in order (may contain duplicates for switches).
    ///
    /// Returns a [`SmallVec`] with two inline slots: every terminator but
    /// `Switch` fits without allocating, which matters because CFG
    /// construction and RPO walks call this per block visited.
    pub fn successors(&self) -> SmallVec<BlockId, 2> {
        let mut v = SmallVec::new();
        match self {
            Terminator::Br { target } => v.push(*target),
            Terminator::CondBr {
                on_true, on_false, ..
            } => {
                v.push(*on_true);
                v.push(*on_false);
            }
            Terminator::Switch { cases, default, .. } => {
                for (_, b) in cases {
                    v.push(*b);
                }
                v.push(*default);
            }
            Terminator::Ret { .. } | Terminator::Unreachable => {}
        }
        v
    }

    /// Replaces every successor equal to `from` with `to`.
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Br { target } => {
                if *target == from {
                    *target = to;
                }
            }
            Terminator::CondBr {
                on_true, on_false, ..
            } => {
                if *on_true == from {
                    *on_true = to;
                }
                if *on_false == from {
                    *on_false = to;
                }
            }
            Terminator::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    if *b == from {
                        *b = to;
                    }
                }
                if *default == from {
                    *default = to;
                }
            }
            Terminator::Ret { .. } | Terminator::Unreachable => {}
        }
    }

    /// Visits the value operands of the terminator (condition / scrutinee /
    /// return value).
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Switch { value, .. } => f(value),
            Terminator::Ret { value: Some(v) } => f(v),
            _ => {}
        }
    }

    /// Visits the value operands of the terminator mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Switch { value, .. } => f(value),
            Terminator::Ret { value: Some(v) } => f(v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_involutions() {
        for p in [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge] {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(p.negated().negated(), p);
        }
    }

    #[test]
    fn binop_properties() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::Div.can_trap());
        assert!(!BinOp::FDiv.can_trap()); // float div yields inf/nan, no trap
        assert_eq!(BinOp::FMul.ty(), crate::Type::F64);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::const_bool(true),
            on_true: BlockId(1),
            on_false: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let mut t = t;
        t.replace_successor(BlockId(2), BlockId(3));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(3)]);
    }

    #[test]
    fn opcode_indices_are_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let x = Operand::const_int(0);
        let mut ops: Vec<Op> = Vec::new();
        for b in BinOp::all() {
            ops.push(Op::Bin(*b, x, x));
        }
        for p in [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge] {
            ops.push(Op::Icmp(p, x, x));
            ops.push(Op::Fcmp(p, x, x));
        }
        ops.push(Op::Select {
            cond: x,
            on_true: x,
            on_false: x,
        });
        ops.push(Op::Alloca { slots: 1 });
        ops.push(Op::Load { ptr: x });
        ops.push(Op::Store { ptr: x, value: x });
        ops.push(Op::Gep { base: x, offset: x });
        ops.push(Op::Call {
            callee: FuncId(0),
            args: vec![],
        });
        ops.push(Op::Phi(vec![]));
        for k in [
            CastKind::IntToFloat,
            CastKind::FloatToInt,
            CastKind::BoolToInt,
            CastKind::IntToBool,
            CastKind::IntToPtr,
            CastKind::PtrToInt,
        ] {
            ops.push(Op::Cast(k, x));
        }
        ops.push(Op::Not(x));
        ops.push(Op::Neg(x));
        ops.push(Op::FNeg(x));
        for op in &ops {
            assert!(seen.insert(op.opcode_index()), "duplicate index for {op:?}");
        }
        assert!(seen.iter().all(|&i| i < 43));
    }
}
