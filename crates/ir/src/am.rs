//! The per-function analysis cache.
//!
//! [`AnalysisManager`] caches [`Cfg`], [`DomTree`], dominance frontiers, the
//! loop forest, [`Liveness`] and [`DefUse`] per function, keyed by
//! [`FuncId`] and validated by the owning function's modification [`Stamp`]:
//! a cached entry is served only while its recorded stamp still equals the
//! function's current one, so any structural mutation (which advances the
//! stamp) transparently invalidates everything cached for that function.
//!
//! Pass runners refine this with two explicit operations:
//!
//! * [`AnalysisManager::revalidate`] — re-adopt the current stamp without
//!   dropping anything. Sound when the function's content is known
//!   unchanged (a pass reported it untouched) even though scanning bumped
//!   its stamp via `block_mut`.
//! * [`AnalysisManager::preserve_cfg`] — keep the CFG-shape analyses (cfg,
//!   dominators, frontiers, loops) but drop the value-level ones (liveness,
//!   def-use). Sound for passes that rewrite instructions without touching
//!   terminators or layout.
//!
//! Results are returned as [`Arc`]s so callers can hold an analysis across
//! subsequent mutations of the function (the cache entry is invalidated,
//! the Arc keeps the data alive).
//!
//! Hit/miss/invalidation totals accrue into process-wide counters
//! ([`cache_stats`]) surfaced by `cg stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::analysis::{find_loops, Cfg, DefUse, DomTree, Liveness, Loop};
use crate::module::{BlockId, FuncId, Function, Stamp};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static NOOP_SKIPS: AtomicU64 = AtomicU64::new(0);
static DISABLE_ALL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Process-wide kill switch: when set, [`AnalysisManager::new`] hands out
/// disabled (always-recompute) managers. Backs the `--no-analysis-cache`
/// CLI escape hatch, so a suspected caching bug can be ruled out in the
/// field without a rebuild.
pub fn set_cache_disabled(disabled: bool) {
    DISABLE_ALL.store(disabled, Ordering::Relaxed);
}

/// Process-wide analysis cache totals (all managers combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a valid cached entry.
    pub hits: u64,
    /// Requests that had to compute the analysis.
    pub misses: u64,
    /// Cached analyses discarded because their function's stamp moved.
    pub invalidations: u64,
    /// Whole pass applications skipped by the no-op memo (the pass already
    /// ran on byte-identical content and changed nothing).
    pub noop_skips: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when there were no requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the process-wide cache counters.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        invalidations: INVALIDATIONS.load(Ordering::Relaxed),
        noop_skips: NOOP_SKIPS.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide cache counters (benchmarks and tests).
pub fn reset_cache_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    INVALIDATIONS.store(0, Ordering::Relaxed);
    NOOP_SKIPS.store(0, Ordering::Relaxed);
}

/// Cached analyses for one function, valid while `stamp` matches.
#[derive(Debug, Default, Clone)]
struct FuncEntry {
    stamp: Option<Stamp>,
    cfg: Option<Arc<Cfg>>,
    dom: Option<Arc<DomTree>>,
    frontiers: Option<Arc<Vec<Vec<BlockId>>>>,
    loops: Option<Arc<Vec<Loop>>>,
    liveness: Option<Arc<Liveness>>,
    defuse: Option<Arc<DefUse>>,
}

impl FuncEntry {
    fn cached_count(&self) -> u64 {
        self.cfg.is_some() as u64
            + self.dom.is_some() as u64
            + self.frontiers.is_some() as u64
            + self.loops.is_some() as u64
            + self.liveness.is_some() as u64
            + self.defuse.is_some() as u64
    }

    fn clear(&mut self) {
        INVALIDATIONS.fetch_add(self.cached_count(), Ordering::Relaxed);
        *self = FuncEntry::default();
    }
}

/// The per-function analysis cache; see the module docs.
#[derive(Debug, Default, Clone)]
pub struct AnalysisManager {
    entries: HashMap<u32, FuncEntry>,
    enabled: bool,
    /// Content generation for the no-op pass memo: bumped whenever the
    /// module's stamp fingerprint stops matching `gen_key`. Two moments
    /// with the same generation hold byte-identical IR.
    gen: u64,
    /// The (function id, stamp) fingerprint at which `gen` was established.
    gen_key: Vec<(u32, Stamp)>,
    /// Pass name → last content generation on which it reported no change.
    noop: HashMap<String, u64>,
}

impl AnalysisManager {
    /// A new, enabled manager.
    pub fn new() -> AnalysisManager {
        AnalysisManager {
            enabled: !DISABLE_ALL.load(Ordering::Relaxed),
            ..AnalysisManager::default()
        }
    }

    /// A manager that never caches: every request recomputes. The control
    /// arm for benchmarks and the `--no-analysis-cache` escape hatch.
    pub fn disabled() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// True if this manager caches at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The entry for `fid`, cleared first if its stamp is stale.
    fn entry(&mut self, fid: FuncId, f: &Function) -> &mut FuncEntry {
        let e = self.entries.entry(fid.0).or_default();
        if e.stamp != Some(f.stamp()) {
            e.clear();
            e.stamp = Some(f.stamp());
        }
        e
    }

    /// The CFG of `f` (cached).
    pub fn cfg(&mut self, fid: FuncId, f: &Function) -> Arc<Cfg> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return Arc::new(Cfg::compute(f));
        }
        let e = self.entry(fid, f);
        if let Some(cfg) = &e.cfg {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cfg);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let cfg = Arc::new(Cfg::compute(f));
        e.cfg = Some(Arc::clone(&cfg));
        cfg
    }

    /// The dominator tree of `f` (cached; computes the CFG on demand).
    pub fn dom(&mut self, fid: FuncId, f: &Function) -> Arc<DomTree> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let cfg = self.cfg(fid, f);
            return Arc::new(DomTree::compute(f, &cfg));
        }
        if let Some(dom) = &self.entry(fid, f).dom {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(dom);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let cfg = self.cfg(fid, f);
        let dom = Arc::new(DomTree::compute(f, &cfg));
        self.entry(fid, f).dom = Some(Arc::clone(&dom));
        dom
    }

    /// The dominance frontiers of `f` (cached), dense by `BlockId.0`.
    pub fn frontiers(&mut self, fid: FuncId, f: &Function) -> Arc<Vec<Vec<BlockId>>> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let cfg = self.cfg(fid, f);
            let dom = DomTree::compute(f, &cfg);
            return Arc::new(dom.dominance_frontiers(&cfg));
        }
        if let Some(df) = &self.entry(fid, f).frontiers {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(df);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let cfg = self.cfg(fid, f);
        let dom = self.dom(fid, f);
        let df = Arc::new(dom.dominance_frontiers(&cfg));
        self.entry(fid, f).frontiers = Some(Arc::clone(&df));
        df
    }

    /// The natural-loop forest of `f` (cached), in decreasing-depth order.
    pub fn loops(&mut self, fid: FuncId, f: &Function) -> Arc<Vec<Loop>> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let cfg = self.cfg(fid, f);
            let dom = DomTree::compute(f, &cfg);
            return Arc::new(find_loops(f, &cfg, &dom));
        }
        if let Some(loops) = &self.entry(fid, f).loops {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(loops);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let cfg = self.cfg(fid, f);
        let dom = self.dom(fid, f);
        let loops = Arc::new(find_loops(f, &cfg, &dom));
        self.entry(fid, f).loops = Some(Arc::clone(&loops));
        loops
    }

    /// The liveness of `f` (cached).
    pub fn liveness(&mut self, fid: FuncId, f: &Function) -> Arc<Liveness> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let cfg = self.cfg(fid, f);
            return Arc::new(Liveness::compute(f, &cfg));
        }
        if let Some(live) = &self.entry(fid, f).liveness {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(live);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let cfg = self.cfg(fid, f);
        let live = Arc::new(Liveness::compute(f, &cfg));
        self.entry(fid, f).liveness = Some(Arc::clone(&live));
        live
    }

    /// The def-use maps of `f` (cached).
    pub fn defuse(&mut self, fid: FuncId, f: &Function) -> Arc<DefUse> {
        if !self.enabled {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return Arc::new(DefUse::compute(f));
        }
        let e = self.entry(fid, f);
        if let Some(du) = &e.defuse {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(du);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let du = Arc::new(DefUse::compute(f));
        e.defuse = Some(Arc::clone(&du));
        du
    }

    /// Drops everything cached for `fid`.
    pub fn invalidate(&mut self, fid: FuncId) {
        if let Some(e) = self.entries.get_mut(&fid.0) {
            e.clear();
        }
        self.entries.remove(&fid.0);
    }

    /// Drops the entire cache.
    pub fn invalidate_all(&mut self) {
        for e in self.entries.values_mut() {
            e.clear();
        }
        self.entries.clear();
    }

    /// Re-adopts the function's current stamp without dropping cached
    /// analyses. Only sound when the function's *content* is known
    /// unchanged since the analyses were computed (e.g. a pass swept it
    /// through `block_mut` but reported no change).
    pub fn revalidate(&mut self, fid: FuncId, f: &Function) {
        if let Some(e) = self.entries.get_mut(&fid.0) {
            if e.stamp.is_some() {
                e.stamp = Some(f.stamp());
            }
        }
    }

    /// Keeps the CFG-shape analyses (cfg, dominators, frontiers, loops) and
    /// re-adopts the current stamp, but drops the value-level ones
    /// (liveness, def-use). Only sound when terminators, layout and the
    /// block set are known unchanged.
    pub fn preserve_cfg(&mut self, fid: FuncId, f: &Function) {
        if let Some(e) = self.entries.get_mut(&fid.0) {
            if e.stamp.is_some() {
                INVALIDATIONS.fetch_add(
                    e.liveness.is_some() as u64 + e.defuse.is_some() as u64,
                    Ordering::Relaxed,
                );
                e.liveness = None;
                e.defuse = None;
                e.stamp = Some(f.stamp());
            }
        }
    }

    /// Number of functions with at least one cached analysis.
    pub fn cached_functions(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.cached_count() > 0)
            .count()
    }

    fn key_matches(&self, m: &crate::Module) -> bool {
        let ids = m.func_ids();
        ids.len() == self.gen_key.len()
            && ids
                .iter()
                .zip(&self.gen_key)
                .all(|(&fid, &(raw, stamp))| fid.0 == raw && m.func(fid).stamp() == stamp)
    }

    fn refresh_key(&mut self, m: &crate::Module) {
        self.gen_key.clear();
        self.gen_key
            .extend(m.func_ids().iter().map(|&fid| (fid.0, m.func(fid).stamp())));
    }

    /// The module's current content generation. Stamps are allocated from a
    /// global monotonic counter and advance on every mutation, so an
    /// unchanged (function id, stamp) fingerprint proves the IR is
    /// byte-identical to when the generation was established; any mismatch
    /// starts a new generation.
    pub fn content_gen(&mut self, m: &crate::Module) -> u64 {
        if !self.key_matches(m) {
            self.gen += 1;
            self.refresh_key(m);
        }
        self.gen
    }

    /// True if `pass` is already known to be a no-op on the module's current
    /// content — it ran on byte-identical IR before and reported no change,
    /// so (passes being deterministic) re-running it must change nothing.
    /// Counts into [`CacheStats::noop_skips`] when it fires.
    pub fn known_noop(&mut self, pass: &str, m: &crate::Module) -> bool {
        if !self.enabled {
            return false;
        }
        let gen = self.content_gen(m);
        if self.noop.get(pass) == Some(&gen) {
            NOOP_SKIPS.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Records that `pass` just ran on the current content and reported no
    /// change. The pass's read-modify sweeps may have renamed stamps, so
    /// the fingerprint is re-adopted under the *same* generation — the memo
    /// analogue of [`AnalysisManager::revalidate`], sound for the same
    /// reason: a `changed = false` report vouches that content is
    /// untouched.
    pub fn note_noop(&mut self, pass: &str, m: &crate::Module) {
        if !self.enabled {
            return;
        }
        self.refresh_key(m);
        self.noop.insert(pass.to_string(), self.gen);
    }

    /// Compares every cached, stamp-current analysis against a from-scratch
    /// recompute on `m`, returning one description per mismatch (empty =
    /// the cache is sound). Entries for functions no longer in `m`, or
    /// whose stamp is stale, are skipped — they will be recomputed on next
    /// request and cannot serve wrong data.
    ///
    /// This is the oracle behind the analysis-cache soundness property
    /// test: a pass that over-claims `preserved()`, or a runner that
    /// revalidates a genuinely changed function, surfaces here.
    pub fn audit(&self, m: &crate::Module) -> Vec<String> {
        let mut bad = Vec::new();
        for (&raw, e) in &self.entries {
            let fid = FuncId(raw);
            if !m.func_ids().contains(&fid) {
                continue;
            }
            let f = m.func(fid);
            if e.stamp != Some(f.stamp()) {
                continue;
            }
            let fresh_cfg = Cfg::compute(f);
            if let Some(cfg) = &e.cfg {
                if **cfg != fresh_cfg {
                    bad.push(format!("fn {}: cached Cfg diverged", f.name));
                }
            }
            let fresh_dom = DomTree::compute(f, &fresh_cfg);
            if let Some(dom) = &e.dom {
                if **dom != fresh_dom {
                    bad.push(format!("fn {}: cached DomTree diverged", f.name));
                }
            }
            if let Some(df) = &e.frontiers {
                if **df != fresh_dom.dominance_frontiers(&fresh_cfg) {
                    bad.push(format!("fn {}: cached frontiers diverged", f.name));
                }
            }
            if let Some(loops) = &e.loops {
                if **loops != find_loops(f, &fresh_cfg, &fresh_dom) {
                    bad.push(format!("fn {}: cached loop forest diverged", f.name));
                }
            }
            if let Some(live) = &e.liveness {
                if **live != Liveness::compute(f, &fresh_cfg) {
                    bad.push(format!("fn {}: cached Liveness diverged", f.name));
                }
            }
            if let Some(du) = &e.defuse {
                if **du != DefUse::compute(f) {
                    bad.push(format!("fn {}: cached DefUse diverged", f.name));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::BinOp;
    use crate::types::{Operand, Type};
    use crate::Module;

    fn small_module() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let s = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.ret(Some(s));
        let fid = fb.finish();
        (mb.finish(), fid)
    }

    #[test]
    fn second_request_hits() {
        let (m, fid) = small_module();
        let mut am = AnalysisManager::new();
        reset_cache_stats();
        let c1 = am.cfg(fid, m.func(fid));
        let c2 = am.cfg(fid, m.func(fid));
        assert!(Arc::ptr_eq(&c1, &c2));
        let s = cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn mutation_invalidates() {
        let (mut m, fid) = small_module();
        let mut am = AnalysisManager::new();
        let c1 = am.cfg(fid, m.func(fid));
        // Any structural mutation advances the stamp...
        let e = m.func(fid).entry();
        let _ = m.func_mut(fid).block_mut(e);
        // ...so the next request recomputes.
        let c2 = am.cfg(fid, m.func(fid));
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(*c1, *c2, "content identical after a no-op mutation");
    }

    #[test]
    fn revalidate_recovers_no_op_sweeps() {
        let (mut m, fid) = small_module();
        let mut am = AnalysisManager::new();
        let c1 = am.cfg(fid, m.func(fid));
        let e = m.func(fid).entry();
        let _ = m.func_mut(fid).block_mut(e); // stamp bumped, content unchanged
        am.revalidate(fid, m.func(fid));
        let c2 = am.cfg(fid, m.func(fid));
        assert!(Arc::ptr_eq(&c1, &c2), "revalidation kept the entry live");
    }

    #[test]
    fn preserve_cfg_keeps_shape_drops_values() {
        let (mut m, fid) = small_module();
        let mut am = AnalysisManager::new();
        let c1 = am.cfg(fid, m.func(fid));
        let _ = am.liveness(fid, m.func(fid));
        let e = m.func(fid).entry();
        let _ = m.func_mut(fid).block_mut(e);
        am.preserve_cfg(fid, m.func(fid));
        let c2 = am.cfg(fid, m.func(fid));
        assert!(Arc::ptr_eq(&c1, &c2));
        reset_cache_stats();
        let _ = am.liveness(fid, m.func(fid));
        assert_eq!(cache_stats().misses, 1, "liveness was dropped");
    }

    #[test]
    fn disabled_manager_always_recomputes() {
        let (m, fid) = small_module();
        let mut am = AnalysisManager::disabled();
        let c1 = am.cfg(fid, m.func(fid));
        let c2 = am.cfg(fid, m.func(fid));
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(am.cached_functions(), 0);
    }

    #[test]
    fn every_analysis_is_cached_and_equal_to_fresh() {
        let (m, fid) = small_module();
        let f = m.func(fid);
        let mut am = AnalysisManager::new();
        let cfg = am.cfg(fid, f);
        assert_eq!(*cfg, Cfg::compute(f));
        let dom = am.dom(fid, f);
        assert_eq!(*dom, DomTree::compute(f, &cfg));
        let df = am.frontiers(fid, f);
        assert_eq!(*df, dom.dominance_frontiers(&cfg));
        let loops = am.loops(fid, f);
        assert_eq!(*loops, find_loops(f, &cfg, &dom));
        let live = am.liveness(fid, f);
        assert_eq!(*live, Liveness::compute(f, &cfg));
        let du = am.defuse(fid, f);
        assert_eq!(*du, DefUse::compute(f));
        assert_eq!(am.cached_functions(), 1);
    }

    #[test]
    fn noop_memo_tracks_content_generations() {
        let (mut m, fid) = small_module();
        let mut am = AnalysisManager::new();

        // Nothing recorded yet: unknown.
        assert!(!am.known_noop("dce", &m));
        am.note_noop("dce", &m);
        assert!(am.known_noop("dce", &m), "same content, same pass: skip");
        assert!(
            !am.known_noop("gvn", &m),
            "other passes are not vouched for"
        );

        // A pass that sweeps through block_mut but changes nothing renames
        // stamps; note_noop re-adopts the fingerprint under the same
        // generation, so earlier memos survive.
        let gen = am.content_gen(&m);
        let entry = m.func(fid).entry();
        let _ = m.func_mut(fid).block_mut(entry); // stamp bump, no change
        am.note_noop("gvn", &m);
        assert_eq!(am.content_gen(&m), gen, "no-op sweep keeps the generation");
        assert!(am.known_noop("dce", &m), "dce memo survives gvn's sweep");

        // A real mutation (stamp moves without a no-change report) starts a
        // new generation and disowns every memo.
        let _ = m.func_mut(fid).block_mut(entry);
        assert!(!am.known_noop("dce", &m));
        assert!(!am.known_noop("gvn", &m));

        // Disabled managers never memoize.
        let mut off = AnalysisManager::disabled();
        off.note_noop("dce", &m);
        assert!(!off.known_noop("dce", &m));
    }
}
