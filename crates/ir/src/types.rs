//! Primitive types, constants and operands.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::module::{FuncId, GlobalId, ValueId};

/// The primitive types of the IR.
///
/// The type system is deliberately small — one boolean, one integer, one
/// float, an opaque pointer, and void — which keeps the verifier and the
/// interpreter simple while still exercising every code path the optimization
/// passes care about (integer arithmetic, floating point, memory, control
/// flow).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Type {
    /// 1-bit boolean, produced by comparisons.
    I1,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Opaque pointer into linear memory (8-byte cells).
    Ptr,
    /// No value; the type of `store` and void calls.
    Void,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::Void => "void",
        };
        f.write_str(s)
    }
}

/// A compile-time constant value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Constant {
    /// Boolean constant.
    Bool(bool),
    /// 64-bit integer constant.
    Int(i64),
    /// 64-bit float constant. Compared and hashed by bit pattern.
    Float(f64),
}

impl Constant {
    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Bool(_) => Type::I1,
            Constant::Int(_) => Type::I64,
            Constant::Float(_) => Type::F64,
        }
    }
}

impl PartialEq for Constant {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Constant::Bool(a), Constant::Bool(b)) => a == b,
            (Constant::Int(a), Constant::Int(b)) => a == b,
            (Constant::Float(a), Constant::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Constant {}

impl std::hash::Hash for Constant {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Constant::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Constant::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            Constant::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Float(x) => write!(f, "f{:#018x}", x.to_bits()),
        }
    }
}

/// An instruction operand: an SSA value, a constant, or a reference to a
/// global or function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// An SSA value produced by an instruction or function parameter.
    Value(ValueId),
    /// An inline constant.
    Const(Constant),
    /// The address of a global variable (of type [`Type::Ptr`]).
    Global(GlobalId),
    /// A reference to a function (used only as a call target placeholder in
    /// textual form; calls name their callee directly).
    Func(FuncId),
}

impl Operand {
    /// Shorthand for an integer constant operand.
    pub fn const_int(v: i64) -> Operand {
        Operand::Const(Constant::Int(v))
    }

    /// Shorthand for a float constant operand.
    pub fn const_float(v: f64) -> Operand {
        Operand::Const(Constant::Float(v))
    }

    /// Shorthand for a boolean constant operand.
    pub fn const_bool(v: bool) -> Operand {
        Operand::Const(Constant::Bool(v))
    }

    /// Returns the SSA value id if this operand is a value.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the constant if this operand is a constant.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Operand::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the integer value if this is an integer constant.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Operand::Const(Constant::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// True if the operand is any constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Operand {
        Operand::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_float_eq_by_bits() {
        assert_eq!(Constant::Float(1.5), Constant::Float(1.5));
        assert_ne!(Constant::Float(0.0), Constant::Float(-0.0));
        // NaN equals itself under bit comparison, which is what we want for
        // value numbering.
        assert_eq!(Constant::Float(f64::NAN), Constant::Float(f64::NAN));
    }

    #[test]
    fn operand_accessors() {
        let o = Operand::const_int(7);
        assert_eq!(o.as_const_int(), Some(7));
        assert!(o.is_const());
        assert_eq!(o.as_value(), None);
        let v = Operand::Value(ValueId(3));
        assert_eq!(v.as_value(), Some(ValueId(3)));
        assert!(!v.is_const());
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
