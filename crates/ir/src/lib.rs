//! # cg-ir: the intermediate representation substrate
//!
//! A typed, SSA-form intermediate representation modelled on LLVM-IR, built
//! from scratch for `compiler-gym-rs`. It is the common substrate shared by
//! the simulated LLVM optimizer ([`cg-llvm`]), the simulated GCC backend
//! ([`cg-gcc`]) and the benchmark program generators ([`cg-datasets`]).
//!
//! The crate provides:
//!
//! * IR data structures: [`Module`], [`Function`], [`Block`], [`Inst`]
//! * a [`builder`] for constructing valid IR programmatically
//! * a [`verify`]-er that checks CFG and SSA invariants (including dominance)
//! * a textual format with a [`printer`] and a round-tripping [`parser`]
//! * a fuel-limited [`interp`]-reter used for runtime rewards and
//!   differential testing of optimizations
//! * CFG [`analysis`]: predecessors/successors, reverse postorder,
//!   dominator trees, dominance frontiers, natural loops, liveness, def-use
//! * an [`am::AnalysisManager`] caching per-function analyses, invalidated
//!   by function modification stamps (see [`Stamp`])
//!
//! # Example
//!
//! ```
//! use cg_ir::builder::ModuleBuilder;
//! use cg_ir::{Type, Operand, BinOp};
//!
//! let mut mb = ModuleBuilder::new("example");
//! let mut fb = mb.begin_function("add1", &[Type::I64], Type::I64);
//! let p = fb.param(0);
//! let sum = fb.bin(BinOp::Add, p, Operand::const_int(1));
//! fb.ret(Some(sum));
//! fb.finish();
//! let module = mb.finish();
//! assert!(cg_ir::verify::verify_module(&module).is_ok());
//! ```

pub mod am;
pub mod analysis;
pub mod builder;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod reduce;
pub mod smallvec;
pub mod verify;

mod inst;
mod module;
mod types;

pub use am::AnalysisManager;
pub use inst::{BinOp, CastKind, Inst, Op, Pred, Terminator};
pub use module::{
    Block, BlockId, FuncId, Function, Global, GlobalId, InlineHint, Module, Stamp, ValueId,
};
pub use smallvec::SmallVec;
pub use types::{Constant, Operand, Type};

/// A stable 64-bit hash of a module's canonical textual form.
///
/// Two modules hash equal iff their printed IR is identical. This is the
/// mechanism behind state validation: replaying a serialized action sequence
/// must reproduce the same module hash, or the underlying "compiler" has a
/// reproducibility bug (see the `gvn-sink` story in the paper, §III-B3).
pub fn module_hash(module: &Module) -> u64 {
    fnv1a(printer::print_module(module).as_bytes())
}

/// FNV-1a hash over a byte slice. Deterministic across runs and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
