//! Textual IR emission.
//!
//! The format round-trips through [`crate::parser`]: for any verified module
//! `m`, `parse(print(m))` prints identically. Example:
//!
//! ```text
//! module "benchmark://cbench-v1/crc32"
//! global @table 256 const [0, 1996959894, ...]
//! define i64 @crc(ptr %0, i64 %1) {
//! bb0:
//!   %2 = add i64 %1, 1
//!   condbr %3, bb1, bb2
//! ...
//! }
//! ```

use std::fmt::Write as _;

use crate::inst::{Inst, Op, Terminator};
use crate::module::{Function, Module};
use crate::types::Operand;

/// Prints a whole module to its canonical textual form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    print_module_into(&mut out, m);
    out
}

/// Prints a whole module into a caller-supplied buffer, clearing it first.
/// Reusing one buffer across prints avoids re-growing a fresh `String` for
/// every IR observation or checkpoint.
pub fn print_module_into(out: &mut String, m: &Module) {
    out.clear();
    let _ = writeln!(out, "module \"{}\"", m.name);
    for g in m.globals() {
        let _ = write!(out, "global @{} {}", g.name, g.slots);
        if g.constant {
            out.push_str(" const");
        }
        out.push_str(" [");
        for (i, v) in g.init.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]\n");
    }
    for &fid in m.func_ids() {
        print_function(out, m, m.func(fid));
    }
}

/// Prints one function (including its `define` header) into `out`.
pub fn print_function(out: &mut String, m: &Module, f: &Function) {
    let _ = write!(out, "define {} @{}(", f.ret_ty, f.name);
    for (i, (v, t)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{t} {v}");
    }
    out.push(')');
    match f.inline_hint {
        crate::module::InlineHint::None => {}
        crate::module::InlineHint::Always => out.push_str(" hint(always)"),
        crate::module::InlineHint::Never => out.push_str(" hint(never)"),
    }
    out.push_str(" {\n");
    for block in f.blocks() {
        let _ = writeln!(out, "{}:", block.id);
        for inst in &block.insts {
            out.push_str("  ");
            print_inst(out, m, inst);
            out.push('\n');
        }
        out.push_str("  ");
        print_terminator(out, &block.term);
        out.push('\n');
    }
    out.push_str("}\n");
}

fn operand(out: &mut String, m: &Module, o: &Operand) {
    match o {
        Operand::Value(v) => {
            let _ = write!(out, "{v}");
        }
        Operand::Const(c) => {
            let _ = write!(out, "{c}");
        }
        Operand::Global(g) => {
            let _ = write!(out, "@{}", m.global(*g).name);
        }
        Operand::Func(f) => {
            let _ = write!(out, "&{}", m.func(*f).name);
        }
    }
}

/// Prints a single instruction (no trailing newline) into `out`.
pub fn print_inst(out: &mut String, m: &Module, inst: &Inst) {
    if let Some(d) = inst.dest {
        let _ = write!(out, "{d} = ");
    }
    match &inst.op {
        Op::Bin(b, x, y) => {
            let _ = write!(out, "{b} {} ", inst.ty);
            operand(out, m, x);
            out.push_str(", ");
            operand(out, m, y);
        }
        Op::Icmp(p, x, y) => {
            let _ = write!(out, "icmp {p} ");
            operand(out, m, x);
            out.push_str(", ");
            operand(out, m, y);
        }
        Op::Fcmp(p, x, y) => {
            let _ = write!(out, "fcmp {p} ");
            operand(out, m, x);
            out.push_str(", ");
            operand(out, m, y);
        }
        Op::Select {
            cond,
            on_true,
            on_false,
        } => {
            let _ = write!(out, "select {} ", inst.ty);
            operand(out, m, cond);
            out.push_str(", ");
            operand(out, m, on_true);
            out.push_str(", ");
            operand(out, m, on_false);
        }
        Op::Alloca { slots } => {
            let _ = write!(out, "alloca {slots}");
        }
        Op::Load { ptr } => {
            let _ = write!(out, "load {} ", inst.ty);
            operand(out, m, ptr);
        }
        Op::Store { ptr, value } => {
            out.push_str("store ");
            operand(out, m, ptr);
            out.push_str(", ");
            operand(out, m, value);
        }
        Op::Gep { base, offset } => {
            out.push_str("gep ");
            operand(out, m, base);
            out.push_str(", ");
            operand(out, m, offset);
        }
        Op::Call { callee, args } => {
            let _ = write!(out, "call {} @{}(", inst.ty, m.func(*callee).name);
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                operand(out, m, a);
            }
            out.push(')');
        }
        Op::Phi(incomings) => {
            let _ = write!(out, "phi {}", inst.ty);
            for (b, v) in incomings {
                let _ = write!(out, " [{b} ");
                operand(out, m, v);
                out.push(']');
            }
        }
        Op::Cast(k, v) => {
            let _ = write!(out, "cast {k} ");
            operand(out, m, v);
        }
        Op::Not(v) => {
            let _ = write!(out, "not {} ", inst.ty);
            operand(out, m, v);
        }
        Op::Neg(v) => {
            out.push_str("neg ");
            operand(out, m, v);
        }
        Op::FNeg(v) => {
            out.push_str("fneg ");
            operand(out, m, v);
        }
    }
}

/// Prints a terminator (no trailing newline) into `out`.
pub fn print_terminator(out: &mut String, t: &Terminator) {
    match t {
        Terminator::Br { target } => {
            let _ = write!(out, "br {target}");
        }
        Terminator::CondBr {
            cond,
            on_true,
            on_false,
        } => {
            out.push_str("condbr ");
            // Conditions never reference globals/functions, so a module is
            // not needed; print values and constants directly.
            match cond {
                Operand::Value(v) => {
                    let _ = write!(out, "{v}");
                }
                Operand::Const(c) => {
                    let _ = write!(out, "{c}");
                }
                _ => out.push_str("<bad>"),
            }
            let _ = write!(out, ", {on_true}, {on_false}");
        }
        Terminator::Switch {
            value,
            cases,
            default,
        } => {
            out.push_str("switch ");
            match value {
                Operand::Value(v) => {
                    let _ = write!(out, "{v}");
                }
                Operand::Const(c) => {
                    let _ = write!(out, "{c}");
                }
                _ => out.push_str("<bad>"),
            }
            let _ = write!(out, ", default {default}");
            for (v, b) in cases {
                let _ = write!(out, " [{v}: {b}]");
            }
        }
        Terminator::Ret { value } => match value {
            Some(Operand::Value(v)) => {
                let _ = write!(out, "ret {v}");
            }
            Some(Operand::Const(c)) => {
                let _ = write!(out, "ret {c}");
            }
            Some(_) => out.push_str("ret <bad>"),
            None => out.push_str("ret void"),
        },
        Terminator::Unreachable => out.push_str("unreachable"),
    }
}

/// Convenience: prints one instruction to a fresh string.
pub fn inst_to_string(m: &Module, inst: &Inst) -> String {
    let mut s = String::new();
    print_inst(&mut s, m, inst);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::Type;

    #[test]
    fn print_simple_function() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let x = fb.bin(BinOp::Add, p, Operand::const_int(1));
        let c = fb.icmp(Pred::Lt, x, Operand::const_int(100));
        let exit = fb.new_block();
        let other = fb.new_block();
        fb.cond_br(c, exit, other);
        fb.switch_to(exit);
        fb.ret(Some(x));
        fb.switch_to(other);
        fb.ret(Some(p));
        fb.finish();
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("define i64 @f(i64 %0)"));
        assert!(text.contains("%1 = add i64 %0, 1"));
        assert!(text.contains("%2 = icmp lt %1, 100"));
        assert!(text.contains("condbr %2, bb1, bb2"));
        assert!(text.contains("ret %1"));
    }

    #[test]
    fn float_constants_roundtrip_via_bits() {
        let c = crate::Constant::Float(0.1 + 0.2);
        let s = c.to_string();
        assert!(s.starts_with("f0x"));
    }
}
