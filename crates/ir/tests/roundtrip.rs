//! Property test: the textual format is lossless for generated programs —
//! `parse(print(m))` verifies and is *structurally equal* to `m` (derived
//! `PartialEq` over the arena representation, not just an equal re-print).
//! Structural equality is what state serialization, episode replay, and the
//! difftest reproducer format all rely on.

use proptest::prelude::*;

use cg_datasets::synth::{generate, Profile, FUZZ_PROFILES};
use cg_ir::verify::verify_module;

fn roundtrip(m: &cg_ir::Module) {
    let text = cg_ir::printer::print_module(m);
    let back = cg_ir::parser::parse_module(&text)
        .unwrap_or_else(|e| panic!("printed module does not re-parse: {e}\n{text}"));
    verify_module(&back).unwrap_or_else(|e| panic!("re-parsed module does not verify: {e}"));
    assert_eq!(*m, back, "parse(print(m)) is not structurally equal to m");
    assert_eq!(cg_ir::module_hash(m), cg_ir::module_hash(&back));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Round-trip over every fuzz profile × random seeds.
    #[test]
    fn parse_print_is_structural_identity(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..5,
    ) {
        let profile = Profile::named(FUZZ_PROFILES[profile_idx % FUZZ_PROFILES.len()]).unwrap();
        let m = generate(&profile, seed, "roundtrip");
        verify_module(&m).unwrap();
        roundtrip(&m);
    }

    /// Round-trip survives deoptimization (the noisiest IR the repo emits:
    /// extra allocas, redundant loads, split blocks).
    #[test]
    fn parse_print_survives_deoptimized_modules(seed in 0u64..1_000_000) {
        let mut m = generate(&Profile::balanced(), seed, "roundtrip-deopt");
        cg_datasets::deopt::deoptimize(&mut m);
        verify_module(&m).unwrap();
        roundtrip(&m);
    }
}

/// Non-random anchors: the reduction utilities delete blocks and leave
/// arena holes; round-trip must survive sparse ids too.
#[test]
fn roundtrip_survives_reduced_modules() {
    let mut m = generate(&Profile::phi_web(), 7, "roundtrip-reduced");
    cg_ir::reduce::reduce_module(&mut m, |c| verify_module(c).is_ok(), 2_000);
    verify_module(&m).unwrap();
    let text = cg_ir::printer::print_module(&m);
    let back = cg_ir::parser::parse_module(&text).unwrap();
    verify_module(&back).unwrap();
    // Arena *shapes* may legitimately differ after hole-punching (the parser
    // rebuilds dense arenas), so compare the canonical form, not structure.
    assert_eq!(text, cg_ir::printer::print_module(&back));
}
