//! The dataset families of Table I, and the benchmark-URI registry.
//!
//! Benchmarks are addressed by URI, `benchmark://<dataset>/<path>`, exactly
//! as in CompilerGym. Finite datasets enumerate their members (by name for
//! curated suites, by index for corpus-derived families); the generator
//! datasets (`csmith-v0`, `llvm-stress-v0`) accept any 32-bit seed as the
//! path, giving 2³² programs each.

use cg_ir::builder::ModuleBuilder;
use cg_ir::{BinOp, Module};
use std::fmt;

use crate::kernels as k;
use crate::rng::derive_seed;
use crate::synth::{self, Profile};

/// How a dataset's members are named.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSize {
    /// A curated suite with fixed member names.
    Named(&'static [&'static str]),
    /// An indexed corpus: paths are `0..n`.
    Indexed(u64),
    /// A seeded program generator: paths are any `u32` seed (2³² members).
    Seeded,
}

/// Metadata and construction entry point for one dataset family.
pub struct DatasetInfo {
    /// Dataset name with version, e.g. `cbench-v1`.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Member naming scheme and count.
    pub size: DatasetSize,
    /// Whether members are guaranteed runnable (terminating and trap-free),
    /// enabling runtime rewards and semantics validation.
    pub runnable: bool,
    build: fn(&str, u64) -> Result<Module, DatasetError>,
}

impl fmt::Debug for DatasetInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DatasetInfo")
            .field("name", &self.name)
            .field("size", &self.size)
            .field("runnable", &self.runnable)
            .finish()
    }
}

/// An error resolving a benchmark URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The URI did not have the `benchmark://dataset/path` shape.
    BadUri(String),
    /// No dataset with that name is registered.
    UnknownDataset(String),
    /// The dataset has no member with that path.
    UnknownBenchmark {
        /// The dataset searched.
        dataset: String,
        /// The path that was not found.
        path: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadUri(u) => write!(f, "malformed benchmark URI `{u}`"),
            DatasetError::UnknownDataset(d) => write!(f, "unknown dataset `{d}`"),
            DatasetError::UnknownBenchmark { dataset, path } => {
                write!(f, "no benchmark `{path}` in dataset `{dataset}`")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl DatasetInfo {
    /// Number of members, if finite.
    pub fn len(&self) -> Option<u64> {
        match self.size {
            DatasetSize::Named(names) => Some(names.len() as u64),
            DatasetSize::Indexed(n) => Some(n),
            DatasetSize::Seeded => None,
        }
    }

    /// True when the dataset has a finite, zero-length member list (never,
    /// for shipped datasets; present for API completeness alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// True for generator datasets with no finite member list.
    pub fn is_generator(&self) -> bool {
        self.size == DatasetSize::Seeded
    }

    /// The first `limit` benchmark paths of this dataset.
    pub fn benchmark_paths(&self, limit: usize) -> Vec<String> {
        match self.size {
            DatasetSize::Named(names) => names.iter().take(limit).map(|s| s.to_string()).collect(),
            DatasetSize::Indexed(n) => (0..n.min(limit as u64)).map(|i| i.to_string()).collect(),
            DatasetSize::Seeded => (0..limit as u64).map(|i| i.to_string()).collect(),
        }
    }

    /// Builds the benchmark at `path`.
    ///
    /// # Errors
    /// [`DatasetError::UnknownBenchmark`] if the path is not a member.
    pub fn benchmark(&self, path: &str) -> Result<Module, DatasetError> {
        let unknown = || DatasetError::UnknownBenchmark {
            dataset: self.name.to_string(),
            path: path.to_string(),
        };
        let index: u64 = match self.size {
            DatasetSize::Named(names) => {
                names.iter().position(|n| *n == path).ok_or_else(unknown)? as u64
            }
            DatasetSize::Indexed(n) => {
                let i: u64 = path.parse().map_err(|_| unknown())?;
                if i >= n {
                    return Err(unknown());
                }
                i
            }
            DatasetSize::Seeded => {
                let i: u32 = path.parse().map_err(|_| unknown())?;
                i as u64
            }
        };
        (self.build)(path, index)
    }

    /// The full URI of a member path.
    pub fn uri_of(&self, path: &str) -> String {
        format!("benchmark://{}/{}", self.name, path)
    }
}

/// The cBench-v1 member names (23 programs, as in the paper).
pub const CBENCH: &[&str] = &[
    "adpcm-c",
    "adpcm-d",
    "bitcount",
    "blowfish-d",
    "blowfish-e",
    "bzip2d",
    "bzip2e",
    "crc32",
    "dijkstra",
    "ghostscript",
    "gsm",
    "ispell",
    "jpeg-c",
    "jpeg-d",
    "lame",
    "patricia",
    "qsort",
    "rijndael-d",
    "rijndael-e",
    "sha",
    "stringsearch",
    "susan",
    "tiff2bw",
];

/// The CHStone member names (12 programs).
pub const CHSTONE: &[&str] = &[
    "adpcm", "aes", "blowfish", "dfadd", "dfdiv", "dfmul", "dfsin", "gsm", "jpeg", "mips",
    "motion", "sha",
];

fn build_cbench(path: &str, _index: u64) -> Result<Module, DatasetError> {
    let m = match path {
        "adpcm-c" => k::single(path, |mb| k::emit_adpcm(mb, "adpcm_coder", 4096, true)),
        "adpcm-d" => k::single(path, |mb| k::emit_adpcm(mb, "adpcm_decoder", 4096, false)),
        "bitcount" => k::single(path, |mb| k::emit_bitcount(mb, "bitcnt", 2048)),
        "blowfish-d" => k::single(path, |mb| k::emit_feistel(mb, "bf_decrypt", 256, 16, true)),
        "blowfish-e" => k::single(path, |mb| k::emit_feistel(mb, "bf_encrypt", 256, 16, false)),
        "bzip2d" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_rle(mb, "unrle", 2048)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_histogram(mb, "mtf", 1024)),
            ],
        ),
        "bzip2e" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_rle(mb, "rle", 4096)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_histogram(mb, "huff_freq", 2048)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_sort_kernel(mb, "block_sort", 192)),
            ],
        ),
        "crc32" => k::single(path, |mb| k::emit_crc32(mb, "crc", 4096)),
        "dijkstra" => k::single(path, |mb| k::emit_dijkstra(mb, "dijkstra", 24)),
        // ghostscript is by far the biggest cBench program; compose many
        // subsystems so both its static size and step cost dominate (Fig. 6).
        "ghostscript" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_vm_interp(mb, "ps_interp", 256, 8000)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_vm_interp(mb, "ps_interp2", 128, 4000)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_stencil2d(mb, "raster", 48, 32)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_dct8x8(mb, "type1_dct", 24)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_histogram(mb, "palette", 2048)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_hash_probe(mb, "dict", 512, 10)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_rle(mb, "pack", 1024)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_sort_kernel(mb, "zsort", 128)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_matmul(mb, "ctm", 12)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_stringsearch(mb, "scan", 1024, 12)),
            ],
        ),
        "gsm" => k::single(path, |mb| k::emit_autocorr(mb, "gsm_autocorr", 2048, 9)),
        "ispell" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_hash_probe(mb, "dict_lookup", 1024, 10)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_stringsearch(mb, "affix", 512, 6)),
            ],
        ),
        "jpeg-c" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_dct8x8(mb, "fdct", 48)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_histogram(mb, "huffman", 1024)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_rle(mb, "rle_ac", 512)),
            ],
        ),
        "jpeg-d" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_dct8x8(mb, "idct", 32)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_stencil2d(mb, "upsample", 32, 24)),
            ],
        ),
        "lame" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_fir(mb, "polyphase", 2048, 32)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_autocorr(mb, "psycho", 1024, 12)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_sine_taylor(mb, "mdct_win", 256)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_histogram(mb, "bitalloc", 512)),
            ],
        ),
        "patricia" => k::single(path, |mb| k::emit_hash_probe(mb, "trie", 2048, 12)),
        "qsort" => k::single(path, |mb| k::emit_sort_kernel(mb, "qsort1", 512)),
        "rijndael-d" => k::single(path, |mb| k::emit_feistel(mb, "aes_dec", 256, 32, true)),
        "rijndael-e" => k::single(path, |mb| k::emit_feistel(mb, "aes_enc", 256, 32, false)),
        "sha" => k::single(path, |mb| k::emit_sha_mix(mb, "sha_transform", 128)),
        "stringsearch" => k::single(path, |mb| k::emit_stringsearch(mb, "bmh", 4096, 16)),
        "susan" => k::compose(
            path,
            vec![
                Box::new(|mb: &mut ModuleBuilder| k::emit_stencil2d(mb, "smoothing", 64, 48)),
                Box::new(|mb: &mut ModuleBuilder| k::emit_sad_search(mb, "corners", 8, 8)),
            ],
        ),
        "tiff2bw" => k::single(path, |mb| k::emit_histogram(mb, "tiff_hist", 4096)),
        _ => {
            return Err(DatasetError::UnknownBenchmark {
                dataset: "cbench-v1".into(),
                path: path.into(),
            })
        }
    };
    Ok(with_uri_name(m, "cbench-v1", path))
}

fn build_chstone(path: &str, _index: u64) -> Result<Module, DatasetError> {
    let m = match path {
        "adpcm" => k::single(path, |mb| k::emit_adpcm(mb, "adpcm_main", 1024, true)),
        "aes" => k::single(path, |mb| k::emit_feistel(mb, "aes_main", 128, 10, false)),
        "blowfish" => k::single(path, |mb| k::emit_feistel(mb, "bf_main", 128, 16, false)),
        "dfadd" => k::single(path, |mb| {
            k::emit_float_chain(mb, "float64_add", 2048, BinOp::FAdd)
        }),
        "dfdiv" => k::single(path, |mb| {
            k::emit_float_chain(mb, "float64_div", 1024, BinOp::FDiv)
        }),
        "dfmul" => k::single(path, |mb| {
            k::emit_float_chain(mb, "float64_mul", 2048, BinOp::FMul)
        }),
        "dfsin" => k::single(path, |mb| k::emit_sine_taylor(mb, "local_sin", 1024)),
        "gsm" => k::single(path, |mb| k::emit_autocorr(mb, "lpc_autocorr", 1024, 8)),
        "jpeg" => k::single(path, |mb| k::emit_dct8x8(mb, "chenidct", 24)),
        "mips" => k::single(path, |mb| k::emit_vm_interp(mb, "mips_cpu", 128, 4000)),
        "motion" => k::single(path, |mb| k::emit_sad_search(mb, "motion_est", 8, 10)),
        "sha" => k::single(path, |mb| k::emit_sha_mix(mb, "sha_update", 64)),
        _ => {
            return Err(DatasetError::UnknownBenchmark {
                dataset: "chstone-v0".into(),
                path: path.into(),
            })
        }
    };
    Ok(with_uri_name(m, "chstone-v0", path))
}

fn with_uri_name(mut m: Module, dataset: &str, path: &str) -> Module {
    // Benchmarks model *unoptimized* frontend output: demote scalars to
    // stack slots so the optimizer has the headroom real `-O0` code gives it.
    crate::deopt::deoptimize(&mut m);
    m.name = format!("benchmark://{dataset}/{path}");
    m
}

fn build_mibench(path: &str, index: u64) -> Result<Module, DatasetError> {
    // 40 programs: kernels cycled with varying sizes.
    let v = (index % 8) as u32;
    let m = match index % 10 {
        0 => k::single(path, |mb| k::emit_bitcount(mb, "bc", 512 << (v % 3))),
        1 => k::single(path, |mb| k::emit_crc32(mb, "crc", 1024 << (v % 3))),
        2 => k::single(path, |mb| {
            k::emit_fir(mb, "fft_ish", 512 << (v % 3), 8 + 4 * v)
        }),
        3 => k::single(path, |mb| k::emit_sort_kernel(mb, "qs", 128 + 64 * v)),
        4 => k::single(path, |mb| k::emit_stencil2d(mb, "susan_s", 24 + 8 * v, 24)),
        5 => k::single(path, |mb| k::emit_dijkstra(mb, "dij", 12 + 2 * v)),
        6 => k::single(path, |mb| {
            k::emit_hash_probe(mb, "patricia", 256 << (v % 3), 9)
        }),
        7 => k::single(path, |mb| k::emit_stringsearch(mb, "search", 1024, 8 + v)),
        8 => k::single(path, |mb| k::emit_sha_mix(mb, "sha", 32 + 16 * v)),
        _ => k::single(path, |mb| {
            k::emit_adpcm(mb, "adpcm", 512 << (v % 3), v.is_multiple_of(2))
        }),
    };
    Ok(with_uri_name(m, "mibench-v1", path))
}

fn build_blas(path: &str, index: u64) -> Result<Module, DatasetError> {
    // 300 programs: BLAS-like routines over varying problem sizes.
    let n = 8 + (index % 20) as u32 * 4;
    let m = match index % 5 {
        0 => k::single(path, |mb| k::emit_matmul(mb, "gemm", n.min(24))),
        1 => k::single(path, |mb| k::emit_fir(mb, "dot", n * 16, 8)),
        2 => k::single(path, |mb| k::emit_autocorr(mb, "syrk_ish", n * 8, 8)),
        3 => k::single(path, |mb| {
            k::emit_float_chain(mb, "axpy", n * 32, BinOp::FAdd)
        }),
        _ => k::single(path, |mb| {
            k::emit_float_chain(mb, "scal", n * 32, BinOp::FMul)
        }),
    };
    Ok(with_uri_name(m, "blas-v0", path))
}

fn build_npb(path: &str, index: u64) -> Result<Module, DatasetError> {
    // 122 programs: numeric kernels in the NAS mold.
    let n = 8 + (index % 12) as u32 * 2;
    let m = match index % 6 {
        0 => k::single(path, |mb| k::emit_matmul(mb, "mg_resid", n.min(20))),
        1 => k::single(path, |mb| {
            k::emit_stencil2d(mb, "sp_rhs", 16 + n, 16 + n / 2)
        }),
        2 => k::single(path, |mb| k::emit_fir(mb, "ft_ish", 256 + n * 32, 16)),
        3 => k::single(path, |mb| k::emit_sort_kernel(mb, "is_rank", 128 + n * 16)),
        4 => k::single(path, |mb| k::emit_sine_taylor(mb, "ep_pairs", 128 + n * 16)),
        _ => k::single(path, |mb| k::emit_autocorr(mb, "cg_spmv", 256 + n * 32, 8)),
    };
    Ok(with_uri_name(m, "npb-v0", path))
}

macro_rules! synth_builder {
    ($fn_name:ident, $dataset:literal, $profile:expr) => {
        fn $fn_name(path: &str, index: u64) -> Result<Module, DatasetError> {
            let profile = $profile;
            let seed = derive_seed($dataset, index);
            let mut m = synth::generate(&profile, seed, path);
            crate::deopt::deoptimize(&mut m);
            m.name = format!("benchmark://{}/{}", $dataset, path);
            Ok(m)
        }
    };
}

/// Profile resembling AnghaBench: single small-ish functions mined from C
/// repositories, little floating point, modest control flow.
fn anghabench_profile() -> Profile {
    Profile {
        functions: (1, 3),
        stmts: (6, 18),
        loop_prob: 0.12,
        if_prob: 0.18,
        switch_prob: 0.03,
        mem_prob: 0.22,
        call_prob: 0.05,
        float_ratio: 0.05,
        ..Profile::balanced()
    }
}

/// Profile resembling GitHub/open-source C: bigger call graphs, mixed style.
fn github_profile() -> Profile {
    Profile {
        functions: (4, 10),
        stmts: (10, 30),
        call_prob: 0.15,
        float_ratio: 0.10,
        ..Profile::balanced()
    }
}

/// Linux kernel style: branch- and bit-manipulation-heavy, no floats.
fn linux_profile() -> Profile {
    Profile {
        functions: (3, 8),
        stmts: (10, 26),
        if_prob: 0.24,
        switch_prob: 0.08,
        mem_prob: 0.22,
        float_ratio: 0.0,
        ..Profile::balanced()
    }
}

/// CLgen-style OpenCL kernels: loop/array dominated with some float math.
fn clgen_profile() -> Profile {
    Profile {
        functions: (1, 2),
        stmts: (10, 24),
        loop_prob: 0.28,
        nested_loop_prob: 0.4,
        mem_prob: 0.30,
        if_prob: 0.08,
        float_ratio: 0.35,
        ..Profile::balanced()
    }
}

/// OpenCV style: float stencils and matrix-ish loops.
fn opencv_profile() -> Profile {
    Profile {
        functions: (2, 6),
        stmts: (12, 30),
        loop_prob: 0.24,
        nested_loop_prob: 0.45,
        mem_prob: 0.28,
        float_ratio: 0.40,
        ..Profile::balanced()
    }
}

/// POJ-104 student solutions: small, branchy, shallow loops.
fn poj104_profile() -> Profile {
    Profile {
        functions: (1, 3),
        stmts: (8, 20),
        loop_prob: 0.20,
        if_prob: 0.22,
        mem_prob: 0.12,
        call_prob: 0.04,
        float_ratio: 0.06,
        ..Profile::balanced()
    }
}

/// TensorFlow style: float-heavy compute with deep call graphs.
fn tensorflow_profile() -> Profile {
    Profile {
        functions: (5, 12),
        stmts: (12, 32),
        loop_prob: 0.22,
        nested_loop_prob: 0.4,
        mem_prob: 0.25,
        call_prob: 0.14,
        float_ratio: 0.45,
        ..Profile::balanced()
    }
}

/// Csmith: the paper's random C program generator; balanced, runnable.
fn csmith_profile() -> Profile {
    Profile {
        functions: (3, 8),
        stmts: (10, 32),
        switch_prob: 0.06,
        weirdness: 0.10,
        ..Profile::balanced()
    }
}

/// llvm-stress: adversarial IR exercising odd corners; cast- and
/// switch-heavy.
fn llvm_stress_profile() -> Profile {
    Profile {
        functions: (1, 4),
        stmts: (14, 40),
        loop_prob: 0.10,
        switch_prob: 0.14,
        if_prob: 0.18,
        mem_prob: 0.10,
        float_ratio: 0.25,
        weirdness: 0.45,
        ..Profile::balanced()
    }
}

synth_builder!(build_anghabench, "anghabench-v1", anghabench_profile());
synth_builder!(build_github, "github-v0", github_profile());
synth_builder!(build_linux, "linux-v0", linux_profile());
synth_builder!(build_clgen, "clgen-v0", clgen_profile());
synth_builder!(build_opencv, "opencv-v0", opencv_profile());
synth_builder!(build_poj104, "poj104-v1", poj104_profile());
synth_builder!(build_tensorflow, "tensorflow-v0", tensorflow_profile());
synth_builder!(build_csmith, "csmith-v0", csmith_profile());
synth_builder!(build_llvm_stress, "llvm-stress-v0", llvm_stress_profile());

/// The full dataset registry (Table I).
pub fn datasets() -> &'static [DatasetInfo] {
    &[
        DatasetInfo {
            name: "anghabench-v1",
            description:
                "Compilable C functions mined from public repositories (synthetic reproduction)",
            size: DatasetSize::Indexed(1_041_333),
            runnable: true,
            build: build_anghabench,
        },
        DatasetInfo {
            name: "blas-v0",
            description: "Basic linear algebra subprogram kernels",
            size: DatasetSize::Indexed(300),
            runnable: true,
            build: build_blas,
        },
        DatasetInfo {
            name: "cbench-v1",
            description: "The collective benchmark suite: 23 realistic programs",
            size: DatasetSize::Named(CBENCH),
            runnable: true,
            build: build_cbench,
        },
        DatasetInfo {
            name: "chstone-v0",
            description: "High-level-synthesis benchmark programs",
            size: DatasetSize::Named(CHSTONE),
            runnable: true,
            build: build_chstone,
        },
        DatasetInfo {
            name: "clgen-v0",
            description: "Synthesized OpenCL-style kernels",
            size: DatasetSize::Indexed(996),
            runnable: true,
            build: build_clgen,
        },
        DatasetInfo {
            name: "github-v0",
            description: "Open-source C programs (synthetic reproduction)",
            size: DatasetSize::Indexed(49_738),
            runnable: true,
            build: build_github,
        },
        DatasetInfo {
            name: "linux-v0",
            description: "Linux kernel translation units (synthetic reproduction)",
            size: DatasetSize::Indexed(13_894),
            runnable: true,
            build: build_linux,
        },
        DatasetInfo {
            name: "mibench-v1",
            description: "Embedded benchmark suite",
            size: DatasetSize::Indexed(40),
            runnable: true,
            build: build_mibench,
        },
        DatasetInfo {
            name: "npb-v0",
            description: "NAS parallel benchmark kernels",
            size: DatasetSize::Indexed(122),
            runnable: true,
            build: build_npb,
        },
        DatasetInfo {
            name: "opencv-v0",
            description: "Computer-vision library translation units (synthetic reproduction)",
            size: DatasetSize::Indexed(442),
            runnable: true,
            build: build_opencv,
        },
        DatasetInfo {
            name: "poj104-v1",
            description: "Programming-judge student solutions (synthetic reproduction)",
            size: DatasetSize::Indexed(49_816),
            runnable: true,
            build: build_poj104,
        },
        DatasetInfo {
            name: "tensorflow-v0",
            description: "TensorFlow translation units (synthetic reproduction)",
            size: DatasetSize::Indexed(1_985),
            runnable: true,
            build: build_tensorflow,
        },
        DatasetInfo {
            name: "csmith-v0",
            description: "Random program generator with 32-bit seeds",
            size: DatasetSize::Seeded,
            runnable: true,
            build: build_csmith,
        },
        DatasetInfo {
            name: "llvm-stress-v0",
            description: "Adversarial random IR generator with 32-bit seeds",
            size: DatasetSize::Seeded,
            runnable: false,
            build: build_llvm_stress,
        },
    ]
}

/// Looks up a dataset by name.
pub fn dataset(name: &str) -> Option<&'static DatasetInfo> {
    datasets().iter().find(|d| d.name == name)
}

/// Resolves a benchmark URI (`benchmark://<dataset>/<path>`, or the
/// scheme-less `<dataset>/<path>` shorthand) to a module.
///
/// # Errors
/// Returns a [`DatasetError`] for malformed URIs, unknown datasets, or
/// unknown members.
pub fn benchmark(uri: &str) -> Result<Module, DatasetError> {
    let rest = uri.strip_prefix("benchmark://").unwrap_or(uri);
    let (ds_name, path) = rest
        .split_once('/')
        .ok_or_else(|| DatasetError::BadUri(uri.to_string()))?;
    let ds = dataset(ds_name).ok_or_else(|| DatasetError::UnknownDataset(ds_name.to_string()))?;
    ds.benchmark(path)
}

/// Total number of benchmarks across all finite datasets (the paper reports
/// 1,145,499 excluding the seeded generators).
pub fn total_finite_benchmarks() -> u64 {
    datasets().iter().filter_map(|d| d.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    #[test]
    fn registry_matches_table1() {
        assert_eq!(datasets().len(), 14);
        assert_eq!(dataset("cbench-v1").unwrap().len(), Some(23));
        assert_eq!(dataset("chstone-v0").unwrap().len(), Some(12));
        assert_eq!(dataset("mibench-v1").unwrap().len(), Some(40));
        assert_eq!(dataset("npb-v0").unwrap().len(), Some(122));
        assert_eq!(dataset("blas-v0").unwrap().len(), Some(300));
        assert_eq!(dataset("anghabench-v1").unwrap().len(), Some(1_041_333));
        assert!(dataset("csmith-v0").unwrap().is_generator());
        // The paper's text reports 1,145,499 finite benchmarks; summing its own
        // Table I rows gives 1,158,701, which is the figure we match.
        assert_eq!(total_finite_benchmarks(), 1_158_701);
    }

    #[test]
    fn every_cbench_program_builds_and_runs() {
        for name in CBENCH {
            let m = benchmark(&format!("benchmark://cbench-v1/{name}")).unwrap();
            verify_module(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
            run_main(&m, &ExecLimits::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_chstone_program_builds_and_runs() {
        for name in CHSTONE {
            let m = benchmark(&format!("benchmark://chstone-v0/{name}")).unwrap();
            verify_module(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
            run_main(&m, &ExecLimits::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn indexed_families_build_and_verify() {
        for ds in ["mibench-v1", "blas-v0", "npb-v0", "github-v0", "linux-v0"] {
            for i in [0u64, 1, 7] {
                let m = benchmark(&format!("{ds}/{i}")).unwrap();
                verify_module(&m).unwrap_or_else(|e| panic!("{ds}/{i}: {e}"));
            }
        }
    }

    #[test]
    fn csmith_runs_and_is_seed_deterministic() {
        let a = benchmark("benchmark://csmith-v0/12345").unwrap();
        let b = benchmark("benchmark://csmith-v0/12345").unwrap();
        assert_eq!(cg_ir::module_hash(&a), cg_ir::module_hash(&b));
        run_main(&a, &ExecLimits::default()).unwrap();
    }

    #[test]
    fn uri_errors() {
        assert!(matches!(
            benchmark("nonsense"),
            Err(DatasetError::BadUri(_))
        ));
        assert!(matches!(
            benchmark("benchmark://nope-v9/x"),
            Err(DatasetError::UnknownDataset(_))
        ));
        assert!(matches!(
            benchmark("benchmark://cbench-v1/nope"),
            Err(DatasetError::UnknownBenchmark { .. })
        ));
        assert!(matches!(
            benchmark("benchmark://mibench-v1/999"),
            Err(DatasetError::UnknownBenchmark { .. })
        ));
    }

    #[test]
    fn ghostscript_is_much_bigger_than_crc32() {
        // The premise of Figure 6: step costs scale with program size, and
        // cBench spans a wide size range.
        let gs = benchmark("cbench-v1/ghostscript").unwrap();
        let crc = benchmark("cbench-v1/crc32").unwrap();
        assert!(
            gs.inst_count() > 8 * crc.inst_count(),
            "ghostscript {} vs crc32 {}",
            gs.inst_count(),
            crc.inst_count()
        );
    }
}
