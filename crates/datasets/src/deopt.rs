//! The de-optimizer: lowers tidy SSA into `-O0`-style code.
//!
//! CompilerGym's benchmarks are produced by *unoptimized* frontends: every
//! local lives in a stack slot, every use reloads it, φ-nodes do not exist.
//! That headroom is what the whole experimental apparatus measures — `-Oz`
//! reduction factors, autotuner gains over `-Oz`, RL rewards. Our kernel
//! builders emit clean SSA, so dataset construction finishes by running this
//! reg2mem-style lowering: each scalar (`i1`/`i64`/`f64`) value is demoted to
//! an alloca, φ-nodes become stores in predecessors, and every use reloads.
//! `mem2reg` exactly inverts it, just as in a real compiler.

use std::collections::HashMap;

use cg_ir::{BlockId, Function, Inst, Module, Op, Operand, Type, ValueId};

/// Demotes scalar SSA values in every function of `m` to stack slots.
pub fn deoptimize(m: &mut Module) {
    for fid in m.func_ids_vec() {
        deoptimize_function(m.func_mut(fid));
    }
}

/// Demotes scalar SSA values of one function to stack slots.
pub fn deoptimize_function(f: &mut Function) {
    // Types of every value (params + defs).
    let mut types: HashMap<ValueId, Type> = HashMap::new();
    for (v, t) in &f.params {
        types.insert(*v, *t);
    }
    for &bid in f.block_ids() {
        for inst in &f.block(bid).insts {
            if let Some(d) = inst.dest {
                types.insert(d, inst.ty);
            }
        }
    }
    let demotable = |v: ValueId, types: &HashMap<ValueId, Type>| {
        matches!(types.get(&v), Some(Type::I1 | Type::I64 | Type::F64))
    };

    // One alloca slot per demotable value, all in the entry block.
    let mut slots: HashMap<ValueId, ValueId> = HashMap::new();
    let mut entry_prelude: Vec<Inst> = Vec::new();
    let values: Vec<ValueId> = types.keys().copied().collect();
    let mut sorted = values;
    sorted.sort();
    for v in sorted {
        if demotable(v, &types) {
            let slot = f.fresh_value();
            slots.insert(v, slot);
            entry_prelude.push(Inst::new(slot, Type::Ptr, Op::Alloca { slots: 1 }));
        }
    }
    if slots.is_empty() {
        return;
    }
    // Spill parameters immediately.
    for (p, _) in f.params.clone() {
        if let Some(&slot) = slots.get(&p) {
            entry_prelude.push(Inst::new_void(Op::Store {
                ptr: Operand::Value(slot),
                value: Operand::Value(p),
            }));
        }
    }

    for bid in f.block_ids_vec() {
        let mut out: Vec<Inst> = Vec::new();
        let insts = std::mem::take(&mut f.block_mut(bid).insts);
        // φ handling: each φ becomes a load from its slot here, with stores
        // appended to predecessors later.
        let mut phi_stores: Vec<(BlockId, ValueId, Operand)> = Vec::new(); // (pred, slot, value)
        let mut next_value = f.value_bound();
        let mut fresh = || {
            let v = ValueId(next_value);
            next_value += 1;
            v
        };
        // Keep surviving (non-demoted) φs at the very front: φ-nodes must
        // form a block prefix, and demoted φs become ordinary loads.
        let surviving_phis: Vec<Inst> = insts
            .iter()
            .filter(|i| {
                matches!(i.op, Op::Phi(_))
                    && i.dest.map(|d| !slots.contains_key(&d)).unwrap_or(true)
            })
            .cloned()
            .collect();
        out.extend(surviving_phis);
        for mut inst in insts {
            if let (Some(d), Op::Phi(incs)) = (inst.dest, &inst.op) {
                if let Some(&slot) = slots.get(&d) {
                    for (pred, val) in incs {
                        phi_stores.push((*pred, slot, *val));
                    }
                    // The φ itself becomes a load at the top of the block.
                    out.push(Inst::new(
                        d,
                        inst.ty,
                        Op::Load {
                            ptr: Operand::Value(slot),
                        },
                    ));
                    continue;
                }
                continue; // already emitted in the φ prefix
            }
            // Reload each demoted operand just before use.
            inst.op.for_each_operand_mut(|o| {
                if let Some(v) = o.as_value() {
                    if let Some(&slot) = slots.get(&v) {
                        let l = fresh();
                        out.push(Inst::new(
                            l,
                            types[&v],
                            Op::Load {
                                ptr: Operand::Value(slot),
                            },
                        ));
                        *o = Operand::Value(l);
                    }
                }
            });
            let dest = inst.dest;
            let ty = inst.ty;
            out.push(inst);
            // Spill the result right after the def.
            if let Some(d) = dest {
                if let Some(&slot) = slots.get(&d) {
                    let _ = ty;
                    out.push(Inst::new_void(Op::Store {
                        ptr: Operand::Value(slot),
                        value: Operand::Value(d),
                    }));
                }
            }
        }
        // Terminator operands reload too.
        let mut term = f.block(bid).term.clone();
        term.for_each_operand_mut(|o| {
            if let Some(v) = o.as_value() {
                if let Some(&slot) = slots.get(&v) {
                    let l = fresh();
                    out.push(Inst::new(
                        l,
                        types[&v],
                        Op::Load {
                            ptr: Operand::Value(slot),
                        },
                    ));
                    *o = Operand::Value(l);
                }
            }
        });
        f.block_mut(bid).insts = out;
        f.block_mut(bid).term = term;
        f.reserve_values(next_value);

        // Append the φ stores to predecessors (before their terminators).
        for (pred, slot, val) in phi_stores {
            let mut value = val;
            if let Some(v) = val.as_value() {
                if let Some(&vslot) = slots.get(&v) {
                    let l = f.fresh_value();
                    f.block_mut(pred).insts.push(Inst::new(
                        l,
                        types[&v],
                        Op::Load {
                            ptr: Operand::Value(vslot),
                        },
                    ));
                    value = Operand::Value(l);
                }
            }
            f.block_mut(pred).insts.push(Inst::new_void(Op::Store {
                ptr: Operand::Value(slot),
                value,
            }));
        }
    }

    // Install the entry prelude (allocas + parameter spills) at the top.
    let entry = f.entry();
    let mut new_entry = entry_prelude;
    new_entry.append(&mut f.block_mut(entry).insts);
    f.block_mut(entry).insts = new_entry;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    fn sample() -> Module {
        kernels::single("t", |mb| kernels::emit_crc32(mb, "k", 128))
    }

    #[test]
    fn deoptimized_module_verifies_and_runs_identically() {
        let m = sample();
        let reference = run_main(&m, &ExecLimits::default()).unwrap();
        let mut d = m.clone();
        deoptimize(&mut d);
        verify_module(&d).unwrap();
        let out = run_main(&d, &ExecLimits::default()).unwrap();
        assert_eq!(out.ret, reference.ret);
        assert_eq!(out.globals_hash, reference.globals_hash);
    }

    #[test]
    fn deoptimization_adds_substantial_memory_traffic() {
        let m = sample();
        let mut d = m.clone();
        deoptimize(&mut d);
        assert!(
            d.inst_count() as f64 > 2.5 * m.inst_count() as f64,
            "{} -> {}",
            m.inst_count(),
            d.inst_count()
        );
        // No φ of scalar type survives.
        for &fid in d.func_ids() {
            for b in d.func(fid).blocks() {
                for inst in &b.insts {
                    if let Op::Phi(_) = inst.op {
                        assert_eq!(inst.ty, Type::Ptr, "scalar phi survived");
                    }
                }
            }
        }
    }

    #[test]
    fn deopt_is_deterministic() {
        let mut a = sample();
        let mut b = sample();
        deoptimize(&mut a);
        deoptimize(&mut b);
        assert_eq!(cg_ir::module_hash(&a), cg_ir::module_hash(&b));
    }
}
