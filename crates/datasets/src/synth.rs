//! The parametric synthetic program generator.
//!
//! Every dataset family that the paper sources from real-world corpora
//! (AnghaBench, GitHub, Linux, POJ-104, …) or from generators (Csmith,
//! llvm-stress) is reproduced here as a *style profile* fed to one common
//! structured generator. A profile controls program shape — function counts,
//! loop/branch/switch density, float and memory traffic, call structure —
//! so that different families genuinely stress different optimizations,
//! while every (family, index) pair deterministically names one program.
//!
//! Programs from `runnable` profiles are guaranteed to terminate without
//! traps: loop trip counts are compile-time constants, array indices are
//! masked to power-of-two bounds, and integer divisors are clamped to
//! `1..=255`. This is what lets the environment validate semantics by differential
//! execution, as the paper does for cBench and Csmith.

use cg_ir::builder::{FunctionBuilder, ModuleBuilder};
use cg_ir::{BinOp, CastKind, FuncId, GlobalId, InlineHint, Module, Operand, Pred, Type};

use crate::rng::SplitMix64;

/// Style profile controlling the shape of generated programs.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Number of helper functions (min, max).
    pub functions: (u32, u32),
    /// Statements per function body (min, max).
    pub stmts: (u32, u32),
    /// Probability a statement is a counted loop.
    pub loop_prob: f64,
    /// Probability a loop body contains another loop (up to depth 2).
    pub nested_loop_prob: f64,
    /// Probability a statement is an if-diamond.
    pub if_prob: f64,
    /// Probability a statement is a switch.
    pub switch_prob: f64,
    /// Probability a statement is a memory access.
    pub mem_prob: f64,
    /// Probability a statement is a call to an earlier helper.
    pub call_prob: f64,
    /// Fraction of arithmetic done in floating point.
    pub float_ratio: f64,
    /// Number of global arrays (min, max).
    pub global_arrays: (u32, u32),
    /// log2 of global array sizes (min, max).
    pub array_size_pow2: (u32, u32),
    /// Maximum loop trip count.
    pub max_trip: i64,
    /// Whether generated programs are guaranteed trap-free and terminating.
    pub runnable: bool,
    /// Extra weight on casts and odd operations (llvm-stress style).
    pub weirdness: f64,
}

impl Profile {
    /// A balanced default resembling general-purpose C code.
    pub fn balanced() -> Profile {
        Profile {
            functions: (2, 6),
            stmts: (8, 28),
            loop_prob: 0.16,
            nested_loop_prob: 0.25,
            if_prob: 0.14,
            switch_prob: 0.04,
            mem_prob: 0.18,
            call_prob: 0.10,
            float_ratio: 0.15,
            global_arrays: (1, 4),
            array_size_pow2: (4, 8),
            max_trip: 24,
            runnable: true,
            weirdness: 0.05,
        }
    }

    /// Deep counted-loop nests with long bodies: stresses the loop
    /// pipeline (licm, unroll, peel, indvars) and fuel accounting.
    pub fn deep_loops() -> Profile {
        Profile {
            functions: (1, 3),
            stmts: (14, 30),
            loop_prob: 0.45,
            nested_loop_prob: 0.80,
            if_prob: 0.08,
            switch_prob: 0.02,
            mem_prob: 0.12,
            call_prob: 0.04,
            float_ratio: 0.08,
            global_arrays: (1, 3),
            array_size_pow2: (4, 7),
            max_trip: 12,
            runnable: true,
            weirdness: 0.03,
        }
    }

    /// Branch- and switch-heavy control flow producing dense φ webs at join
    /// points: stresses simplifycfg, jump-threading, gvn and sccp.
    pub fn phi_web() -> Profile {
        Profile {
            functions: (2, 4),
            stmts: (16, 36),
            loop_prob: 0.10,
            nested_loop_prob: 0.20,
            if_prob: 0.38,
            switch_prob: 0.14,
            mem_prob: 0.08,
            call_prob: 0.05,
            float_ratio: 0.06,
            global_arrays: (1, 2),
            array_size_pow2: (4, 6),
            max_trip: 16,
            runnable: true,
            weirdness: 0.04,
        }
    }

    /// Heavy memory traffic through a couple of small shared arrays, so
    /// loads and stores alias constantly: stresses gvn load-elimination,
    /// dse, memcpyopt and sroa against may-alias reasoning.
    pub fn aliasing() -> Profile {
        Profile {
            functions: (1, 4),
            stmts: (14, 32),
            loop_prob: 0.18,
            nested_loop_prob: 0.30,
            if_prob: 0.10,
            switch_prob: 0.03,
            mem_prob: 0.48,
            call_prob: 0.06,
            float_ratio: 0.04,
            global_arrays: (1, 2),
            array_size_pow2: (3, 4),
            max_trip: 16,
            runnable: true,
            weirdness: 0.03,
        }
    }

    /// Many small helpers calling each other densely: stresses the inliner
    /// thresholds, deadargelim, globaldce and ipsccp.
    pub fn call_web() -> Profile {
        Profile {
            functions: (6, 12),
            stmts: (6, 16),
            loop_prob: 0.10,
            nested_loop_prob: 0.20,
            if_prob: 0.12,
            switch_prob: 0.04,
            mem_prob: 0.12,
            call_prob: 0.40,
            float_ratio: 0.06,
            global_arrays: (1, 3),
            array_size_pow2: (4, 6),
            max_trip: 12,
            runnable: true,
            weirdness: 0.04,
        }
    }

    /// Looks up a fuzz profile by registry name (see [`FUZZ_PROFILES`]).
    pub fn named(name: &str) -> Option<Profile> {
        match name {
            "balanced" => Some(Profile::balanced()),
            "deep-loops" => Some(Profile::deep_loops()),
            "phi-web" => Some(Profile::phi_web()),
            "aliasing" => Some(Profile::aliasing()),
            "call-web" => Some(Profile::call_web()),
            _ => None,
        }
    }
}

/// Registry of named profiles sampled by the differential fuzzer. Reproducer
/// files record one of these names so a failure regenerates byte-identically
/// from `(profile, seed)` alone.
pub const FUZZ_PROFILES: &[&str] = &["balanced", "deep-loops", "phi-web", "aliasing", "call-web"];

/// Generates a module for `profile` from `seed`, named `name`.
///
/// The module always defines a nullary `main` returning an `i64` checksum;
/// for runnable profiles `main` is guaranteed to terminate without traps.
pub fn generate(profile: &Profile, seed: u64, name: &str) -> Module {
    let mut rng = SplitMix64::new(seed);
    let mut mb = ModuleBuilder::new(name);

    // Globals.
    let n_globals = rng.range_i64(
        profile.global_arrays.0 as i64,
        profile.global_arrays.1 as i64,
    ) as u32;
    let mut globals: Vec<(GlobalId, u32)> = Vec::new();
    for gi in 0..n_globals.max(1) {
        let pow = rng.range_i64(
            profile.array_size_pow2.0 as i64,
            profile.array_size_pow2.1 as i64,
        ) as u32;
        let slots = 1u32 << pow;
        let init: Vec<i64> = (0..slots).map(|_| rng.range_i64(-1000, 1000)).collect();
        let id = mb.add_global(format!("g{gi}"), slots, init);
        globals.push((id, slots - 1));
    }

    let mut gen = Gen {
        prof: profile,
        rng,
        globals,
        funcs: Vec::new(),
        costs: Vec::new(),
        cur_cost: 0,
    };

    // Helper functions.
    let n_funcs = gen
        .rng
        .range_i64(profile.functions.0 as i64, profile.functions.1 as i64) as u32;
    for fi in 0..n_funcs {
        let arity = gen.rng.range_i64(1, 3) as usize;
        gen.cur_cost = 0;
        let fid = gen.emit_function(&mut mb, &format!("f{fi}"), arity);
        let cost = gen.cur_cost;
        gen.funcs.push((fid, arity));
        gen.costs.push(cost.max(1));
    }

    // main: call every helper with deterministic arguments and mix results.
    let mut fb = mb.begin_function("main", &[], Type::I64);
    let mut acc = Operand::const_int(0x9e37);
    let funcs = gen.funcs.clone();
    for (fid, arity) in funcs {
        let args: Vec<Operand> = (0..arity)
            .map(|_| Operand::const_int(gen.rng.range_i64(-64, 64)))
            .collect();
        let r = fb.call(fid, Type::I64, args).expect("helpers return i64");
        acc = fb.bin(BinOp::Xor, acc, r);
        let rotated = fb.bin(BinOp::Shl, acc, Operand::const_int(3));
        acc = fb.bin(BinOp::Add, acc, rotated);
    }
    fb.ret(Some(acc));
    fb.finish();

    mb.finish()
}

struct Gen<'p> {
    prof: &'p Profile,
    rng: SplitMix64,
    globals: Vec<(GlobalId, u32)>,
    funcs: Vec<(FuncId, usize)>,
    /// Estimated dynamic cost of each helper, parallel to `funcs`. Used to
    /// keep generated programs within the interpreter's fuel budget: a call
    /// inside nested loops multiplies its callee's cost by every enclosing
    /// trip count, so the generator refuses calls that would blow the cap.
    costs: Vec<u64>,
    cur_cost: u64,
}

/// Cap on a single function's estimated dynamic instruction count.
const COST_CAP: u64 = 150_000;

/// Values available for use at the current program point.
#[derive(Clone)]
struct Scope {
    ints: Vec<Operand>,
    floats: Vec<Operand>,
}

impl<'p> Gen<'p> {
    fn emit_function(&mut self, mb: &mut ModuleBuilder, name: &str, arity: usize) -> FuncId {
        let params = vec![Type::I64; arity];
        let mut fb = mb.begin_function(name, &params, Type::I64);
        if self.rng.chance(0.2) {
            fb.set_inline_hint(if self.rng.chance(0.5) {
                InlineHint::Always
            } else {
                InlineHint::Never
            });
        }
        let mut scope = Scope {
            ints: (0..arity).map(|i| fb.param(i)).collect(),
            floats: vec![Operand::const_float(1.5), Operand::const_float(0.25)],
        };
        scope
            .ints
            .push(Operand::const_int(self.rng.range_i64(1, 100)));
        let budget =
            self.rng
                .range_i64(self.prof.stmts.0 as i64, self.prof.stmts.1 as i64) as u32;
        self.emit_stmts(&mut fb, &mut scope, budget, 0, 1);
        // Combine a handful of live values into the return.
        let mut r = *self.rng.pick(&scope.ints);
        for _ in 0..2 {
            let other = *self.rng.pick(&scope.ints);
            r = fb.bin(BinOp::Xor, r, other);
        }
        if !scope.floats.is_empty() && self.rng.chance(self.prof.float_ratio) {
            let fsum = *self.rng.pick(&scope.floats);
            let fi = fb.cast(CastKind::FloatToInt, fsum);
            r = fb.bin(BinOp::Add, r, fi);
        }
        fb.ret(Some(r));
        fb.finish()
    }

    /// Emits `budget` statements into the current block of `fb`, extending
    /// `scope` with newly defined values. `depth` bounds structural nesting.
    fn emit_stmts(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        scope: &mut Scope,
        budget: u32,
        depth: u32,
        mult: u64,
    ) {
        let mut remaining = budget;
        while remaining > 0 {
            remaining -= 1;
            self.cur_cost = self.cur_cost.saturating_add(2 * mult);
            let roll = self.rng.f64();
            let p = self.prof;
            if depth < 2 && roll < p.loop_prob {
                let inner = remaining.min(6 + self.rng.below(6) as u32);
                remaining = remaining.saturating_sub(inner);
                self.emit_loop(fb, scope, inner, depth, mult);
            } else if depth < 3 && roll < p.loop_prob + p.if_prob {
                let inner = remaining.min(3 + self.rng.below(4) as u32);
                remaining = remaining.saturating_sub(inner);
                self.emit_if(fb, scope, inner, depth, mult);
            } else if depth < 3 && roll < p.loop_prob + p.if_prob + p.switch_prob {
                self.emit_switch(fb, scope);
            } else if roll < p.loop_prob + p.if_prob + p.switch_prob + p.mem_prob {
                self.emit_memory(fb, scope);
            } else if !self.funcs.is_empty()
                && roll < p.loop_prob + p.if_prob + p.switch_prob + p.mem_prob + p.call_prob
            {
                self.emit_call(fb, scope, mult);
            } else {
                self.emit_arith(fb, scope);
            }
        }
    }

    fn emit_arith(&mut self, fb: &mut FunctionBuilder<'_>, scope: &mut Scope) {
        if self.rng.chance(self.prof.float_ratio) {
            let op = *self
                .rng
                .pick(&[BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv]);
            let a = *self.rng.pick(&scope.floats);
            let b = *self.rng.pick(&scope.floats);
            let v = fb.bin(op, a, b);
            scope.floats.push(v);
            if self.rng.chance(0.3) {
                let i = fb.cast(CastKind::FloatToInt, v);
                // Clamp casted floats to a small range so they stay usable
                // as shift amounts and indices.
                let m = fb.bin(BinOp::And, i, Operand::const_int(0xffff));
                scope.ints.push(m);
            }
            return;
        }
        if self.rng.chance(self.prof.weirdness) {
            // Odd ops: casts round-trips, not/neg chains, bool arithmetic.
            let a = *self.rng.pick(&scope.ints);
            let v = match self.rng.below(4) {
                0 => {
                    let f = fb.cast(CastKind::IntToFloat, a);
                    scope.floats.push(f);
                    fb.cast(CastKind::FloatToInt, f)
                }
                1 => fb.not(a, Type::I64),
                2 => fb.neg(a),
                _ => {
                    let b = *self.rng.pick(&scope.ints);
                    let c = fb.icmp(Pred::Le, a, b);
                    fb.cast(CastKind::BoolToInt, c)
                }
            };
            scope.ints.push(v);
            return;
        }
        let choices = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::LShr,
            BinOp::Div,
            BinOp::Rem,
        ];
        let op = *self.rng.pick(&choices);
        let a = *self.rng.pick(&scope.ints);
        let b = *self.rng.pick(&scope.ints);
        let v = match op {
            BinOp::Div | BinOp::Rem => {
                // Clamp divisor into 1..=255: trap-free and overflow-free.
                let masked = fb.bin(BinOp::And, b, Operand::const_int(0xff));
                let nonzero = fb.bin(BinOp::Or, masked, Operand::const_int(1));
                fb.bin(op, a, nonzero)
            }
            BinOp::Shl | BinOp::AShr | BinOp::LShr => {
                let amt = Operand::const_int(self.rng.range_i64(1, 13));
                fb.bin(op, a, amt)
            }
            _ => fb.bin(op, a, b),
        };
        scope.ints.push(v);
        // Occasionally produce a comparison + select idiom (min/max/abs).
        if self.rng.chance(0.15) {
            let x = *self.rng.pick(&scope.ints);
            let y = *self.rng.pick(&scope.ints);
            let c = fb.icmp(
                *self
                    .rng
                    .pick(&[Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge, Pred::Eq, Pred::Ne]),
                x,
                y,
            );
            let s = fb.select(Type::I64, c, x, y);
            scope.ints.push(s);
        }
    }

    fn emit_memory(&mut self, fb: &mut FunctionBuilder<'_>, scope: &mut Scope) {
        let (gid, mask) = *self.rng.pick(&self.globals);
        let base = Operand::Global(gid);
        let idx_raw = *self.rng.pick(&scope.ints);
        let idx = fb.bin(BinOp::And, idx_raw, Operand::const_int(mask as i64));
        let ptr = fb.gep(base, idx);
        if self.rng.chance(0.55) {
            let v = fb.load(Type::I64, ptr);
            scope.ints.push(v);
        } else {
            let v = *self.rng.pick(&scope.ints);
            fb.store(ptr, v);
        }
    }

    fn emit_call(&mut self, fb: &mut FunctionBuilder<'_>, scope: &mut Scope, mult: u64) {
        // Only call helpers whose estimated cost keeps this function under
        // the cap, given the enclosing loop multiplier.
        let headroom = COST_CAP.saturating_sub(self.cur_cost);
        let affordable: Vec<(FuncId, usize, u64)> = self
            .funcs
            .iter()
            .zip(&self.costs)
            .filter(|(_, c)| (**c).saturating_mul(mult) <= headroom)
            .map(|((f, a), c)| (*f, *a, *c))
            .collect();
        if affordable.is_empty() {
            self.emit_arith(fb, scope);
            return;
        }
        let (fid, arity, cost) = *self.rng.pick(&affordable);
        self.cur_cost = self.cur_cost.saturating_add(cost.saturating_mul(mult));
        let args: Vec<Operand> = (0..arity).map(|_| *self.rng.pick(&scope.ints)).collect();
        let r = fb.call(fid, Type::I64, args).expect("helpers return i64");
        scope.ints.push(r);
    }

    fn emit_if(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        scope: &mut Scope,
        budget: u32,
        depth: u32,
        mult: u64,
    ) {
        let a = *self.rng.pick(&scope.ints);
        let b = *self.rng.pick(&scope.ints);
        let pred = *self
            .rng
            .pick(&[Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge, Pred::Eq, Pred::Ne]);
        let cond = fb.icmp(pred, a, b);
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        let join = fb.new_block();
        fb.cond_br(cond, then_b, else_b);

        // Then arm.
        fb.switch_to(then_b);
        let mut then_scope = scope.clone();
        self.emit_stmts(fb, &mut then_scope, budget / 2, depth + 1, mult);
        let tv = *self.rng.pick(&then_scope.ints);
        let then_end = fb.current_block();
        fb.br(join);

        // Else arm.
        fb.switch_to(else_b);
        let mut else_scope = scope.clone();
        self.emit_stmts(fb, &mut else_scope, budget - budget / 2, depth + 1, mult);
        let ev = *self.rng.pick(&else_scope.ints);
        let else_end = fb.current_block();
        fb.br(join);

        fb.switch_to(join);
        let merged = fb.phi(Type::I64, vec![(then_end, tv), (else_end, ev)]);
        scope.ints.push(merged);
    }

    fn emit_loop(
        &mut self,
        fb: &mut FunctionBuilder<'_>,
        scope: &mut Scope,
        budget: u32,
        depth: u32,
        mult: u64,
    ) {
        let trip = self.rng.range_i64(2, self.prof.max_trip.max(2));
        let inner_mult = mult.saturating_mul(trip as u64);
        let preheader = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);

        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(preheader, Operand::const_int(0))]);
        let init = *self.rng.pick(&scope.ints);
        let acc = fb.phi(Type::I64, vec![(preheader, init)]);
        let cond = fb.icmp(Pred::Lt, i, Operand::const_int(trip));
        fb.cond_br(cond, body, exit);

        fb.switch_to(body);
        let mut body_scope = scope.clone();
        body_scope.ints.push(i);
        body_scope.ints.push(acc);
        let nested = depth < 1 && self.rng.chance(self.prof.nested_loop_prob);
        let body_budget = if nested { budget / 2 } else { budget };
        self.emit_stmts(fb, &mut body_scope, body_budget, depth + 1, inner_mult);
        if nested {
            self.emit_loop(
                fb,
                &mut body_scope,
                budget - budget / 2,
                depth + 1,
                inner_mult,
            );
        }
        // Accumulate and advance.
        let mixed = *self.rng.pick(&body_scope.ints);
        let op = *self.rng.pick(&[BinOp::Add, BinOp::Xor, BinOp::Sub]);
        let acc_next = fb.bin(op, acc, mixed);
        let i_next = fb.bin(BinOp::Add, i, Operand::const_int(1));
        let latch = fb.current_block();
        fb.add_phi_incoming(i, latch, i_next);
        fb.add_phi_incoming(acc, latch, acc_next);
        fb.br(header);

        fb.switch_to(exit);
        scope.ints.push(acc);
    }

    fn emit_switch(&mut self, fb: &mut FunctionBuilder<'_>, scope: &mut Scope) {
        let v = *self.rng.pick(&scope.ints);
        let n_cases = self.rng.range_i64(2, 4);
        let scrut = fb.bin(BinOp::And, v, Operand::const_int(7));
        let join = fb.new_block();
        let default = fb.new_block();
        let mut cases = Vec::new();
        let mut arms = Vec::new();
        for c in 0..n_cases {
            let b = fb.new_block();
            cases.push((c, b));
            arms.push(b);
        }
        fb.switch(scrut, cases, default);
        let mut incomings = Vec::new();
        for (c, b) in arms.iter().enumerate() {
            fb.switch_to(*b);
            let a = *self.rng.pick(&scope.ints);
            let x = fb.bin(BinOp::Add, a, Operand::const_int((c as i64 + 1) * 17));
            fb.br(join);
            incomings.push((*b, x));
        }
        fb.switch_to(default);
        let d = *self.rng.pick(&scope.ints);
        fb.br(join);
        incomings.push((default, d));
        fb.switch_to(join);
        let merged = fb.phi(Type::I64, incomings);
        scope.ints.push(merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    #[test]
    fn generated_programs_verify() {
        let p = Profile::balanced();
        for seed in 0..40 {
            let m = generate(&p, seed, "t");
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_programs_are_deterministic() {
        let p = Profile::balanced();
        let a = generate(&p, 7, "t");
        let b = generate(&p, 7, "t");
        assert_eq!(cg_ir::module_hash(&a), cg_ir::module_hash(&b));
        let c = generate(&p, 8, "t");
        assert_ne!(cg_ir::module_hash(&a), cg_ir::module_hash(&c));
    }

    #[test]
    fn runnable_programs_run_trap_free() {
        let p = Profile::balanced();
        for seed in 0..25 {
            let m = generate(&p, seed, "t");
            let out = run_main(&m, &ExecLimits::default())
                .unwrap_or_else(|e| panic!("seed {seed} trapped: {e}"));
            assert!(out.dyn_insts > 0);
        }
    }

    #[test]
    fn runnable_programs_have_varied_outputs() {
        // Guards against the generator collapsing to trivial constant
        // programs: across seeds the checksums should vary.
        let p = Profile::balanced();
        let outs: std::collections::HashSet<i64> = (0..20)
            .map(|seed| {
                let m = generate(&p, seed, "t");
                run_main(&m, &ExecLimits::default())
                    .unwrap()
                    .ret
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert!(outs.len() > 15, "only {} distinct outputs", outs.len());
    }
}
