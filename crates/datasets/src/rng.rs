//! A tiny deterministic PRNG for program generation.
//!
//! Benchmark generation must be bit-reproducible across platforms, library
//! versions and time — a benchmark URI is a *name* for a program, forever.
//! We therefore use our own SplitMix64 rather than an external generator
//! whose stream might change between releases.

/// SplitMix64: fast, high-quality 64-bit PRNG with a 64-bit state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded rejection-free mapping (slightly biased for
        // enormous n, irrelevant at our ranges and fully deterministic).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo.wrapping_add(self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `p` (0.0..=1.0).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Picks an index according to integer weights.
    ///
    /// # Panics
    /// Panics if weights sum to zero.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|w| *w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut x = self.below(total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w as u64 {
                return i;
            }
            x -= *w as u64;
        }
        weights.len() - 1
    }
}

/// Derives a stream seed from a dataset name and element index, so that
/// every (dataset, index) pair names a unique deterministic program.
pub fn derive_seed(dataset: &str, index: u64) -> u64 {
    let mut h = cg_ir::fnv1a(dataset.as_bytes());
    h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // One extra mix round.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn derive_seed_distinguishes_inputs() {
        assert_ne!(derive_seed("a", 0), derive_seed("a", 1));
        assert_ne!(derive_seed("a", 0), derive_seed("b", 0));
    }

    #[test]
    fn pick_weighted_is_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let i = r.pick_weighted(&[1, 0, 5]);
            assert!(i == 0 || i == 2);
        }
    }
}
