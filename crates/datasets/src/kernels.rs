//! Hand-written benchmark kernels.
//!
//! The cBench, CHStone, MiBench and BLAS datasets are small suites of *real*
//! programs; reproducing their role in the paper's experiments (Table IV,
//! Table V, Figure 6) requires benchmarks with genuine, distinct structure —
//! table-driven CRC loops, sort networks, graph relaxation, Feistel rounds,
//! stencils, bytecode interpreters — not just random arithmetic. This module
//! builds those kernels directly in IR. Every kernel is runnable: `main`
//! deterministically initializes its input globals, executes the kernel, and
//! returns a checksum.

use cg_ir::builder::{FunctionBuilder, ModuleBuilder};
use cg_ir::{BinOp, CastKind, FuncId, Module, Operand, Pred, Type};

/// Deterministic pseudo-random fill for input arrays (LCG, fixed multiplier).
fn fill(seed: u64, n: usize, modulus: i64) -> Vec<i64> {
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as i64).rem_euclid(modulus.max(1))
        })
        .collect()
}

/// Builds `for i in 0..trip { accs = body(i, accs) }` and returns the final
/// accumulator values (valid after the loop). `trip` must be a value or
/// constant available before the loop.
pub fn counted_loop(
    fb: &mut FunctionBuilder<'_>,
    trip: Operand,
    inits: &[(Type, Operand)],
    body: impl FnOnce(&mut FunctionBuilder<'_>, Operand, &[Operand]) -> Vec<Operand>,
) -> Vec<Operand> {
    let preheader = fb.current_block();
    let header = fb.new_block();
    let body_b = fb.new_block();
    let exit = fb.new_block();
    fb.br(header);

    fb.switch_to(header);
    let i = fb.phi(Type::I64, vec![(preheader, Operand::const_int(0))]);
    let accs: Vec<Operand> = inits
        .iter()
        .map(|(ty, init)| fb.phi(*ty, vec![(preheader, *init)]))
        .collect();
    let cond = fb.icmp(Pred::Lt, i, trip);
    fb.cond_br(cond, body_b, exit);

    fb.switch_to(body_b);
    let nexts = body(fb, i, &accs);
    assert_eq!(
        nexts.len(),
        accs.len(),
        "body must return one value per accumulator"
    );
    let i_next = fb.bin(BinOp::Add, i, Operand::const_int(1));
    let latch = fb.current_block();
    fb.add_phi_incoming(i, latch, i_next);
    for (acc, next) in accs.iter().zip(&nexts) {
        fb.add_phi_incoming(*acc, latch, *next);
    }
    fb.br(header);

    fb.switch_to(exit);
    accs
}

/// A boxed kernel-emitter closure, as accepted by [`compose`].
pub type KernelEmit<'a> = Box<dyn FnOnce(&mut ModuleBuilder) -> FuncId + 'a>;

/// Wraps one emitted kernel function into a standalone runnable module:
/// `main` calls the kernel and returns its checksum.
pub fn single(name: &str, emit: impl FnOnce(&mut ModuleBuilder) -> FuncId) -> Module {
    compose(name, vec![Box::new(emit)])
}

/// Builds a module from several kernel functions; `main` calls each in order
/// and mixes the checksums. Used for the larger cBench programs
/// (`ghostscript`, `jpeg`, `lame`, …), which in reality are multi-module
/// applications rather than single kernels.
pub fn compose(name: &str, emits: Vec<KernelEmit<'_>>) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let fids: Vec<FuncId> = emits.into_iter().map(|e| e(&mut mb)).collect();
    let mut fb = mb.begin_function("main", &[], Type::I64);
    let mut acc = Operand::const_int(0);
    for fid in fids {
        let r = fb.call(fid, Type::I64, vec![]).expect("kernels return i64");
        let rot = fb.bin(BinOp::Shl, acc, Operand::const_int(1));
        acc = fb.bin(BinOp::Xor, rot, r);
    }
    fb.ret(Some(acc));
    fb.finish();
    mb.finish()
}

/// Table-driven CRC-32 over `len` input words (the cBench `crc32` program).
pub fn emit_crc32(mb: &mut ModuleBuilder, fname: &str, len: u32) -> FuncId {
    // Build the real CRC-32 table (polynomial 0xEDB88320).
    let mut table = Vec::with_capacity(256);
    for n in 0u64..256 {
        let mut c = n;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB88320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        table.push(c as i64);
    }
    let tab = mb.add_const_global(format!("{fname}_crc_table"), 256, table);
    let data = mb.add_global(
        format!("{fname}_data"),
        len,
        fill(0xc3c3, len as usize, 256),
    );

    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let trip = Operand::const_int(len as i64);
    let out = counted_loop(
        &mut fb,
        trip,
        &[(Type::I64, Operand::const_int(0xFFFF_FFFF))],
        |fb, i, accs| {
            let crc = accs[0];
            let p = fb.gep(Operand::Global(data), i);
            let byte = fb.load(Type::I64, p);
            let x = fb.bin(BinOp::Xor, crc, byte);
            let idx = fb.bin(BinOp::And, x, Operand::const_int(0xFF));
            let tp = fb.gep(Operand::Global(tab), idx);
            let t = fb.load(Type::I64, tp);
            let shifted = fb.bin(BinOp::LShr, crc, Operand::const_int(8));
            let next = fb.bin(BinOp::Xor, shifted, t);
            vec![next]
        },
    );
    let result = fb.bin(BinOp::Xor, out[0], Operand::const_int(0xFFFF_FFFF));
    fb.ret(Some(result));
    fb.finish()
}

/// In-place insertion sort over `n` elements, then a verification checksum
/// (stands in for cBench `qsort`: a comparison-sort kernel dominated by a
/// data-dependent inner loop with memory traffic).
pub fn emit_sort_kernel(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let arr = mb.add_global(format!("{fname}_arr"), n, fill(0x50f7, n as usize, 10_000));

    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let base = Operand::Global(arr);
    let trip = Operand::const_int(n as i64);
    // for i in 0..n: j = i; while j>0 && a[j-1] > a[j]: swap; j -= 1
    counted_loop(&mut fb, trip, &[], |fb, i, _| {
        // Inner while loop as a manually built CFG.
        let pre = fb.current_block();
        let header = fb.new_block();
        let check = fb.new_block();
        let swap_b = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);

        fb.switch_to(header);
        let j = fb.phi(Type::I64, vec![(pre, i)]);
        let positive = fb.icmp(Pred::Gt, j, Operand::const_int(0));
        fb.cond_br(positive, check, exit);

        fb.switch_to(check);
        let jm1 = fb.bin(BinOp::Sub, j, Operand::const_int(1));
        let pj = fb.gep(base, j);
        let pjm1 = fb.gep(base, jm1);
        let vj = fb.load(Type::I64, pj);
        let vjm1 = fb.load(Type::I64, pjm1);
        let out_of_order = fb.icmp(Pred::Gt, vjm1, vj);
        fb.cond_br(out_of_order, swap_b, exit);

        fb.switch_to(swap_b);
        fb.store(pj, vjm1);
        fb.store(pjm1, vj);
        fb.add_phi_incoming(j, swap_b, jm1);
        fb.br(header);

        fb.switch_to(exit);
        vec![]
    });
    // Checksum: sum of a[i] * i.
    let sum = counted_loop(
        &mut fb,
        trip,
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, accs| {
            let p = fb.gep(base, i);
            let v = fb.load(Type::I64, p);
            let w = fb.bin(BinOp::Mul, v, i);
            vec![fb.bin(BinOp::Add, accs[0], w)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// Dijkstra-style all-pairs relaxation over an `n`×`n` adjacency matrix
/// (Floyd–Warshall triple loop; the memory/branch mix of cBench `dijkstra`).
pub fn emit_dijkstra(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let slots = n * n;
    let mut init = fill(0xd1d1, slots as usize, 100);
    // Large "infinity" for a fraction of edges.
    for (i, v) in init.iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 1_000_000;
        }
    }
    let adj = mb.add_global(format!("{fname}_adj"), slots, init);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let base = Operand::Global(adj);
    let nn = Operand::const_int(n as i64);
    counted_loop(&mut fb, nn, &[], |fb, k, _| {
        let kn = fb.bin(BinOp::Mul, k, nn);
        counted_loop(fb, nn, &[], |fb, i, _| {
            let in_ = fb.bin(BinOp::Mul, i, nn);
            let ik_p = fb.bin(BinOp::Add, in_, k);
            let pik = fb.gep(base, ik_p);
            let dik = fb.load(Type::I64, pik);
            counted_loop(fb, nn, &[], |fb, j, _| {
                let kj_p = fb.bin(BinOp::Add, kn, j);
                let pkj = fb.gep(base, kj_p);
                let dkj = fb.load(Type::I64, pkj);
                let ij_p = fb.bin(BinOp::Add, in_, j);
                let pij = fb.gep(base, ij_p);
                let dij = fb.load(Type::I64, pij);
                let via = fb.bin(BinOp::Add, dik, dkj);
                let better = fb.icmp(Pred::Lt, via, dij);
                let best = fb.select(Type::I64, better, via, dij);
                fb.store(pij, best);
                vec![]
            });
            vec![]
        });
        vec![]
    });
    let sum = counted_loop(
        &mut fb,
        Operand::const_int(slots as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, accs| {
            let p = fb.gep(base, i);
            let v = fb.load(Type::I64, p);
            vec![fb.bin(BinOp::Add, accs[0], v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// SHA-like mixing rounds: rotate/xor/add chains over a message schedule
/// (cBench `sha`, MiBench `sha`).
pub fn emit_sha_mix(mb: &mut ModuleBuilder, fname: &str, blocks: u32) -> FuncId {
    let msg = mb.add_global(
        format!("{fname}_msg"),
        blocks * 16,
        fill(0x5a5a, (blocks * 16) as usize, 1 << 30),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let base = Operand::Global(msg);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(blocks as i64),
        &[
            (Type::I64, Operand::const_int(0x6745_2301)),
            (Type::I64, Operand::const_int(0xEFCD_AB89)),
            (Type::I64, Operand::const_int(0x98BA_DCFE)),
        ],
        |fb, blk, accs| {
            let off = fb.bin(BinOp::Mul, blk, Operand::const_int(16));

            counted_loop(
                fb,
                Operand::const_int(16),
                &[
                    (Type::I64, accs[0]),
                    (Type::I64, accs[1]),
                    (Type::I64, accs[2]),
                ],
                |fb, t, st| {
                    let (a, b, c) = (st[0], st[1], st[2]);
                    let idx = fb.bin(BinOp::Add, off, t);
                    let p = fb.gep(base, idx);
                    let w = fb.load(Type::I64, p);
                    // f = (b & c) | (~b & a)
                    let bc = fb.bin(BinOp::And, b, c);
                    let nb = fb.not(b, Type::I64);
                    let nba = fb.bin(BinOp::And, nb, a);
                    let f = fb.bin(BinOp::Or, bc, nba);
                    // rotl5(a) approximated with shl/lshr/or.
                    let hi = fb.bin(BinOp::Shl, a, Operand::const_int(5));
                    let lo = fb.bin(BinOp::LShr, a, Operand::const_int(59));
                    let rot = fb.bin(BinOp::Or, hi, lo);
                    let s1 = fb.bin(BinOp::Add, rot, f);
                    let s2 = fb.bin(BinOp::Add, s1, w);
                    let a2 = fb.bin(BinOp::Add, s2, Operand::const_int(0x5A82_7999));
                    vec![a2, a, b]
                },
            )
        },
    );
    let x = fb.bin(BinOp::Xor, out[0], out[1]);
    let y = fb.bin(BinOp::Xor, x, out[2]);
    fb.ret(Some(y));
    fb.finish()
}

/// FIR filter: float multiply-accumulate over a sliding window (MiBench
/// `fft`-adjacent float kernel; also used for BLAS-style dot products).
pub fn emit_fir(mb: &mut ModuleBuilder, fname: &str, len: u32, taps: u32) -> FuncId {
    let signal = mb.add_global(
        format!("{fname}_signal"),
        len,
        fill(0xf1f1, len as usize, 1000),
    );
    let coeff = mb.add_const_global(
        format!("{fname}_coeff"),
        taps,
        (0..taps)
            .map(|i| ((i as f64 * 0.37).sin() * 100.0) as i64)
            .collect(),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let sig = Operand::Global(signal);
    let co = Operand::Global(coeff);
    let n_out = (len - taps) as i64;
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n_out),
        &[(Type::F64, Operand::const_float(0.0))],
        |fb, i, accs| {
            let inner = counted_loop(
                fb,
                Operand::const_int(taps as i64),
                &[(Type::F64, Operand::const_float(0.0))],
                |fb, t, st| {
                    let idx = fb.bin(BinOp::Add, i, t);
                    let sp = fb.gep(sig, idx);
                    let sv = fb.load(Type::I64, sp);
                    let sf = fb.cast(CastKind::IntToFloat, sv);
                    let cp = fb.gep(co, t);
                    let cv = fb.load(Type::I64, cp);
                    let cf = fb.cast(CastKind::IntToFloat, cv);
                    let prod = fb.bin(BinOp::FMul, sf, cf);
                    vec![fb.bin(BinOp::FAdd, st[0], prod)]
                },
            );
            vec![fb.bin(BinOp::FAdd, accs[0], inner[0])]
        },
    );
    let as_int = fb.cast(CastKind::FloatToInt, out[0]);
    fb.ret(Some(as_int));
    fb.finish()
}

/// Dense matrix multiply C = A·B over `n`×`n` integer matrices (BLAS `gemm`,
/// NPB-style kernel).
pub fn emit_matmul(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let a = mb.add_const_global(format!("{fname}_A"), n * n, fill(1, (n * n) as usize, 100));
    let b = mb.add_const_global(format!("{fname}_B"), n * n, fill(2, (n * n) as usize, 100));
    let c = mb.add_global(format!("{fname}_C"), n * n, vec![0; (n * n) as usize]);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let nn = Operand::const_int(n as i64);
    let (pa, pb, pc) = (Operand::Global(a), Operand::Global(b), Operand::Global(c));
    counted_loop(&mut fb, nn, &[], |fb, i, _| {
        let irow = fb.bin(BinOp::Mul, i, nn);
        counted_loop(fb, nn, &[], |fb, j, _| {
            let acc = counted_loop(
                fb,
                nn,
                &[(Type::I64, Operand::const_int(0))],
                |fb, k, st| {
                    let aik_i = fb.bin(BinOp::Add, irow, k);
                    let ap = fb.gep(pa, aik_i);
                    let av = fb.load(Type::I64, ap);
                    let krow = fb.bin(BinOp::Mul, k, nn);
                    let bkj_i = fb.bin(BinOp::Add, krow, j);
                    let bp = fb.gep(pb, bkj_i);
                    let bv = fb.load(Type::I64, bp);
                    let prod = fb.bin(BinOp::Mul, av, bv);
                    vec![fb.bin(BinOp::Add, st[0], prod)]
                },
            );
            let cij_i = fb.bin(BinOp::Add, irow, j);
            let cp = fb.gep(pc, cij_i);
            fb.store(cp, acc[0]);
            vec![]
        });
        vec![]
    });
    let sum = counted_loop(
        &mut fb,
        Operand::const_int((n * n) as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(pc, i);
            let v = fb.load(Type::I64, p);
            vec![fb.bin(BinOp::Xor, st[0], v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// Bit population counts by three methods (cBench/MiBench `bitcount`).
pub fn emit_bitcount(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let data = mb.add_global(
        format!("{fname}_data"),
        n,
        fill(0xb17c, n as usize, i64::MAX),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let base = Operand::Global(data);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, accs| {
            let p = fb.gep(base, i);
            let v = fb.load(Type::I64, p);
            // Method 1: Kernighan loop — while (x) { x &= x-1; c += 1 }.
            let pre = fb.current_block();
            let header = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.br(header);
            fb.switch_to(header);
            let x = fb.phi(Type::I64, vec![(pre, v)]);
            let cnt = fb.phi(Type::I64, vec![(pre, Operand::const_int(0))]);
            let nz = fb.icmp(Pred::Ne, x, Operand::const_int(0));
            fb.cond_br(nz, body, exit);
            fb.switch_to(body);
            let xm1 = fb.bin(BinOp::Sub, x, Operand::const_int(1));
            let x2 = fb.bin(BinOp::And, x, xm1);
            let c2 = fb.bin(BinOp::Add, cnt, Operand::const_int(1));
            fb.add_phi_incoming(x, body, x2);
            fb.add_phi_incoming(cnt, body, c2);
            fb.br(header);
            fb.switch_to(exit);
            // Method 2: nibble table via shifts (4 unrolled steps).
            let mut nib_sum = Operand::const_int(0);
            for s in [0i64, 4, 8, 12] {
                let sh = fb.bin(BinOp::LShr, v, Operand::const_int(s));
                let nib = fb.bin(BinOp::And, sh, Operand::const_int(0xF));
                nib_sum = fb.bin(BinOp::Add, nib_sum, nib);
            }
            let combined = fb.bin(BinOp::Add, cnt, nib_sum);
            vec![fb.bin(BinOp::Add, accs[0], combined)]
        },
    );
    fb.ret(Some(out[0]));
    fb.finish()
}

/// Naive substring search over integer "strings" (cBench `stringsearch`).
pub fn emit_stringsearch(
    mb: &mut ModuleBuilder,
    fname: &str,
    hay_len: u32,
    needle_len: u32,
) -> FuncId {
    let hay = mb.add_const_global(
        format!("{fname}_hay"),
        hay_len,
        fill(0x4a11, hay_len as usize, 16),
    );
    // Take the needle from inside the haystack so matches exist.
    let hv = fill(0x4a11, hay_len as usize, 16);
    let start = (hay_len / 3) as usize;
    let needle = mb.add_const_global(
        format!("{fname}_needle"),
        needle_len,
        hv[start..start + needle_len as usize].to_vec(),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (ph, pn) = (Operand::Global(hay), Operand::Global(needle));
    let outer = (hay_len - needle_len) as i64;
    let out = counted_loop(
        &mut fb,
        Operand::const_int(outer),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, accs| {
            let inner = counted_loop(
                fb,
                Operand::const_int(needle_len as i64),
                &[(Type::I64, Operand::const_int(1))],
                |fb, j, st| {
                    let hij = fb.bin(BinOp::Add, i, j);
                    let hp = fb.gep(ph, hij);
                    let hvv = fb.load(Type::I64, hp);
                    let np = fb.gep(pn, j);
                    let nv = fb.load(Type::I64, np);
                    let same = fb.icmp(Pred::Eq, hvv, nv);
                    let same_i = fb.cast(CastKind::BoolToInt, same);
                    vec![fb.bin(BinOp::And, st[0], same_i)]
                },
            );
            vec![fb.bin(BinOp::Add, accs[0], inner[0])]
        },
    );
    fb.ret(Some(out[0]));
    fb.finish()
}

/// 2D 3×3 smoothing stencil over a `w`×`h` image (cBench `susan`).
pub fn emit_stencil2d(mb: &mut ModuleBuilder, fname: &str, w: u32, h: u32) -> FuncId {
    let img = mb.add_global(
        format!("{fname}_img"),
        w * h,
        fill(0x1a6e, (w * h) as usize, 256),
    );
    let out_g = mb.add_global(format!("{fname}_out"), w * h, vec![0; (w * h) as usize]);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pi, po) = (Operand::Global(img), Operand::Global(out_g));
    let wi = Operand::const_int(w as i64);
    counted_loop(
        &mut fb,
        Operand::const_int((h - 2) as i64),
        &[],
        |fb, y0, _| {
            let y = fb.bin(BinOp::Add, y0, Operand::const_int(1));
            counted_loop(fb, Operand::const_int((w - 2) as i64), &[], |fb, x0, _| {
                let x = fb.bin(BinOp::Add, x0, Operand::const_int(1));
                let mut sum = Operand::const_int(0);
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let yy = fb.bin(BinOp::Add, y, Operand::const_int(dy));
                        let row = fb.bin(BinOp::Mul, yy, wi);
                        let xx = fb.bin(BinOp::Add, x, Operand::const_int(dx));
                        let idx = fb.bin(BinOp::Add, row, xx);
                        let p = fb.gep(pi, idx);
                        let v = fb.load(Type::I64, p);
                        sum = fb.bin(BinOp::Add, sum, v);
                    }
                }
                let avg = fb.bin(BinOp::Div, sum, Operand::const_int(9));
                let row = fb.bin(BinOp::Mul, y, wi);
                let idx = fb.bin(BinOp::Add, row, x);
                let p = fb.gep(po, idx);
                fb.store(p, avg);
                vec![]
            });
            vec![]
        },
    );
    let sum = counted_loop(
        &mut fb,
        Operand::const_int((w * h) as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(po, i);
            let v = fb.load(Type::I64, p);
            vec![fb.bin(BinOp::Add, st[0], v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// ADPCM encode/decode: step-size adaptation with clamping selects
/// (cBench `adpcm_c` / `adpcm_d`).
pub fn emit_adpcm(mb: &mut ModuleBuilder, fname: &str, n: u32, encode: bool) -> FuncId {
    let data = mb.add_global(format!("{fname}_pcm"), n, fill(0xadcc, n as usize, 65536));
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let base = Operand::Global(data);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n as i64),
        &[
            (Type::I64, Operand::const_int(0)), // predicted
            (Type::I64, Operand::const_int(7)), // step
            (Type::I64, Operand::const_int(0)), // checksum
        ],
        |fb, i, st| {
            let (pred, step, sum) = (st[0], st[1], st[2]);
            let p = fb.gep(base, i);
            let sample = fb.load(Type::I64, p);
            let diff = if encode {
                fb.bin(BinOp::Sub, sample, pred)
            } else {
                fb.bin(BinOp::Add, sample, pred)
            };
            // delta = clamp(diff / step, -8, 7)
            let q = fb.bin(BinOp::Div, diff, step);
            let lo = Operand::const_int(-8);
            let hi = Operand::const_int(7);
            let too_lo = fb.icmp(Pred::Lt, q, lo);
            let c1 = fb.select(Type::I64, too_lo, lo, q);
            let too_hi = fb.icmp(Pred::Gt, c1, hi);
            let delta = fb.select(Type::I64, too_hi, hi, c1);
            // predicted += delta * step
            let dstep = fb.bin(BinOp::Mul, delta, step);
            let pred2 = fb.bin(BinOp::Add, pred, dstep);
            // step adaptation: bigger deltas grow the step.
            let neg = fb.icmp(Pred::Lt, delta, Operand::const_int(0));
            let negated = fb.neg(delta);
            let mag0 = fb.select(Type::I64, neg, negated, delta);
            let grow = fb.icmp(Pred::Gt, mag0, Operand::const_int(4));
            let stepg = fb.bin(BinOp::Mul, step, Operand::const_int(2));
            let steps = fb.bin(BinOp::Div, step, Operand::const_int(2));
            let step1 = fb.select(Type::I64, grow, stepg, steps);
            // keep step >= 1 and <= 2048
            let small = fb.icmp(Pred::Lt, step1, Operand::const_int(1));
            let step2 = fb.select(Type::I64, small, Operand::const_int(1), step1);
            let big = fb.icmp(Pred::Gt, step2, Operand::const_int(2048));
            let step3 = fb.select(Type::I64, big, Operand::const_int(2048), step2);
            let sum2 = fb.bin(BinOp::Add, sum, pred2);
            vec![pred2, step3, sum2]
        },
    );
    fb.ret(Some(out[2]));
    fb.finish()
}

/// Feistel cipher rounds with S-box lookups (cBench `blowfish_*`,
/// `rijndael_*`; `decrypt` reverses round-key order).
pub fn emit_feistel(
    mb: &mut ModuleBuilder,
    fname: &str,
    n_blocks: u32,
    rounds: u32,
    decrypt: bool,
) -> FuncId {
    let sbox = mb.add_const_global(format!("{fname}_sbox"), 256, fill(0x5b0c, 256, 1 << 32));
    let keys: Vec<i64> = fill(0x4e45, rounds as usize, 1 << 32);
    let keys_g = mb.add_const_global(
        format!("{fname}_rk"),
        rounds,
        if decrypt {
            keys.iter().rev().copied().collect()
        } else {
            keys
        },
    );
    let data = mb.add_global(
        format!("{fname}_blocks"),
        n_blocks * 2,
        fill(0xb10c, (n_blocks * 2) as usize, 1 << 32),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (ps, pk, pd) = (
        Operand::Global(sbox),
        Operand::Global(keys_g),
        Operand::Global(data),
    );
    counted_loop(
        &mut fb,
        Operand::const_int(n_blocks as i64),
        &[],
        |fb, b, _| {
            let li = fb.bin(BinOp::Mul, b, Operand::const_int(2));
            let ri = fb.bin(BinOp::Add, li, Operand::const_int(1));
            let lp = fb.gep(pd, li);
            let rp = fb.gep(pd, ri);
            let l0 = fb.load(Type::I64, lp);
            let r0 = fb.load(Type::I64, rp);
            let fin = counted_loop(
                fb,
                Operand::const_int(rounds as i64),
                &[(Type::I64, l0), (Type::I64, r0)],
                |fb, r, st| {
                    let (l, rr) = (st[0], st[1]);
                    let kp = fb.gep(pk, r);
                    let k = fb.load(Type::I64, kp);
                    let mixed = fb.bin(BinOp::Xor, rr, k);
                    let idx = fb.bin(BinOp::And, mixed, Operand::const_int(0xFF));
                    let sp = fb.gep(ps, idx);
                    let sv = fb.load(Type::I64, sp);
                    let f = fb.bin(BinOp::Add, sv, mixed);
                    let l2 = fb.bin(BinOp::Xor, l, f);
                    vec![rr, l2] // swap halves
                },
            );
            fb.store(lp, fin[0]);
            fb.store(rp, fin[1]);
            vec![]
        },
    );
    let sum = counted_loop(
        &mut fb,
        Operand::const_int((n_blocks * 2) as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(pd, i);
            let v = fb.load(Type::I64, p);
            vec![fb.bin(BinOp::Xor, st[0], v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// 8×8 DCT-like float transform over `n_blocks` blocks (cBench `jpeg_*`).
pub fn emit_dct8x8(mb: &mut ModuleBuilder, fname: &str, n_blocks: u32) -> FuncId {
    let data = mb.add_global(
        format!("{fname}_pix"),
        n_blocks * 64,
        fill(0xdc78, (n_blocks * 64) as usize, 256),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let pd = Operand::Global(data);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n_blocks as i64),
        &[(Type::F64, Operand::const_float(0.0))],
        |fb, b, accs| {
            let off = fb.bin(BinOp::Mul, b, Operand::const_int(64));

            counted_loop(
                fb,
                Operand::const_int(8),
                &[(Type::F64, accs[0])],
                |fb, u, st| {
                    let inner = counted_loop(
                        fb,
                        Operand::const_int(8),
                        &[(Type::F64, Operand::const_float(0.0))],
                        |fb, x, st2| {
                            let row = fb.bin(BinOp::Mul, u, Operand::const_int(8));
                            let rowx = fb.bin(BinOp::Add, row, x);
                            let idx = fb.bin(BinOp::Add, off, rowx);
                            let p = fb.gep(pd, idx);
                            let v = fb.load(Type::I64, p);
                            let vf = fb.cast(CastKind::IntToFloat, v);
                            // cos approximation: c = 1 - t²/2 with t = x*u/10
                            let xu = fb.bin(BinOp::Mul, x, u);
                            let xuf = fb.cast(CastKind::IntToFloat, xu);
                            let t = fb.bin(BinOp::FMul, xuf, Operand::const_float(0.1));
                            let t2 = fb.bin(BinOp::FMul, t, t);
                            let half = fb.bin(BinOp::FMul, t2, Operand::const_float(0.5));
                            let c = fb.bin(BinOp::FSub, Operand::const_float(1.0), half);
                            let prod = fb.bin(BinOp::FMul, vf, c);
                            vec![fb.bin(BinOp::FAdd, st2[0], prod)]
                        },
                    );
                    vec![fb.bin(BinOp::FAdd, st[0], inner[0])]
                },
            )
        },
    );
    let i = fb.cast(CastKind::FloatToInt, out[0]);
    fb.ret(Some(i));
    fb.finish()
}

/// Bytecode-VM interpreter: a fetch–decode–execute switch loop (CHStone
/// `mips`; stands in for big control-heavy programs like `ghostscript`).
pub fn emit_vm_interp(mb: &mut ModuleBuilder, fname: &str, program_len: u32, steps: u32) -> FuncId {
    // Opcodes 0..6, operands derived from the stream.
    let prog = mb.add_const_global(
        format!("{fname}_prog"),
        program_len,
        fill(0x1f2e, program_len as usize, 7),
    );
    let mem = mb.add_global(format!("{fname}_vmmem"), 64, fill(0x33aa, 64, 1000));
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pp, pm) = (Operand::Global(prog), Operand::Global(mem));
    let out = counted_loop(
        &mut fb,
        Operand::const_int(steps as i64),
        &[
            (Type::I64, Operand::const_int(0)), // pc
            (Type::I64, Operand::const_int(1)), // acc register
        ],
        |fb, _i, st| {
            let (pc, acc) = (st[0], st[1]);
            let fp = fb.gep(pp, pc);
            let opcode = fb.load(Type::I64, fp);
            let addr = fb.bin(BinOp::And, acc, Operand::const_int(63));
            let mp = fb.gep(pm, addr);

            let join = fb.new_block();
            let default = fb.new_block();
            let mut arms = Vec::new();
            for _ in 0..6 {
                arms.push(fb.new_block());
            }
            let cases: Vec<(i64, cg_ir::BlockId)> = arms
                .iter()
                .enumerate()
                .map(|(c, b)| (c as i64, *b))
                .collect();
            fb.switch(opcode, cases, default);
            let mut incomings = Vec::new();
            // 0: load  acc = mem[addr]
            fb.switch_to(arms[0]);
            let v0 = fb.load(Type::I64, mp);
            fb.br(join);
            incomings.push((arms[0], v0));
            // 1: store mem[addr] = acc
            fb.switch_to(arms[1]);
            fb.store(mp, acc);
            fb.br(join);
            incomings.push((arms[1], acc));
            // 2: add
            fb.switch_to(arms[2]);
            let m2 = fb.load(Type::I64, mp);
            let v2 = fb.bin(BinOp::Add, acc, m2);
            fb.br(join);
            incomings.push((arms[2], v2));
            // 3: xor-shift
            fb.switch_to(arms[3]);
            let s3 = fb.bin(BinOp::Shl, acc, Operand::const_int(7));
            let v3 = fb.bin(BinOp::Xor, acc, s3);
            fb.br(join);
            incomings.push((arms[3], v3));
            // 4: mul
            fb.switch_to(arms[4]);
            let m4 = fb.load(Type::I64, mp);
            let v4 = fb.bin(BinOp::Mul, acc, m4);
            fb.br(join);
            incomings.push((arms[4], v4));
            // 5: neg
            fb.switch_to(arms[5]);
            let v5 = fb.neg(acc);
            fb.br(join);
            incomings.push((arms[5], v5));
            // default: nop
            fb.switch_to(default);
            fb.br(join);
            incomings.push((default, acc));

            fb.switch_to(join);
            let acc2 = fb.phi(Type::I64, incomings);
            let pc1 = fb.bin(BinOp::Add, pc, Operand::const_int(1));
            let wrap = fb.icmp(Pred::Ge, pc1, Operand::const_int(program_len as i64));
            let pc2 = fb.select(Type::I64, wrap, Operand::const_int(0), pc1);
            vec![pc2, acc2]
        },
    );
    fb.ret(Some(out[1]));
    fb.finish()
}

/// Run-length encode into an output buffer (cBench `bzip2*` stand-in).
pub fn emit_rle(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    // Runs are likely: values drawn from a tiny alphabet.
    let data = mb.add_const_global(format!("{fname}_in"), n, fill(0x41e0, n as usize, 4));
    let out_g = mb.add_global(format!("{fname}_out"), n * 2, vec![0; (n * 2) as usize]);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pi, po) = (Operand::Global(data), Operand::Global(out_g));
    let fin = counted_loop(
        &mut fb,
        Operand::const_int(n as i64),
        &[
            (Type::I64, Operand::const_int(-1)), // current run value
            (Type::I64, Operand::const_int(0)),  // run length
            (Type::I64, Operand::const_int(0)),  // out cursor
        ],
        |fb, i, st| {
            let (run_v, run_len, cur) = (st[0], st[1], st[2]);
            let p = fb.gep(pi, i);
            let v = fb.load(Type::I64, p);
            let same = fb.icmp(Pred::Eq, v, run_v);
            let then_b = fb.new_block();
            let else_b = fb.new_block();
            let join = fb.new_block();
            fb.cond_br(same, then_b, else_b);
            // same: extend run
            fb.switch_to(then_b);
            let len2 = fb.bin(BinOp::Add, run_len, Operand::const_int(1));
            fb.br(join);
            // differs: flush (value, length) pair and start new run
            fb.switch_to(else_b);
            let vp = fb.gep(po, cur);
            fb.store(vp, run_v);
            let cur1 = fb.bin(BinOp::Add, cur, Operand::const_int(1));
            let lp = fb.gep(po, cur1);
            fb.store(lp, run_len);
            let cur2 = fb.bin(BinOp::Add, cur1, Operand::const_int(1));
            fb.br(join);
            fb.switch_to(join);
            let new_v = fb.phi(Type::I64, vec![(then_b, run_v), (else_b, v)]);
            let new_len = fb.phi(
                Type::I64,
                vec![(then_b, len2), (else_b, Operand::const_int(1))],
            );
            let new_cur = fb.phi(Type::I64, vec![(then_b, cur), (else_b, cur2)]);
            vec![new_v, new_len, new_cur]
        },
    );
    // Checksum over the emitted pairs.
    let sum = counted_loop(
        &mut fb,
        fin[2],
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(po, i);
            let v = fb.load(Type::I64, p);
            let rot = fb.bin(BinOp::Shl, st[0], Operand::const_int(1));
            vec![fb.bin(BinOp::Add, rot, v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// Hash-table probing loop (cBench `ispell`/`patricia` stand-in: pointer-ish
/// chasing with data-dependent exits).
pub fn emit_hash_probe(
    mb: &mut ModuleBuilder,
    fname: &str,
    n_keys: u32,
    table_pow2: u32,
) -> FuncId {
    let tsize = 1u32 << table_pow2;
    let mask = (tsize - 1) as i64;
    let table = mb.add_global(format!("{fname}_table"), tsize, {
        let mut t = vec![0i64; tsize as usize];
        for (i, v) in fill(0x7ab1, (tsize / 2) as usize, 1 << 20)
            .iter()
            .enumerate()
        {
            t[(v % tsize as i64) as usize] = i as i64 + 1;
        }
        t
    });
    let keys = mb.add_const_global(
        format!("{fname}_keys"),
        n_keys,
        fill(0x6e1d, n_keys as usize, 1 << 20),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pt, pk) = (Operand::Global(table), Operand::Global(keys));
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n_keys as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let kp = fb.gep(pk, i);
            let k = fb.load(Type::I64, kp);
            // Linear probe until an empty slot, max 8 probes.
            let probe = counted_loop(
                fb,
                Operand::const_int(8),
                &[
                    (Type::I64, k),                     // slot cursor
                    (Type::I64, Operand::const_int(0)), // found payload
                ],
                |fb, _j, st2| {
                    let slot = fb.bin(BinOp::And, st2[0], Operand::const_int(mask));
                    let sp = fb.gep(pt, slot);
                    let v = fb.load(Type::I64, sp);
                    let hit = fb.icmp(Pred::Ne, v, Operand::const_int(0));
                    let payload = fb.select(Type::I64, hit, v, st2[1]);
                    let next = fb.bin(BinOp::Add, st2[0], Operand::const_int(1));
                    vec![next, payload]
                },
            );
            vec![fb.bin(BinOp::Add, st[0], probe[1])]
        },
    );
    fb.ret(Some(out[0]));
    fb.finish()
}

/// Autocorrelation over a signal (cBench `gsm`, `lame` stand-in).
pub fn emit_autocorr(mb: &mut ModuleBuilder, fname: &str, n: u32, lags: u32) -> FuncId {
    let sig = mb.add_const_global(format!("{fname}_sig"), n, fill(0x95a3, n as usize, 4096));
    let out_g = mb.add_global(format!("{fname}_acf"), lags, vec![0; lags as usize]);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (ps, po) = (Operand::Global(sig), Operand::Global(out_g));
    counted_loop(
        &mut fb,
        Operand::const_int(lags as i64),
        &[],
        |fb, lag, _| {
            let len = fb.bin(BinOp::Sub, Operand::const_int(n as i64), lag);
            let acc = counted_loop(
                fb,
                len,
                &[(Type::I64, Operand::const_int(0))],
                |fb, t, st| {
                    let p1 = fb.gep(ps, t);
                    let v1 = fb.load(Type::I64, p1);
                    let tl = fb.bin(BinOp::Add, t, lag);
                    let p2 = fb.gep(ps, tl);
                    let v2 = fb.load(Type::I64, p2);
                    let prod = fb.bin(BinOp::Mul, v1, v2);
                    let scaled = fb.bin(BinOp::AShr, prod, Operand::const_int(4));
                    vec![fb.bin(BinOp::Add, st[0], scaled)]
                },
            );
            let op = fb.gep(po, lag);
            fb.store(op, acc[0]);
            vec![]
        },
    );
    let sum = counted_loop(
        &mut fb,
        Operand::const_int(lags as i64),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(po, i);
            let v = fb.load(Type::I64, p);
            vec![fb.bin(BinOp::Xor, st[0], v)]
        },
    );
    fb.ret(Some(sum[0]));
    fb.finish()
}

/// Histogram + byte packing loops (cBench `tiff2bw` stand-in).
pub fn emit_histogram(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let data = mb.add_const_global(format!("{fname}_pix"), n, fill(0x7177, n as usize, 256));
    let hist = mb.add_global(format!("{fname}_hist"), 256, vec![0; 256]);
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pd, ph) = (Operand::Global(data), Operand::Global(hist));
    counted_loop(&mut fb, Operand::const_int(n as i64), &[], |fb, i, _| {
        let p = fb.gep(pd, i);
        let v = fb.load(Type::I64, p);
        let hp = fb.gep(ph, v);
        let c = fb.load(Type::I64, hp);
        let c1 = fb.bin(BinOp::Add, c, Operand::const_int(1));
        fb.store(hp, c1);
        vec![]
    });
    // Weighted sum over the histogram (the "threshold" computation).
    let out = counted_loop(
        &mut fb,
        Operand::const_int(256),
        &[(Type::I64, Operand::const_int(0))],
        |fb, i, st| {
            let p = fb.gep(ph, i);
            let c = fb.load(Type::I64, p);
            let w = fb.bin(BinOp::Mul, c, i);
            vec![fb.bin(BinOp::Add, st[0], w)]
        },
    );
    fb.ret(Some(out[0]));
    fb.finish()
}

/// Chained double-precision arithmetic (CHStone `dfadd`/`dfmul`/`dfdiv`).
pub fn emit_float_chain(mb: &mut ModuleBuilder, fname: &str, n: u32, op: BinOp) -> FuncId {
    let data = mb.add_const_global(format!("{fname}_xs"), n, fill(0xdf00, n as usize, 1000));
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let pd = Operand::Global(data);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n as i64),
        &[(Type::F64, Operand::const_float(1.0))],
        |fb, i, st| {
            let p = fb.gep(pd, i);
            let v = fb.load(Type::I64, p);
            let vf = fb.cast(CastKind::IntToFloat, v);
            // keep magnitudes tame: x = 1 + v/2048
            let scaled = fb.bin(BinOp::FMul, vf, Operand::const_float(1.0 / 2048.0));
            let x = fb.bin(BinOp::FAdd, scaled, Operand::const_float(1.0));
            let next = fb.bin(op, st[0], x);
            // renormalize to avoid inf: y = y / 2 when |y| > 1e12, via select
            let too_big = fb.fcmp(Pred::Gt, next, Operand::const_float(1e12));
            let halved = fb.bin(BinOp::FMul, next, Operand::const_float(0.5));
            let kept = fb.select(Type::F64, too_big, halved, next);
            vec![kept]
        },
    );
    let i = fb.cast(CastKind::FloatToInt, out[0]);
    fb.ret(Some(i));
    fb.finish()
}

/// Taylor-series sine evaluation in a loop (CHStone `dfsin`).
pub fn emit_sine_taylor(mb: &mut ModuleBuilder, fname: &str, n: u32) -> FuncId {
    let data = mb.add_const_global(format!("{fname}_angles"), n, fill(0x517e, n as usize, 6283));
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let pd = Operand::Global(data);
    let out = counted_loop(
        &mut fb,
        Operand::const_int(n as i64),
        &[(Type::F64, Operand::const_float(0.0))],
        |fb, i, st| {
            let p = fb.gep(pd, i);
            let raw = fb.load(Type::I64, p);
            let mf = fb.cast(CastKind::IntToFloat, raw);
            let x = fb.bin(BinOp::FMul, mf, Operand::const_float(0.001));
            // sin(x) ≈ x - x³/6 + x⁵/120 - x⁷/5040
            let x2 = fb.bin(BinOp::FMul, x, x);
            let x3 = fb.bin(BinOp::FMul, x2, x);
            let x5 = fb.bin(BinOp::FMul, x3, x2);
            let x7 = fb.bin(BinOp::FMul, x5, x2);
            let t3 = fb.bin(BinOp::FDiv, x3, Operand::const_float(6.0));
            let t5 = fb.bin(BinOp::FDiv, x5, Operand::const_float(120.0));
            let t7 = fb.bin(BinOp::FDiv, x7, Operand::const_float(5040.0));
            let s1 = fb.bin(BinOp::FSub, x, t3);
            let s2 = fb.bin(BinOp::FAdd, s1, t5);
            let s3 = fb.bin(BinOp::FSub, s2, t7);
            vec![fb.bin(BinOp::FAdd, st[0], s3)]
        },
    );
    let scaled = fb.bin(BinOp::FMul, out[0], Operand::const_float(1e6));
    let i = fb.cast(CastKind::FloatToInt, scaled);
    fb.ret(Some(i));
    fb.finish()
}

/// Motion-estimation style sum-of-absolute-differences search (CHStone
/// `motion`).
pub fn emit_sad_search(mb: &mut ModuleBuilder, fname: &str, block: u32, search: u32) -> FuncId {
    let frame_len = (block + search) * (block + search);
    let cur = mb.add_const_global(
        format!("{fname}_cur"),
        block * block,
        fill(0xc0de, (block * block) as usize, 256),
    );
    let reference = mb.add_const_global(
        format!("{fname}_ref"),
        frame_len,
        fill(0xfeed, frame_len as usize, 256),
    );
    let mut fb = mb.begin_function(fname, &[], Type::I64);
    let (pc, pr) = (Operand::Global(cur), Operand::Global(reference));
    let stride = (block + search) as i64;
    let out = counted_loop(
        &mut fb,
        Operand::const_int(search as i64),
        &[(Type::I64, Operand::const_int(i64::MAX / 4))],
        |fb, dy, best_out| {
            counted_loop(
                fb,
                Operand::const_int(search as i64),
                &[(Type::I64, best_out[0])],
                |fb, dx, best| {
                    let sad = counted_loop(
                        fb,
                        Operand::const_int(block as i64),
                        &[(Type::I64, Operand::const_int(0))],
                        |fb, y, acc| {
                            counted_loop(
                                fb,
                                Operand::const_int(block as i64),
                                &[(Type::I64, acc[0])],
                                |fb, x, acc2| {
                                    let crow =
                                        fb.bin(BinOp::Mul, y, Operand::const_int(block as i64));
                                    let cidx = fb.bin(BinOp::Add, crow, x);
                                    let cp = fb.gep(pc, cidx);
                                    let cv = fb.load(Type::I64, cp);
                                    let ry = fb.bin(BinOp::Add, y, dy);
                                    let rrow = fb.bin(BinOp::Mul, ry, Operand::const_int(stride));
                                    let rx = fb.bin(BinOp::Add, x, dx);
                                    let ridx = fb.bin(BinOp::Add, rrow, rx);
                                    let rp = fb.gep(pr, ridx);
                                    let rv = fb.load(Type::I64, rp);
                                    let d = fb.bin(BinOp::Sub, cv, rv);
                                    let neg = fb.icmp(Pred::Lt, d, Operand::const_int(0));
                                    let nd = fb.neg(d);
                                    let ad = fb.select(Type::I64, neg, nd, d);
                                    vec![fb.bin(BinOp::Add, acc2[0], ad)]
                                },
                            )
                        },
                    );
                    let better = fb.icmp(Pred::Lt, sad[0], best[0]);
                    let nb = fb.select(Type::I64, better, sad[0], best[0]);
                    vec![nb]
                },
            )
        },
    );
    fb.ret(Some(out[0]));
    fb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    fn check(m: Module) -> i64 {
        verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let out =
            run_main(&m, &ExecLimits::default()).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        out.ret.unwrap().as_int().unwrap()
    }

    #[test]
    fn all_kernels_verify_and_run() {
        check(single("crc32", |mb| emit_crc32(mb, "k", 256)));
        check(single("qsort", |mb| emit_sort_kernel(mb, "k", 64)));
        check(single("dijkstra", |mb| emit_dijkstra(mb, "k", 12)));
        check(single("sha", |mb| emit_sha_mix(mb, "k", 8)));
        check(single("fir", |mb| emit_fir(mb, "k", 128, 16)));
        check(single("matmul", |mb| emit_matmul(mb, "k", 10)));
        check(single("bitcount", |mb| emit_bitcount(mb, "k", 64)));
        check(single("stringsearch", |mb| {
            emit_stringsearch(mb, "k", 256, 8)
        }));
        check(single("susan", |mb| emit_stencil2d(mb, "k", 20, 16)));
        check(single("adpcm_c", |mb| emit_adpcm(mb, "k", 128, true)));
        check(single("adpcm_d", |mb| emit_adpcm(mb, "k", 128, false)));
        check(single("blowfish_e", |mb| {
            emit_feistel(mb, "k", 32, 16, false)
        }));
        check(single("blowfish_d", |mb| {
            emit_feistel(mb, "k", 32, 16, true)
        }));
        check(single("jpeg_c", |mb| emit_dct8x8(mb, "k", 6)));
        check(single("mips", |mb| emit_vm_interp(mb, "k", 64, 500)));
        check(single("bzip2e", |mb| emit_rle(mb, "k", 256)));
        check(single("ispell", |mb| emit_hash_probe(mb, "k", 64, 8)));
        check(single("gsm", |mb| emit_autocorr(mb, "k", 128, 8)));
        check(single("tiff2bw", |mb| emit_histogram(mb, "k", 256)));
        check(single("dfmul", |mb| {
            emit_float_chain(mb, "k", 128, BinOp::FMul)
        }));
        check(single("dfsin", |mb| emit_sine_taylor(mb, "k", 64)));
        check(single("motion", |mb| emit_sad_search(mb, "k", 6, 6)));
    }

    #[test]
    fn compose_builds_multi_kernel_modules() {
        let m = compose(
            "ghostscript",
            vec![
                Box::new(|mb: &mut ModuleBuilder| emit_vm_interp(mb, "vm0", 64, 400)),
                Box::new(|mb: &mut ModuleBuilder| emit_rle(mb, "rle0", 128)),
                Box::new(|mb: &mut ModuleBuilder| emit_histogram(mb, "hist0", 128)),
            ],
        );
        assert_eq!(m.num_functions(), 4); // 3 kernels + main
        check(m);
    }

    #[test]
    fn crc32_matches_reference() {
        // Cross-check the IR CRC against a Rust reference implementation on
        // the same generated data.
        let n = 128u32;
        let data = fill(0xc3c3, n as usize, 256);
        let mut table = [0u64; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u64;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        let mut crc: u64 = 0xFFFF_FFFF;
        for &b in &data {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            crc = (crc >> 8) ^ table[idx];
        }
        let expect = (crc ^ 0xFFFF_FFFF) as i64;
        assert_eq!(check(single("crc32", |mb| emit_crc32(mb, "k", n))), expect);
    }

    #[test]
    fn sort_kernel_actually_sorts() {
        // The checksum of a sorted array equals sum(sorted[i] * i).
        let n = 64u32;
        let mut data = fill(0x50f7, n as usize, 10_000);
        data.sort();
        let expect: i64 = data.iter().enumerate().map(|(i, v)| v * i as i64).sum();
        assert_eq!(
            check(single("qsort", |mb| emit_sort_kernel(mb, "k", n))),
            expect
        );
    }

    #[test]
    fn encode_decode_differ() {
        let enc = check(single("c", |mb| emit_adpcm(mb, "k", 64, true)));
        let dec = check(single("d", |mb| emit_adpcm(mb, "k", 64, false)));
        assert_ne!(enc, dec);
        let fe = check(single("e", |mb| emit_feistel(mb, "k", 8, 8, false)));
        let fd = check(single("d", |mb| emit_feistel(mb, "k", 8, 8, true)));
        assert_ne!(fe, fd);
    }
}
