//! # cg-datasets: benchmark datasets and program generators
//!
//! Reproduces the benchmark infrastructure of CompilerGym's Table I: the 14
//! dataset families, addressed by URI (`benchmark://cbench-v1/qsort`), with
//! curated hand-written kernels for the real suites (cBench, CHStone,
//! MiBench, BLAS, NPB) and deterministic style-profiled synthesis for the
//! corpus-derived families and generators (AnghaBench, GitHub, Csmith, …).
//!
//! # Example
//!
//! ```
//! let module = cg_datasets::benchmark("benchmark://cbench-v1/crc32")?;
//! assert!(module.inst_count() > 0);
//! # Ok::<(), cg_datasets::DatasetError>(())
//! ```

pub mod deopt;
pub mod families;
pub mod kernels;
pub mod rng;
pub mod synth;

pub use families::{
    benchmark, dataset, datasets, total_finite_benchmarks, DatasetError, DatasetInfo, DatasetSize,
    CBENCH, CHSTONE,
};
