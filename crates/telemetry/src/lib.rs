//! Telemetry primitives for the CompilerGym stack.
//!
//! Everything here is designed for hot paths: recording a latency sample or
//! bumping a counter is a handful of relaxed atomic operations, with no
//! allocation and no locking once a metric handle exists. Keyed metric
//! families take a short read-lock to resolve a name to a handle; callers on
//! hot paths should resolve once and reuse the `Arc`.
//!
//! The crate exposes:
//!
//! - [`Counter`] / [`Gauge`] / [`FloatSum`] — scalar atomics.
//! - [`Histogram`] — a log-linear atomic histogram over microsecond values
//!   with ~6% worst-case quantile error (16 sub-buckets per power of two).
//! - [`Family`] — name-keyed lazily-created metric instances.
//! - [`PassTable`] — per-compiler-pass call counts, cumulative wall time,
//!   and instruction-count deltas.
//! - [`TraceBuffer`] — a bounded ring of structured [`TraceEvent`]s with
//!   JSON-lines export.
//! - [`Telemetry`] — the registry tying the above together, with a process
//!   [`global`] instance, [`Telemetry::snapshot`] into the serializable
//!   [`TelemetrySnapshot`], and [`Telemetry::reset`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Scalar metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (e.g. requests currently in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A lock-free accumulating `f64` sum (compare-exchange on the bit pattern).
#[derive(Debug, Default)]
pub struct FloatSum(AtomicU64);

impl FloatSum {
    /// Creates a sum at `0.0` (whose bit pattern is all zeroes).
    pub const fn new() -> FloatSum {
        FloatSum(AtomicU64::new(0))
    }

    /// Adds `x` to the sum.
    pub fn add(&self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current sum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Zeroes the sum.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Values below 16 get exact buckets; above, each power of two splits into
/// `SUBBUCKETS` linear sub-buckets, bounding relative quantile error by
/// `1/SUBBUCKETS`.
const SUBBUCKETS: usize = 16;
/// Bucket count covering the full `u64` range: 16 exact + 60 exponent groups.
const BUCKETS: usize = SUBBUCKETS + (64 - 4) * SUBBUCKETS;

/// A concurrent log-linear histogram of `u64` samples (microseconds by
/// convention throughout this workspace).
///
/// Recording is wait-free aside from the `fetch_min`/`fetch_max` used to keep
/// exact extremes. Quantiles are computed on demand by walking bucket counts;
/// under concurrent recording they are a consistent-enough approximation, not
/// a linearizable snapshot.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUBBUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // >= 4 here
        let sub = ((v >> (exp - 4)) & (SUBBUCKETS as u64 - 1)) as usize;
        (exp - 3) * SUBBUCKETS + sub
    }

    /// A representative (midpoint) value for a bucket index.
    fn bucket_value(i: usize) -> u64 {
        if i < SUBBUCKETS {
            return i as u64;
        }
        let exp = i / SUBBUCKETS + 3;
        let sub = (i % SUBBUCKETS) as u64;
        let base = 1u64 << exp;
        let width = 1u64 << (exp - 4);
        base + sub * width + width / 2
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`), or 0 if empty. The returned
    /// value is exact for samples below 16 and within ~6% above.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max();
        }
        if q <= 0.0 {
            return self.min();
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Clamp into the exactly-tracked extremes so p99 never
                // exceeds max nor p0 undercuts min.
                return Self::bucket_value(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Zeroes all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Captures the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum_micros: self.sum(),
            mean_micros: if count == 0 { 0.0 } else { self.sum() as f64 / count as f64 },
            min_micros: self.min(),
            p50_micros: self.quantile(0.50),
            p90_micros: self.quantile(0.90),
            p99_micros: self.quantile(0.99),
            max_micros: self.max(),
        }
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_micros: u64,
    pub mean_micros: f64,
    pub min_micros: u64,
    pub p50_micros: u64,
    pub p90_micros: u64,
    pub p99_micros: u64,
    pub max_micros: u64,
}

// ---------------------------------------------------------------------------
// Keyed families
// ---------------------------------------------------------------------------

/// A name-keyed family of metrics, created lazily on first use.
#[derive(Debug, Default)]
pub struct Family<T> {
    inner: RwLock<HashMap<String, Arc<T>>>,
}

impl<T: Default> Family<T> {
    /// Creates an empty family.
    pub fn new() -> Family<T> {
        Family { inner: RwLock::new(HashMap::new()) }
    }

    /// Returns the metric for `key`, creating it on first use. Hot paths
    /// should cache the returned `Arc` rather than re-resolving per event.
    pub fn get(&self, key: &str) -> Arc<T> {
        if let Some(m) = self.inner.read().get(key) {
            return Arc::clone(m);
        }
        let mut w = self.inner.write();
        Arc::clone(w.entry(key.to_string()).or_insert_with(|| Arc::new(T::default())))
    }

    /// Visits every `(key, metric)` pair.
    pub fn for_each(&self, mut f: impl FnMut(&str, &T)) {
        for (k, v) in self.inner.read().iter() {
            f(k, v);
        }
    }

    /// Removes all entries.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

// ---------------------------------------------------------------------------
// Per-pass profiling
// ---------------------------------------------------------------------------

/// Accumulated profile of one compiler pass across all invocations.
#[derive(Debug, Default)]
pub struct PassStats {
    calls: Counter,
    total_micros: Counter,
    changed: Counter,
    inst_delta: AtomicI64,
}

impl PassStats {
    /// Records one invocation: its wall time, whether it changed the module,
    /// and the signed instruction-count delta it caused.
    pub fn record(&self, wall: Duration, changed: bool, inst_delta: i64) {
        self.calls.inc();
        self.total_micros.add(wall.as_micros().min(u64::MAX as u128) as u64);
        if changed {
            self.changed.inc();
        }
        self.inst_delta.fetch_add(inst_delta, Ordering::Relaxed);
    }

    /// Captures the summary.
    pub fn snapshot(&self) -> PassSnapshot {
        PassSnapshot {
            calls: self.calls.get(),
            total_micros: self.total_micros.get(),
            changed: self.changed.get(),
            inst_delta: self.inst_delta.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.calls.reset();
        self.total_micros.reset();
        self.changed.reset();
        self.inst_delta.store(0, Ordering::Relaxed);
    }
}

/// Summary of one pass in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassSnapshot {
    pub calls: u64,
    pub total_micros: u64,
    pub changed: u64,
    pub inst_delta: i64,
}

/// Per-pass profiles keyed by pass name.
pub type PassTable = Family<PassStats>;

// ---------------------------------------------------------------------------
// Differential-fuzzing statistics
// ---------------------------------------------------------------------------

/// Counters for the differential pass-pipeline fuzzer (`cg fuzz`).
///
/// `blame` attributes divergences to individual passes: every pass that
/// survives pipeline shrinking (i.e. is a member of a minimal failing
/// subsequence) gets one count, so persistent offenders surface in
/// `cg stats` even across many fuzz runs.
#[derive(Debug, Default)]
pub struct FuzzStats {
    /// Fuzz cases executed (one generated module + one sampled pipeline).
    pub cases: Counter,
    /// Cases whose oracle comparison diverged (miscompilations found).
    pub divergences: Counter,
    /// Divergences successfully shrunk to a minimal reproducer.
    pub shrunk: Counter,
    /// Cases where the IR verifier rejected the module after a pass.
    pub verifier_rejects: Counter,
    /// Cases where a pass panicked.
    pub pass_panics: Counter,
    /// Oracle executions (reference + optimized runs, all corpus inputs).
    pub oracle_runs: Counter,
    /// Per-pass blame counts (membership in a minimal failing pipeline).
    pub blame: Family<Counter>,
    /// Wall time per fuzz case, including shrinking.
    pub case_wall: Histogram,
}

impl FuzzStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> FuzzSnapshot {
        let mut blame = BTreeMap::new();
        self.blame.for_each(|k, c| {
            blame.insert(k.to_string(), c.get());
        });
        FuzzSnapshot {
            cases: self.cases.get(),
            divergences: self.divergences.get(),
            shrunk: self.shrunk.get(),
            verifier_rejects: self.verifier_rejects.get(),
            pass_panics: self.pass_panics.get(),
            oracle_runs: self.oracle_runs.get(),
            blame,
            case_wall: self.case_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.cases.reset();
        self.divergences.reset();
        self.shrunk.reset();
        self.verifier_rejects.reset();
        self.pass_panics.reset();
        self.oracle_runs.reset();
        self.blame.for_each(|_, c| c.reset());
        self.case_wall.reset();
    }
}

/// Serializable form of [`FuzzStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzSnapshot {
    pub cases: u64,
    pub divergences: u64,
    pub shrunk: u64,
    pub verifier_rejects: u64,
    pub pass_panics: u64,
    pub oracle_runs: u64,
    pub blame: BTreeMap<String, u64>,
    pub case_wall: HistogramSnapshot,
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since process start when the span *ended*.
    pub ts_micros: u64,
    /// Span name, e.g. `step`, `observation:Autophase`, `pass:gvn`,
    /// `service:restart`.
    pub span: String,
    /// Free-form context (benchmark id, action name, error text, ...).
    pub detail: String,
    /// Span duration in microseconds (0 for instantaneous events).
    pub dur_micros: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. When full, the oldest events are
/// dropped; `dropped()` reports how many.
pub struct TraceBuffer {
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: Counter,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::with_capacity(65_536)
    }
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            events: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
            dropped: Counter::new(),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn emit(&self, span: impl Into<String>, detail: impl Into<String>, dur: Duration) {
        let ev = TraceEvent {
            ts_micros: now_micros(),
            span: span.into(),
            detail: detail.into(),
            dur_micros: dur.as_micros().min(u64::MAX as u128) as u64,
        };
        let mut q = self.events.lock();
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.inc();
        }
        q.push_back(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Serializes the buffer as JSON lines (one event per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&serde_json::to_string(&ev).expect("trace event serializes"));
            out.push('\n');
        }
        out
    }

    /// Discards all buffered events and the dropped count.
    pub fn clear(&self) {
        self.events.lock().clear();
        self.dropped.reset();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Episode-level environment statistics.
#[derive(Debug, Default)]
pub struct EpisodeStats {
    /// Completed `reset()` calls.
    pub episodes: Counter,
    /// Completed `step()` calls.
    pub steps: Counter,
    /// Actions applied (one step may apply several).
    pub actions_total: Counter,
    /// Actions that actually mutated the program state.
    pub actions_changed: Counter,
    /// Sum of all step rewards.
    pub reward_sum: FloatSum,
    /// `reset()` wall time.
    pub reset_wall: Histogram,
    /// `step()` wall time.
    pub step_wall: Histogram,
    /// `fork()` wall time.
    pub fork_wall: Histogram,
}

impl EpisodeStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> EpisodeSnapshot {
        EpisodeSnapshot {
            episodes: self.episodes.get(),
            steps: self.steps.get(),
            actions_total: self.actions_total.get(),
            actions_changed: self.actions_changed.get(),
            reward_sum: self.reward_sum.get(),
            reset_wall: self.reset_wall.snapshot(),
            step_wall: self.step_wall.snapshot(),
            fork_wall: self.fork_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.episodes.reset();
        self.steps.reset();
        self.actions_total.reset();
        self.actions_changed.reset();
        self.reward_sum.reset();
        self.reset_wall.reset();
        self.step_wall.reset();
        self.fork_wall.reset();
    }
}

/// Serializable form of [`EpisodeStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSnapshot {
    pub episodes: u64,
    pub steps: u64,
    pub actions_total: u64,
    pub actions_changed: u64,
    pub reward_sum: f64,
    pub reset_wall: HistogramSnapshot,
    pub step_wall: HistogramSnapshot,
    pub fork_wall: HistogramSnapshot,
}

/// Parallel-evaluation statistics: the `EnvPool` worker fleet and the
/// shared evaluation cache (exact hits plus prefix-trie reuse).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Evaluation jobs completed (hit or miss, success or error).
    pub jobs: Counter,
    /// Jobs that finished with an error outcome (after recovery gave up).
    pub job_errors: Counter,
    /// Worker panics caught mid-job (the worker's env is rebuilt).
    pub job_panics: Counter,
    /// Exact evaluation-cache hits: the full `(benchmark, sequence)` pair
    /// was already evaluated, so zero passes ran.
    pub cache_hits: Counter,
    /// Cache lookups that found no exact entry.
    pub cache_misses: Counter,
    /// Prefix-trie hits: a stored snapshot covered a proper prefix of the
    /// sequence, so only the novel suffix was executed.
    pub prefix_hits: Counter,
    /// Raw pass applications actually executed by pool workers.
    pub actions_executed: Counter,
    /// Pass applications skipped thanks to exact or prefix cache reuse.
    pub actions_saved: Counter,
    /// Cache entries discarded to respect the capacity bound.
    pub evictions: Counter,
    /// Worker threads currently alive across all pools.
    pub workers: Gauge,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Wall time of whole `evaluate_batch` calls.
    pub batch_wall: Histogram,
    /// Wall time of individual evaluation jobs.
    pub job_wall: Histogram,
}

impl PoolStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            jobs: self.jobs.get(),
            job_errors: self.job_errors.get(),
            job_panics: self.job_panics.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            prefix_hits: self.prefix_hits.get(),
            actions_executed: self.actions_executed.get(),
            actions_saved: self.actions_saved.get(),
            evictions: self.evictions.get(),
            workers: self.workers.get(),
            queue_depth: self.queue_depth.get(),
            batch_wall: self.batch_wall.snapshot(),
            job_wall: self.job_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.jobs.reset();
        self.job_errors.reset();
        self.job_panics.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.prefix_hits.reset();
        self.actions_executed.reset();
        self.actions_saved.reset();
        self.evictions.reset();
        self.workers.reset();
        self.queue_depth.reset();
        self.batch_wall.reset();
        self.job_wall.reset();
    }
}

/// Serializable form of [`PoolStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    pub jobs: u64,
    pub job_errors: u64,
    pub job_panics: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub prefix_hits: u64,
    pub actions_executed: u64,
    pub actions_saved: u64,
    pub evictions: u64,
    pub workers: i64,
    pub queue_depth: i64,
    pub batch_wall: HistogramSnapshot,
    pub job_wall: HistogramSnapshot,
}

/// The telemetry registry for one process.
///
/// Most code uses the shared [`global`] instance; tests may build private
/// instances with [`Telemetry::new`].
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Per-request-kind service latency (`Ping`, `Step`, ...).
    pub requests: Family<Histogram>,
    /// Per-request-kind error responses.
    pub request_errors: Family<Counter>,
    /// Service requests currently being processed.
    pub in_flight: Gauge,
    /// Requests that hit the client deadline.
    pub timeouts: Counter,
    /// Session panics caught by the service runtime.
    pub panics: Counter,
    /// Service restarts (explicit or transparent-recovery).
    pub restarts: Counter,
    /// Episodes transparently restored mid-flight by action replay after a
    /// service fault.
    pub recoveries: Counter,
    /// Replays whose reward metric diverged from the pre-fault value
    /// (surfaced to callers as a typed error rather than silent corruption).
    pub replay_divergences: Counter,
    /// TCP client reconnects after an I/O error on the service socket.
    pub reconnects: Counter,
    /// Session checkpoints serialized by the service worker.
    pub checkpoints_taken: Counter,
    /// Recoveries that restored from a checkpoint (suffix replay) instead of
    /// replaying the full action history.
    pub checkpoint_restores: Counter,
    /// Sessions destroyed in-service for exceeding a resource budget
    /// (wall-clock or state-size), answered with a typed in-band error.
    pub budget_kills: Counter,
    /// Services proactively restarted by the watchdog after missed
    /// heartbeats.
    pub watchdog_restarts: Counter,
    /// Circuit-breaker transitions to the open state.
    pub breaker_trips: Counter,
    /// Calls rejected fast because a circuit was open.
    pub breaker_fast_fails: Counter,
    /// Circuit-breaker transitions from open to half-open (probe allowed).
    pub breaker_half_opens: Counter,
    /// Episode-level environment statistics.
    pub episode: EpisodeStats,
    /// Per-observation-space computation latency.
    pub observations: Family<Histogram>,
    /// Per-pass profiling table.
    pub passes: PassTable,
    /// Differential-fuzzer statistics (`cg fuzz`).
    pub fuzz: FuzzStats,
    /// Parallel-evaluation pool and evaluation-cache statistics.
    pub pool: PoolStats,
    /// Structured trace ring.
    pub trace: TraceBuffer,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Captures every metric into a serializable snapshot with deterministic
    /// (sorted) key order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut requests = BTreeMap::new();
        self.requests.for_each(|k, h| {
            requests.insert(k.to_string(), h.snapshot());
        });
        let mut request_errors = BTreeMap::new();
        self.request_errors.for_each(|k, c| {
            request_errors.insert(k.to_string(), c.get());
        });
        let mut observations = BTreeMap::new();
        self.observations.for_each(|k, h| {
            observations.insert(k.to_string(), h.snapshot());
        });
        let mut passes = BTreeMap::new();
        self.passes.for_each(|k, p| {
            passes.insert(k.to_string(), p.snapshot());
        });
        TelemetrySnapshot {
            requests,
            request_errors,
            in_flight: self.in_flight.get(),
            timeouts: self.timeouts.get(),
            panics: self.panics.get(),
            restarts: self.restarts.get(),
            recoveries: self.recoveries.get(),
            replay_divergences: self.replay_divergences.get(),
            reconnects: self.reconnects.get(),
            checkpoints_taken: self.checkpoints_taken.get(),
            checkpoint_restores: self.checkpoint_restores.get(),
            budget_kills: self.budget_kills.get(),
            watchdog_restarts: self.watchdog_restarts.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_fast_fails: self.breaker_fast_fails.get(),
            breaker_half_opens: self.breaker_half_opens.get(),
            episode: self.episode.snapshot(),
            observations,
            passes,
            fuzz: self.fuzz.snapshot(),
            pool: self.pool.snapshot(),
            trace_events: self.trace.len() as u64,
            trace_dropped: self.trace.dropped(),
        }
    }

    /// Zeroes every metric and clears the trace ring.
    pub fn reset(&self) {
        self.requests.for_each(|_, h| h.reset());
        self.request_errors.for_each(|_, c| c.reset());
        self.in_flight.reset();
        self.timeouts.reset();
        self.panics.reset();
        self.restarts.reset();
        self.recoveries.reset();
        self.replay_divergences.reset();
        self.reconnects.reset();
        self.checkpoints_taken.reset();
        self.checkpoint_restores.reset();
        self.budget_kills.reset();
        self.watchdog_restarts.reset();
        self.breaker_trips.reset();
        self.breaker_fast_fails.reset();
        self.breaker_half_opens.reset();
        self.episode.reset();
        self.observations.for_each(|_, h| h.reset());
        self.passes.for_each(|_, p| p.reset());
        self.fuzz.reset();
        self.pool.reset();
        self.trace.clear();
    }
}

/// Point-in-time capture of a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub requests: BTreeMap<String, HistogramSnapshot>,
    pub request_errors: BTreeMap<String, u64>,
    pub in_flight: i64,
    pub timeouts: u64,
    pub panics: u64,
    pub restarts: u64,
    pub recoveries: u64,
    pub replay_divergences: u64,
    pub reconnects: u64,
    pub checkpoints_taken: u64,
    pub checkpoint_restores: u64,
    pub budget_kills: u64,
    pub watchdog_restarts: u64,
    pub breaker_trips: u64,
    pub breaker_fast_fails: u64,
    pub breaker_half_opens: u64,
    pub episode: EpisodeSnapshot,
    pub observations: BTreeMap<String, HistogramSnapshot>,
    pub passes: BTreeMap<String, PassSnapshot>,
    pub fuzz: FuzzSnapshot,
    pub pool: PoolSnapshot,
    pub trace_events: u64,
    pub trace_dropped: u64,
}

/// The process-wide registry.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Microseconds elapsed since the first telemetry call in this process.
pub fn now_micros() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Times a region and records it into a histogram (and optionally the trace
/// ring) when dropped. Construct via [`Timer::start`].
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing.
    pub fn start() -> Timer {
        Timer { start: Instant::now() }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops and records into `hist`, returning the elapsed duration.
    pub fn observe(self, hist: &Histogram) -> Duration {
        let d = self.start.elapsed();
        hist.record_duration(d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_below_sixteen() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantiles_on_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err < 0.07, "q={q}: got {got}, want ~{want}, err {err}");
        }
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn histogram_snapshot_and_reset() {
        let h = Histogram::new();
        h.record(100);
        h.record(300);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_micros, 400);
        assert_eq!(s.mean_micros, 200.0);
        assert_eq!(s.min_micros, 100);
        assert_eq!(s.max_micros, 300);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_micros, 0);
        assert_eq!(s.p50_micros, 0);
    }

    #[test]
    fn histogram_concurrent_recording() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 79_999);
        let total: u64 = (0..8u64).map(|t| (0..10_000).map(|i| t * 10_000 + i).sum::<u64>()).sum();
        assert_eq!(h.sum(), total);
    }

    #[test]
    fn counters_and_gauges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);

        let f = FloatSum::new();
        f.add(1.5);
        f.add(-0.25);
        assert!((f.get() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn float_sum_concurrent() {
        let f = Arc::new(FloatSum::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(f.get(), 2000.0);
    }

    #[test]
    fn family_reuses_instances() {
        let fam: Family<Counter> = Family::new();
        fam.get("a").inc();
        fam.get("a").inc();
        fam.get("b").inc();
        assert_eq!(fam.get("a").get(), 2);
        assert_eq!(fam.get("b").get(), 1);
        let mut keys = Vec::new();
        fam.for_each(|k, _| keys.push(k.to_string()));
        keys.sort();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn trace_ring_bounds_and_jsonl() {
        let t = TraceBuffer::with_capacity(4);
        for i in 0..6 {
            t.emit("step", format!("i={i}"), Duration::from_micros(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let events = t.events();
        assert_eq!(events[0].detail, "i=2");
        let jsonl = t.export_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        let back: TraceEvent = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back, events[0]);
    }

    #[test]
    fn registry_snapshot_roundtrips_through_json() {
        let t = Telemetry::new();
        t.requests.get("Step").record(120);
        t.request_errors.get("Step").inc();
        t.panics.inc();
        t.restarts.add(2);
        t.episode.steps.add(7);
        t.episode.reward_sum.add(3.5);
        t.passes.get("gvn").record(Duration::from_micros(42), true, -5);
        t.trace.emit("step", "b", Duration::from_micros(9));

        let snap = t.snapshot();
        assert_eq!(snap.requests["Step"].count, 1);
        assert_eq!(snap.request_errors["Step"], 1);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.restarts, 2);
        assert_eq!(snap.episode.steps, 7);
        assert_eq!(snap.passes["gvn"].calls, 1);
        assert_eq!(snap.passes["gvn"].inst_delta, -5);
        assert_eq!(snap.trace_events, 1);

        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        t.reset();
        let snap = t.snapshot();
        assert_eq!(snap.panics, 0);
        assert_eq!(snap.requests["Step"].count, 0);
        assert_eq!(snap.passes["gvn"].calls, 0);
        assert_eq!(snap.trace_events, 0);
    }

    #[test]
    fn timer_observes_into_histogram() {
        let h = Histogram::new();
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(1));
        let d = t.observe(&h);
        assert!(d >= Duration::from_millis(1));
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1000);
    }
}
