//! Telemetry primitives for the CompilerGym stack.
//!
//! Everything here is designed for hot paths: recording a latency sample or
//! bumping a counter is a handful of relaxed atomic operations, with no
//! allocation and no locking once a metric handle exists. Keyed metric
//! families take a short read-lock to resolve a name to a handle; callers on
//! hot paths should resolve once and reuse the `Arc`.
//!
//! The crate exposes:
//!
//! - [`Counter`] / [`Gauge`] / [`FloatSum`] — scalar atomics.
//! - [`Histogram`] — a log-linear atomic histogram over microsecond values
//!   with ~6% worst-case quantile error (16 sub-buckets per power of two).
//! - [`Family`] — name-keyed lazily-created metric instances.
//! - [`PassTable`] — per-compiler-pass call counts, cumulative wall time,
//!   and instruction-count deltas.
//! - [`TraceBuffer`] — a bounded ring of structured [`TraceEvent`]s with
//!   JSON-lines export.
//! - [`Telemetry`] — the registry tying the above together, with a process
//!   [`global`] instance, [`Telemetry::snapshot`] into the serializable
//!   [`TelemetrySnapshot`], and [`Telemetry::reset`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

pub mod export;

// ---------------------------------------------------------------------------
// Scalar metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (e.g. requests currently in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A lock-free accumulating `f64` sum (compare-exchange on the bit pattern).
#[derive(Debug, Default)]
pub struct FloatSum(AtomicU64);

impl FloatSum {
    /// Creates a sum at `0.0` (whose bit pattern is all zeroes).
    pub const fn new() -> FloatSum {
        FloatSum(AtomicU64::new(0))
    }

    /// Adds `x` to the sum.
    pub fn add(&self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current sum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Zeroes the sum.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Values below 16 get exact buckets; above, each power of two splits into
/// `SUBBUCKETS` linear sub-buckets, bounding relative quantile error by
/// `1/SUBBUCKETS`.
const SUBBUCKETS: usize = 16;
/// Bucket count covering the full `u64` range: 16 exact + 60 exponent groups.
const BUCKETS: usize = SUBBUCKETS + (64 - 4) * SUBBUCKETS;

/// A concurrent log-linear histogram of `u64` samples (microseconds by
/// convention throughout this workspace).
///
/// Recording is wait-free aside from the `fetch_min`/`fetch_max` used to keep
/// exact extremes. Quantiles are computed on demand by walking bucket counts;
/// under concurrent recording they are a consistent-enough approximation, not
/// a linearizable snapshot.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUBBUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // >= 4 here
        let sub = ((v >> (exp - 4)) & (SUBBUCKETS as u64 - 1)) as usize;
        (exp - 3) * SUBBUCKETS + sub
    }

    /// A representative (midpoint) value for a bucket index.
    fn bucket_value(i: usize) -> u64 {
        if i < SUBBUCKETS {
            return i as u64;
        }
        let exp = i / SUBBUCKETS + 3;
        let sub = (i % SUBBUCKETS) as u64;
        let base = 1u64 << exp;
        let width = 1u64 << (exp - 4);
        base + sub * width + width / 2
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`), or 0 if empty. The returned
    /// value is exact for samples below 16 and within ~6% above.
    ///
    /// The edge ranks are exact regardless of bucket geometry: the lowest
    /// rank is the recorded minimum and the highest the recorded maximum, so
    /// `quantile(0.0)` / `quantile(1.0)` never report a bucket bound instead
    /// of an observed sample (even when min and max share a bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank <= 1 {
            return self.min();
        }
        if rank >= total {
            return self.max();
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Clamp into the exactly-tracked extremes so p99 never
                // exceeds max nor p0 undercuts min.
                return Self::bucket_value(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Zeroes all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Captures the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum_micros: self.sum(),
            mean_micros: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            min_micros: self.min(),
            p50_micros: self.quantile(0.50),
            p90_micros: self.quantile(0.90),
            p99_micros: self.quantile(0.99),
            max_micros: self.max(),
        }
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_micros: u64,
    pub mean_micros: f64,
    pub min_micros: u64,
    pub p50_micros: u64,
    pub p90_micros: u64,
    pub p99_micros: u64,
    pub max_micros: u64,
}

// ---------------------------------------------------------------------------
// Keyed families
// ---------------------------------------------------------------------------

/// A name-keyed family of metrics, created lazily on first use.
#[derive(Debug, Default)]
pub struct Family<T> {
    inner: RwLock<HashMap<String, Arc<T>>>,
}

impl<T: Default> Family<T> {
    /// Creates an empty family.
    pub fn new() -> Family<T> {
        Family {
            inner: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the metric for `key`, creating it on first use. Hot paths
    /// should cache the returned `Arc` rather than re-resolving per event.
    pub fn get(&self, key: &str) -> Arc<T> {
        if let Some(m) = self.inner.read().get(key) {
            return Arc::clone(m);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.entry(key.to_string())
                .or_insert_with(|| Arc::new(T::default())),
        )
    }

    /// Visits every `(key, metric)` pair.
    pub fn for_each(&self, mut f: impl FnMut(&str, &T)) {
        for (k, v) in self.inner.read().iter() {
            f(k, v);
        }
    }

    /// Removes all entries.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

// ---------------------------------------------------------------------------
// Per-pass profiling
// ---------------------------------------------------------------------------

/// Accumulated profile of one compiler pass across all invocations.
#[derive(Debug, Default)]
pub struct PassStats {
    calls: Counter,
    total_micros: Counter,
    changed: Counter,
    inst_delta: AtomicI64,
    wall: Histogram,
}

impl PassStats {
    /// Records one invocation: its wall time, whether it changed the module,
    /// and the signed instruction-count delta it caused.
    pub fn record(&self, wall: Duration, changed: bool, inst_delta: i64) {
        self.calls.inc();
        self.total_micros
            .add(wall.as_micros().min(u64::MAX as u128) as u64);
        if changed {
            self.changed.inc();
        }
        self.inst_delta.fetch_add(inst_delta, Ordering::Relaxed);
        self.wall.record_duration(wall);
    }

    /// Captures the summary.
    pub fn snapshot(&self) -> PassSnapshot {
        let wall = self.wall.snapshot();
        PassSnapshot {
            calls: self.calls.get(),
            total_micros: self.total_micros.get(),
            changed: self.changed.get(),
            inst_delta: self.inst_delta.load(Ordering::Relaxed),
            p50_micros: wall.p50_micros,
            p99_micros: wall.p99_micros,
        }
    }

    fn reset(&self) {
        self.calls.reset();
        self.total_micros.reset();
        self.changed.reset();
        self.inst_delta.store(0, Ordering::Relaxed);
        self.wall.reset();
    }
}

/// Summary of one pass in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassSnapshot {
    pub calls: u64,
    pub total_micros: u64,
    pub changed: u64,
    pub inst_delta: i64,
    /// Median single-invocation wall time.
    pub p50_micros: u64,
    /// Tail single-invocation wall time: regressions in a pass's worst
    /// case show up here long before they move the total.
    pub p99_micros: u64,
}

/// Per-pass profiles keyed by pass name.
pub type PassTable = Family<PassStats>;

// ---------------------------------------------------------------------------
// Differential-fuzzing statistics
// ---------------------------------------------------------------------------

/// Counters for the differential pass-pipeline fuzzer (`cg fuzz`).
///
/// `blame` attributes divergences to individual passes: every pass that
/// survives pipeline shrinking (i.e. is a member of a minimal failing
/// subsequence) gets one count, so persistent offenders surface in
/// `cg stats` even across many fuzz runs.
#[derive(Debug, Default)]
pub struct FuzzStats {
    /// Fuzz cases executed (one generated module + one sampled pipeline).
    pub cases: Counter,
    /// Cases whose oracle comparison diverged (miscompilations found).
    pub divergences: Counter,
    /// Divergences successfully shrunk to a minimal reproducer.
    pub shrunk: Counter,
    /// Cases where the IR verifier rejected the module after a pass.
    pub verifier_rejects: Counter,
    /// Cases where a pass panicked.
    pub pass_panics: Counter,
    /// Oracle executions (reference + optimized runs, all corpus inputs).
    pub oracle_runs: Counter,
    /// Per-pass blame counts (membership in a minimal failing pipeline).
    pub blame: Family<Counter>,
    /// Wall time per fuzz case, including shrinking.
    pub case_wall: Histogram,
}

impl FuzzStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> FuzzSnapshot {
        let mut blame = BTreeMap::new();
        self.blame.for_each(|k, c| {
            blame.insert(k.to_string(), c.get());
        });
        FuzzSnapshot {
            cases: self.cases.get(),
            divergences: self.divergences.get(),
            shrunk: self.shrunk.get(),
            verifier_rejects: self.verifier_rejects.get(),
            pass_panics: self.pass_panics.get(),
            oracle_runs: self.oracle_runs.get(),
            blame,
            case_wall: self.case_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.cases.reset();
        self.divergences.reset();
        self.shrunk.reset();
        self.verifier_rejects.reset();
        self.pass_panics.reset();
        self.oracle_runs.reset();
        self.blame.for_each(|_, c| c.reset());
        self.case_wall.reset();
    }
}

/// Serializable form of [`FuzzStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzSnapshot {
    pub cases: u64,
    pub divergences: u64,
    pub shrunk: u64,
    pub verifier_rejects: u64,
    pub pass_panics: u64,
    pub oracle_runs: u64,
    pub blame: BTreeMap<String, u64>,
    pub case_wall: HistogramSnapshot,
}

// ---------------------------------------------------------------------------
// Structured tracing: spans, context propagation, flight recorder
// ---------------------------------------------------------------------------

/// One flat trace record, kept for wire compatibility with pre-span tooling.
///
/// [`SpanRecord`]'s serialized field set is a superset of this one, so JSONL
/// produced by the current [`TraceBuffer`] still parses as `TraceEvent` (the
/// extra keys are ignored), and old `TraceEvent` lines parse as `SpanRecord`
/// (the missing span fields default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since process start when the span *ended*.
    pub ts_micros: u64,
    /// Span name, e.g. `step`, `observation:Autophase`, `pass:gvn`,
    /// `service:restart`.
    pub span: String,
    /// Free-form context (benchmark id, action name, error text, ...).
    pub detail: String,
    /// Span duration in microseconds (0 for instantaneous events).
    pub dur_micros: u64,
}

/// Typed outcome of a span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanStatus {
    /// Completed normally.
    #[default]
    Ok,
    /// Completed with an error.
    Error,
    /// An attempt that failed and was retried by a higher layer.
    Retried,
    /// A fault that the recovery ladder repaired (replay / restore).
    Recovered,
    /// Terminated in-band by a resource budget.
    BudgetExceeded,
    /// Rejected fast because a circuit breaker was open.
    CircuitOpen,
}

/// The identity a span propagates to its children — across threads via
/// [`enter_context`] and across the RPC boundary via the codec's metadata
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Shared by every span in one logical operation (e.g. one `env.step()`).
    pub trace_id: u64,
    /// The span that children created under this context parent to.
    pub span_id: u64,
}

/// One completed span. Field names are a superset of [`TraceEvent`] so the
/// two formats interparse (see `TraceEvent` docs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Microseconds since process start when the span ended.
    pub ts_micros: u64,
    /// Span name.
    pub span: String,
    /// Free-form context.
    pub detail: String,
    /// Span duration in microseconds.
    pub dur_micros: u64,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id, or `None` for a trace root.
    pub parent_id: Option<u64>,
    /// Microseconds since process start when the span started.
    pub start_micros: u64,
    /// Typed outcome.
    pub status: SpanStatus,
    /// Key-value attributes.
    pub attrs: Vec<(String, String)>,
    /// Global record sequence number (total order across shards).
    pub seq: u64,
}

// Hand-written so legacy [`TraceEvent`] lines (no span identity) still parse:
// every post-`TraceEvent` field falls back to its default when absent.
impl serde::Deserialize for SpanRecord {
    fn from_value(v: &serde::value::Value) -> Result<SpanRecord, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::new(format!("expected object, got {}", v.kind())))?;
        fn opt<T: serde::Deserialize>(
            obj: &[(String, serde::value::Value)],
            key: &str,
        ) -> Result<Option<T>, serde::DeError> {
            serde::field(obj, key)
        }
        Ok(SpanRecord {
            ts_micros: serde::field(obj, "ts_micros")?,
            span: serde::field(obj, "span")?,
            detail: serde::field(obj, "detail")?,
            dur_micros: serde::field(obj, "dur_micros")?,
            trace_id: opt(obj, "trace_id")?.unwrap_or(0),
            span_id: opt(obj, "span_id")?.unwrap_or(0),
            parent_id: opt(obj, "parent_id")?,
            start_micros: opt(obj, "start_micros")?.unwrap_or(0),
            status: opt::<SpanStatus>(obj, "status")?.unwrap_or_default(),
            attrs: opt(obj, "attrs")?.unwrap_or_default(),
            seq: opt(obj, "seq")?.unwrap_or(0),
        })
    }
}

/// Process-wide id allocator for trace and span ids (never zero).
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CONTEXT_STACK: std::cell::RefCell<Vec<TraceContext>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost active [`TraceContext`] on this thread, if any.
pub fn current_context() -> Option<TraceContext> {
    CONTEXT_STACK.with(|c| c.borrow().last().copied())
}

/// Makes `ctx` the current context on this thread until the guard drops.
/// This is how context crosses threads (worker dispatch, step runners) and
/// how a deserialized remote context is installed on the service side.
#[must_use]
pub fn enter_context(ctx: TraceContext) -> ContextGuard {
    CONTEXT_STACK.with(|c| c.borrow_mut().push(ctx));
    ContextGuard {
        span_id: ctx.span_id,
    }
}

/// Pops its context from the thread's stack on drop. Out-of-order drops are
/// tolerated (the matching entry is removed wherever it sits).
#[derive(Debug)]
pub struct ContextGuard {
    span_id: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT_STACK.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|x| x.span_id == self.span_id) {
                stack.remove(pos);
            }
        });
    }
}

/// An in-progress span. Created by [`TraceBuffer::span`]; records itself into
/// the ring when dropped (or via [`Span::finish`]). While alive it is the
/// current context on the creating thread, so nested `emit`s and spans
/// parent to it automatically.
pub struct Span<'a> {
    buf: &'a TraceBuffer,
    name: String,
    detail: String,
    attrs: Vec<(String, String)>,
    ctx: TraceContext,
    parent_id: Option<u64>,
    start: Instant,
    start_micros: u64,
    status: SpanStatus,
    guard: Option<ContextGuard>,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("ctx", &self.ctx)
            .finish()
    }
}

impl Span<'_> {
    /// The context children should parent to (this span's identity).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Sets the typed outcome (default [`SpanStatus::Ok`]).
    pub fn set_status(&mut self, status: SpanStatus) {
        self.status = status;
    }

    /// Sets the free-form detail string.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// Appends a key-value attribute.
    pub fn attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        // Pop the context before recording so the record routes with the
        // span's own identity but siblings created after see the parent.
        drop(self.guard.take());
        let dur = self.start.elapsed();
        self.buf.record(SpanRecord {
            ts_micros: now_micros(),
            span: std::mem::take(&mut self.name),
            detail: std::mem::take(&mut self.detail),
            dur_micros: dur.as_micros().min(u64::MAX as u128) as u64,
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            start_micros: self.start_micros,
            status: self.status,
            attrs: std::mem::take(&mut self.attrs),
            seq: 0,
        });
    }
}

// ---------------------------------------------------------------------------
// Episode flight recorder
// ---------------------------------------------------------------------------

/// Episodes retained by the flight recorder.
pub const DEFAULT_EPISODE_CAPACITY: usize = 64;
/// Spans retained per recorded episode.
pub const DEFAULT_EPISODE_SPAN_CAPACITY: usize = 4096;

/// One recorded episode: identity, lifetime, and every span routed to it
/// (up to the per-episode cap, with honest drop accounting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Recorder-assigned id (monotonic from 1).
    pub episode_id: u64,
    /// Environment id (e.g. `llvm-v0`).
    pub env_id: String,
    /// Benchmark URI.
    pub benchmark: String,
    /// When `begin_episode` was called (process-relative microseconds).
    pub started_micros: u64,
    /// When `end_episode` was called; 0 while the episode is open.
    pub ended_micros: u64,
    /// Trace ids bound to this episode (one per step, typically).
    pub trace_ids: Vec<u64>,
    /// Spans routed to this episode, in record order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the per-episode cap was reached.
    pub dropped_spans: u64,
}

/// A lightweight listing entry for `cg trace` (no span payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSummary {
    pub episode_id: u64,
    pub env_id: String,
    pub benchmark: String,
    pub started_micros: u64,
    pub ended_micros: u64,
    pub spans: u64,
    pub dropped_spans: u64,
}

#[derive(Debug, Default)]
struct RecorderInner {
    episodes: std::collections::VecDeque<EpisodeRecord>,
    /// trace_id → episode_id routing table.
    bindings: HashMap<u64, u64>,
    next_id: u64,
}

/// Last-N-episodes ring. Spans are routed here (in addition to the flat
/// ring) when their trace id has been bound to an episode, so a whole
/// episode's span trees can be reconstructed after the fact.
#[derive(Debug)]
pub struct EpisodeRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
    span_capacity: usize,
    recorded: Counter,
    dropped_episodes: Counter,
    dropped_spans: Counter,
}

impl Default for EpisodeRecorder {
    fn default() -> EpisodeRecorder {
        EpisodeRecorder::new(DEFAULT_EPISODE_CAPACITY, DEFAULT_EPISODE_SPAN_CAPACITY)
    }
}

impl EpisodeRecorder {
    /// Creates a recorder keeping at most `capacity` episodes of at most
    /// `span_capacity` spans each.
    pub fn new(capacity: usize, span_capacity: usize) -> EpisodeRecorder {
        EpisodeRecorder {
            inner: Mutex::new(RecorderInner::default()),
            capacity: capacity.max(1),
            span_capacity: span_capacity.max(1),
            recorded: Counter::new(),
            dropped_episodes: Counter::new(),
            dropped_spans: Counter::new(),
        }
    }

    /// Opens a new episode and returns its id, evicting the oldest episode
    /// (and its bindings) if the ring is full.
    pub fn begin(&self, env_id: &str, benchmark: &str) -> u64 {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        if inner.episodes.len() == self.capacity {
            if let Some(old) = inner.episodes.pop_front() {
                for t in &old.trace_ids {
                    inner.bindings.remove(t);
                }
                self.dropped_episodes.inc();
            }
        }
        inner.episodes.push_back(EpisodeRecord {
            episode_id: id,
            env_id: env_id.to_string(),
            benchmark: benchmark.to_string(),
            started_micros: now_micros(),
            ended_micros: 0,
            trace_ids: Vec::new(),
            spans: Vec::new(),
            dropped_spans: 0,
        });
        self.recorded.inc();
        id
    }

    /// Routes every span of `trace_id` to `episode_id` from now on. No-op if
    /// the episode has been evicted.
    pub fn bind(&self, trace_id: u64, episode_id: u64) {
        let mut inner = self.inner.lock();
        let Some(ep) = inner
            .episodes
            .iter_mut()
            .find(|e| e.episode_id == episode_id)
        else {
            return;
        };
        ep.trace_ids.push(trace_id);
        inner.bindings.insert(trace_id, episode_id);
    }

    /// Marks an episode ended (it keeps receiving late spans until evicted).
    pub fn end(&self, episode_id: u64) {
        let mut inner = self.inner.lock();
        if let Some(ep) = inner
            .episodes
            .iter_mut()
            .find(|e| e.episode_id == episode_id)
        {
            ep.ended_micros = now_micros();
        }
    }

    fn route(&self, rec: &SpanRecord) {
        let mut inner = self.inner.lock();
        let Some(&episode_id) = inner.bindings.get(&rec.trace_id) else {
            return;
        };
        let span_capacity = self.span_capacity;
        let Some(ep) = inner
            .episodes
            .iter_mut()
            .find(|e| e.episode_id == episode_id)
        else {
            return;
        };
        if ep.spans.len() >= span_capacity {
            ep.dropped_spans += 1;
            self.dropped_spans.inc();
        } else {
            ep.spans.push(rec.clone());
        }
    }

    /// Copies out one episode.
    pub fn episode(&self, episode_id: u64) -> Option<EpisodeRecord> {
        self.inner
            .lock()
            .episodes
            .iter()
            .find(|e| e.episode_id == episode_id)
            .cloned()
    }

    /// Id of the most recently opened episode.
    pub fn last_episode_id(&self) -> Option<u64> {
        self.inner.lock().episodes.back().map(|e| e.episode_id)
    }

    /// Listing of retained episodes, oldest first.
    pub fn summaries(&self) -> Vec<EpisodeSummary> {
        self.inner
            .lock()
            .episodes
            .iter()
            .map(|e| EpisodeSummary {
                episode_id: e.episode_id,
                env_id: e.env_id.clone(),
                benchmark: e.benchmark.clone(),
                started_micros: e.started_micros,
                ended_micros: e.ended_micros,
                spans: e.spans.len() as u64,
                dropped_spans: e.dropped_spans,
            })
            .collect()
    }

    /// Episodes opened since the last clear.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Episodes evicted by the capacity bound.
    pub fn dropped_episodes(&self) -> u64 {
        self.dropped_episodes.get()
    }

    /// Spans discarded across all episodes by the per-episode cap.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.get()
    }

    /// Discards all episodes, bindings, and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.episodes.clear();
        inner.bindings.clear();
        self.recorded.reset();
        self.dropped_episodes.reset();
        self.dropped_spans.reset();
    }
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// Shard count for the span ring (capped by the ring's capacity).
const TRACE_SHARDS: usize = 8;

/// A bounded, sharded ring of [`SpanRecord`]s with an embedded episode
/// flight recorder. When a shard is full its oldest record is dropped;
/// `dropped()` reports how many.
///
/// Records are spread across shards round-robin by sequence number, so
/// concurrent recorders contend on different locks; `events()` re-sorts by
/// the global sequence.
pub struct TraceBuffer {
    shards: Vec<Mutex<std::collections::VecDeque<SpanRecord>>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: Counter,
    recorder: EpisodeRecorder,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::with_capacity(65_536)
    }
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        let shards = TRACE_SHARDS.min(capacity);
        TraceBuffer {
            shards: (0..shards)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            capacity,
            seq: AtomicU64::new(0),
            dropped: Counter::new(),
            recorder: EpisodeRecorder::default(),
        }
    }

    /// Appends a completed span record, evicting the oldest in its shard if
    /// full, and routes it to the flight recorder when its trace is bound to
    /// an episode.
    pub fn record(&self, mut rec: SpanRecord) {
        rec.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.recorder.route(&rec);
        let shards = self.shards.len();
        let shard = (rec.seq as usize) % shards;
        // Spread any capacity remainder over the low shards so the total
        // bound is exactly `capacity`.
        let shard_capacity = self.capacity / shards + usize::from(shard < self.capacity % shards);
        let mut q = self.shards[shard].lock();
        if q.len() >= shard_capacity {
            q.pop_front();
            self.dropped.inc();
        }
        q.push_back(rec);
    }

    /// Appends an instantaneous-or-timed event with [`SpanStatus::Ok`],
    /// parented to the thread's current context (a fresh root otherwise).
    pub fn emit(&self, span: impl Into<String>, detail: impl Into<String>, dur: Duration) {
        self.emit_status(span, detail, dur, SpanStatus::Ok);
    }

    /// [`TraceBuffer::emit`] with an explicit status.
    pub fn emit_status(
        &self,
        span: impl Into<String>,
        detail: impl Into<String>,
        dur: Duration,
        status: SpanStatus,
    ) {
        let end = now_micros();
        let dur_micros = dur.as_micros().min(u64::MAX as u128) as u64;
        let (trace_id, parent_id) = match current_context() {
            Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
            None => (next_id(), None),
        };
        self.record(SpanRecord {
            ts_micros: end,
            span: span.into(),
            detail: detail.into(),
            dur_micros,
            trace_id,
            span_id: next_id(),
            parent_id,
            start_micros: end.saturating_sub(dur_micros),
            status,
            attrs: Vec::new(),
            seq: 0,
        });
    }

    /// Opens a span parented to the thread's current context (a fresh trace
    /// root otherwise). The span is current until it drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        let parent = current_context();
        self.span_impl(name.into(), parent)
    }

    /// Opens a root span of a brand-new trace, ignoring any ambient context.
    pub fn root_span(&self, name: impl Into<String>) -> Span<'_> {
        self.span_impl(name.into(), None)
    }

    /// Opens a span under an explicit (e.g. remote) parent context.
    pub fn span_with_parent(&self, name: impl Into<String>, parent: TraceContext) -> Span<'_> {
        self.span_impl(name.into(), Some(parent))
    }

    fn span_impl(&self, name: String, parent: Option<TraceContext>) -> Span<'_> {
        let ctx = TraceContext {
            trace_id: parent.map_or_else(next_id, |p| p.trace_id),
            span_id: next_id(),
        };
        Span {
            buf: self,
            name,
            detail: String::new(),
            attrs: Vec::new(),
            ctx,
            parent_id: parent.map(|p| p.span_id),
            start: Instant::now(),
            start_micros: now_micros(),
            status: SpanStatus::Ok,
            guard: Some(enter_context(ctx)),
        }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Copies out the buffered records in global record order.
    pub fn events(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.lock().iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Serializes the buffer as JSON lines (one record per line). Lines also
    /// parse as the legacy [`TraceEvent`] (extra keys are ignored).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&serde_json::to_string(&ev).expect("span record serializes"));
            out.push('\n');
        }
        out
    }

    /// The episode flight recorder fed by this ring.
    pub fn recorder(&self) -> &EpisodeRecorder {
        &self.recorder
    }

    /// Opens a flight-recorder episode (see [`EpisodeRecorder::begin`]).
    pub fn begin_episode(&self, env_id: &str, benchmark: &str) -> u64 {
        self.recorder.begin(env_id, benchmark)
    }

    /// Routes a trace to a recorded episode (see [`EpisodeRecorder::bind`]).
    pub fn bind_episode(&self, trace_id: u64, episode_id: u64) {
        self.recorder.bind(trace_id, episode_id);
    }

    /// Marks a recorded episode ended (see [`EpisodeRecorder::end`]).
    pub fn end_episode(&self, episode_id: u64) {
        self.recorder.end(episode_id);
    }

    /// Discards all buffered records, the dropped count, and the episode
    /// recorder's contents.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.dropped.reset();
        self.recorder.clear();
    }
}

// ---------------------------------------------------------------------------
// SLO tracking
// ---------------------------------------------------------------------------

/// A step-latency service-level objective: steps at or under the objective
/// are "good", the rest "bad". Disabled until [`StepSlo::configure`] sets a
/// non-zero objective.
#[derive(Debug)]
pub struct StepSlo {
    objective_micros: AtomicU64,
    /// Availability target (e.g. 0.99) as `f64` bits.
    target_bits: AtomicU64,
    good: Counter,
    bad: Counter,
}

impl Default for StepSlo {
    fn default() -> StepSlo {
        StepSlo {
            objective_micros: AtomicU64::new(0),
            target_bits: AtomicU64::new(0.99f64.to_bits()),
            good: Counter::new(),
            bad: Counter::new(),
        }
    }
}

impl StepSlo {
    /// Sets the latency objective (0 disables) and availability target.
    pub fn configure(&self, objective: Duration, target: f64) {
        let micros = objective.as_micros().min(u64::MAX as u128) as u64;
        self.objective_micros.store(micros, Ordering::Relaxed);
        self.target_bits
            .store(target.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// The configured objective in microseconds (0 when disabled).
    pub fn objective_micros(&self) -> u64 {
        self.objective_micros.load(Ordering::Relaxed)
    }

    /// The configured availability target.
    pub fn target(&self) -> f64 {
        f64::from_bits(self.target_bits.load(Ordering::Relaxed))
    }

    /// Classifies one step duration against the objective. No-op while
    /// disabled.
    pub fn record(&self, dur: Duration) {
        let objective = self.objective_micros();
        if objective == 0 {
            return;
        }
        if dur.as_micros().min(u64::MAX as u128) as u64 <= objective {
            self.good.inc();
        } else {
            self.bad.inc();
        }
    }

    /// Steps meeting the objective.
    pub fn good(&self) -> u64 {
        self.good.get()
    }

    /// Steps missing the objective.
    pub fn bad(&self) -> u64 {
        self.bad.get()
    }

    /// Fraction of steps meeting the objective (1.0 when no data).
    pub fn compliance(&self) -> f64 {
        let good = self.good();
        let total = good + self.bad();
        if total == 0 {
            1.0
        } else {
            good as f64 / total as f64
        }
    }

    /// Error-budget burn rate: the observed bad fraction divided by the
    /// allowed bad fraction `1 - target`. 1.0 means burning exactly at
    /// budget; above 1.0 the SLO will be violated if sustained.
    pub fn burn_rate(&self) -> f64 {
        let good = self.good();
        let bad = self.bad();
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let allowed = (1.0 - self.target()).max(1e-9);
        (bad as f64 / total as f64) / allowed
    }

    /// Captures the summary.
    pub fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            objective_micros: self.objective_micros(),
            target: self.target(),
            good: self.good(),
            bad: self.bad(),
            compliance: self.compliance(),
            burn_rate: self.burn_rate(),
        }
    }

    /// Zeroes the good/bad counters, keeping the configuration.
    pub fn reset(&self) {
        self.good.reset();
        self.bad.reset();
    }
}

/// Serializable form of [`StepSlo`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSnapshot {
    pub objective_micros: u64,
    pub target: f64,
    pub good: u64,
    pub bad: u64,
    pub compliance: f64,
    pub burn_rate: f64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Episode-level environment statistics.
#[derive(Debug, Default)]
pub struct EpisodeStats {
    /// Completed `reset()` calls.
    pub episodes: Counter,
    /// Completed `step()` calls.
    pub steps: Counter,
    /// Actions applied (one step may apply several).
    pub actions_total: Counter,
    /// Actions that actually mutated the program state.
    pub actions_changed: Counter,
    /// Sum of all step rewards.
    pub reward_sum: FloatSum,
    /// `reset()` wall time.
    pub reset_wall: Histogram,
    /// `step()` wall time.
    pub step_wall: Histogram,
    /// `fork()` wall time.
    pub fork_wall: Histogram,
}

impl EpisodeStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> EpisodeSnapshot {
        EpisodeSnapshot {
            episodes: self.episodes.get(),
            steps: self.steps.get(),
            actions_total: self.actions_total.get(),
            actions_changed: self.actions_changed.get(),
            reward_sum: self.reward_sum.get(),
            reset_wall: self.reset_wall.snapshot(),
            step_wall: self.step_wall.snapshot(),
            fork_wall: self.fork_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.episodes.reset();
        self.steps.reset();
        self.actions_total.reset();
        self.actions_changed.reset();
        self.reward_sum.reset();
        self.reset_wall.reset();
        self.step_wall.reset();
        self.fork_wall.reset();
    }
}

/// Serializable form of [`EpisodeStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSnapshot {
    pub episodes: u64,
    pub steps: u64,
    pub actions_total: u64,
    pub actions_changed: u64,
    pub reward_sum: f64,
    pub reset_wall: HistogramSnapshot,
    pub step_wall: HistogramSnapshot,
    pub fork_wall: HistogramSnapshot,
}

/// Parallel-evaluation statistics: the `EnvPool` worker fleet and the
/// shared evaluation cache (exact hits plus prefix-trie reuse).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Evaluation jobs completed (hit or miss, success or error).
    pub jobs: Counter,
    /// Jobs that finished with an error outcome (after recovery gave up).
    pub job_errors: Counter,
    /// Worker panics caught mid-job (the worker's env is rebuilt).
    pub job_panics: Counter,
    /// Exact evaluation-cache hits: the full `(benchmark, sequence)` pair
    /// was already evaluated, so zero passes ran.
    pub cache_hits: Counter,
    /// Cache lookups that found no exact entry.
    pub cache_misses: Counter,
    /// Prefix-trie hits: a stored snapshot covered a proper prefix of the
    /// sequence, so only the novel suffix was executed.
    pub prefix_hits: Counter,
    /// Raw pass applications actually executed by pool workers.
    pub actions_executed: Counter,
    /// Pass applications skipped thanks to exact or prefix cache reuse.
    pub actions_saved: Counter,
    /// Cache entries discarded to respect the capacity bound.
    pub evictions: Counter,
    /// Worker threads currently alive across all pools.
    pub workers: Gauge,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Wall time of whole `evaluate_batch` calls.
    pub batch_wall: Histogram,
    /// Wall time of individual evaluation jobs.
    pub job_wall: Histogram,
}

impl PoolStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            jobs: self.jobs.get(),
            job_errors: self.job_errors.get(),
            job_panics: self.job_panics.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            prefix_hits: self.prefix_hits.get(),
            actions_executed: self.actions_executed.get(),
            actions_saved: self.actions_saved.get(),
            evictions: self.evictions.get(),
            workers: self.workers.get(),
            queue_depth: self.queue_depth.get(),
            batch_wall: self.batch_wall.snapshot(),
            job_wall: self.job_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.jobs.reset();
        self.job_errors.reset();
        self.job_panics.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.prefix_hits.reset();
        self.actions_executed.reset();
        self.actions_saved.reset();
        self.evictions.reset();
        self.workers.reset();
        self.queue_depth.reset();
        self.batch_wall.reset();
        self.job_wall.reset();
    }
}

/// Serializable form of [`PoolStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    pub jobs: u64,
    pub job_errors: u64,
    pub job_panics: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub prefix_hits: u64,
    pub actions_executed: u64,
    pub actions_saved: u64,
    pub evictions: u64,
    pub workers: i64,
    pub queue_depth: i64,
    pub batch_wall: HistogramSnapshot,
    pub job_wall: HistogramSnapshot,
}

/// Session-broker front-door statistics: admission control, per-tenant
/// quotas, queueing, load shedding, and graceful drain.
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// Sessions admitted through the front door (quota reserved).
    pub admitted: Counter,
    /// Requests refused by the admission ladder (capacity or drain), each
    /// answered with a typed in-band `Overloaded` carrying `retry_after_ms`.
    pub refused: Counter,
    /// Queued work shed under queue pressure (newest non-established first).
    pub shed: Counter,
    /// Refusals attributable to a per-tenant quota (concurrent sessions or
    /// actions-per-second), a subset of `refused`.
    pub quota_refusals: Counter,
    /// Graceful drains initiated.
    pub drains: Counter,
    /// Live sessions checkpointed during drain.
    pub drained_checkpoints: Counter,
    /// Live sessions across all broker workers (including reservations for
    /// admitted-but-not-yet-started sessions).
    pub sessions: Gauge,
    /// Requests queued in tenant FIFOs, not yet dispatched to a worker.
    pub queue_depth: Gauge,
    /// Open front-door TCP connections.
    pub connections: Gauge,
    /// Time requests spend queued before a worker picks them up.
    pub queue_wait: Histogram,
}

impl BrokerStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> BrokerSnapshot {
        BrokerSnapshot {
            admitted: self.admitted.get(),
            refused: self.refused.get(),
            shed: self.shed.get(),
            quota_refusals: self.quota_refusals.get(),
            drains: self.drains.get(),
            drained_checkpoints: self.drained_checkpoints.get(),
            sessions: self.sessions.get(),
            queue_depth: self.queue_depth.get(),
            connections: self.connections.get(),
            queue_wait: self.queue_wait.snapshot(),
        }
    }

    fn reset(&self) {
        self.admitted.reset();
        self.refused.reset();
        self.shed.reset();
        self.quota_refusals.reset();
        self.drains.reset();
        self.drained_checkpoints.reset();
        self.sessions.reset();
        self.queue_depth.reset();
        self.connections.reset();
        self.queue_wait.reset();
    }
}

/// Serializable form of [`BrokerStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    pub admitted: u64,
    pub refused: u64,
    pub shed: u64,
    pub quota_refusals: u64,
    pub drains: u64,
    pub drained_checkpoints: u64,
    pub sessions: i64,
    pub queue_depth: i64,
    pub connections: i64,
    pub queue_wait: HistogramSnapshot,
}

/// Transition-store (`cg-stdb`) statistics: WAL ingest, backpressure,
/// recovery, scrub/compaction, and the replay environment's hit rate.
#[derive(Debug, Default)]
pub struct StdbStats {
    /// Records durably appended to the write-ahead log.
    pub ingest_records: Counter,
    /// Payload bytes appended to the write-ahead log.
    pub ingest_bytes: Counter,
    /// Records dropped by the bounded ingest queue's backpressure policy
    /// (or abandoned after an unrecoverable append error). Every drop is
    /// counted — the store never loses a record silently.
    pub dropped_records: Counter,
    /// Appends retried after an in-process torn write was rolled back.
    pub append_retries: Counter,
    /// Replay-environment steps answered straight from the store.
    pub replay_hits: Counter,
    /// Replay-environment requests that fell through to the live compiler
    /// (missing or quarantined transition; traced as `stdb:miss`).
    pub replay_misses: Counter,
    /// Corrupt records quarantined during recovery or scrub (never
    /// silently skipped).
    pub quarantined_records: Counter,
    /// Torn tails truncated during recovery-on-open.
    pub torn_tails: Counter,
    /// Records whose checksum verified clean during scrub.
    pub scrub_ok: Counter,
    /// Checksum failures found by scrub.
    pub scrub_corrupt: Counter,
    /// Corrupt records repaired from an intact duplicate elsewhere in the
    /// log (content-addressed by the record checksum).
    pub scrub_repaired: Counter,
    /// Checkpoint files rejected at load time (bad checksum or torn JSON),
    /// quarantined and answered by the in-memory ring fallback.
    pub checkpoint_rejects: Counter,
    /// Compactions completed.
    pub compactions: Counter,
    /// Live WAL segment files.
    pub segments: Gauge,
    /// Bytes across live WAL segment files.
    pub store_bytes: Gauge,
    /// Wall time of individual WAL appends (writer thread side).
    pub append_wall: Histogram,
}

impl StdbStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> StdbSnapshot {
        StdbSnapshot {
            ingest_records: self.ingest_records.get(),
            ingest_bytes: self.ingest_bytes.get(),
            dropped_records: self.dropped_records.get(),
            append_retries: self.append_retries.get(),
            replay_hits: self.replay_hits.get(),
            replay_misses: self.replay_misses.get(),
            quarantined_records: self.quarantined_records.get(),
            torn_tails: self.torn_tails.get(),
            scrub_ok: self.scrub_ok.get(),
            scrub_corrupt: self.scrub_corrupt.get(),
            scrub_repaired: self.scrub_repaired.get(),
            checkpoint_rejects: self.checkpoint_rejects.get(),
            compactions: self.compactions.get(),
            segments: self.segments.get(),
            store_bytes: self.store_bytes.get(),
            append_wall: self.append_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.ingest_records.reset();
        self.ingest_bytes.reset();
        self.dropped_records.reset();
        self.append_retries.reset();
        self.replay_hits.reset();
        self.replay_misses.reset();
        self.quarantined_records.reset();
        self.torn_tails.reset();
        self.scrub_ok.reset();
        self.scrub_corrupt.reset();
        self.scrub_repaired.reset();
        self.checkpoint_rejects.reset();
        self.compactions.reset();
        self.segments.reset();
        self.store_bytes.reset();
        self.append_wall.reset();
    }
}

/// Serializable form of [`StdbStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StdbSnapshot {
    pub ingest_records: u64,
    pub ingest_bytes: u64,
    pub dropped_records: u64,
    pub append_retries: u64,
    pub replay_hits: u64,
    pub replay_misses: u64,
    pub quarantined_records: u64,
    pub torn_tails: u64,
    pub scrub_ok: u64,
    pub scrub_corrupt: u64,
    pub scrub_repaired: u64,
    pub checkpoint_rejects: u64,
    pub compactions: u64,
    pub segments: i64,
    pub store_bytes: i64,
    pub append_wall: HistogramSnapshot,
}

/// Wire-protocol statistics: bytes on the wire per codec and direction,
/// frame counts, codec negotiation outcomes, encode/decode latency, and the
/// pipelined in-flight window depth.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Payload bytes written as JSON frames (request + response bodies,
    /// excluding the 4-byte length prefix).
    pub tx_bytes_json: Counter,
    /// Payload bytes written as CGB1 binary frames.
    pub tx_bytes_binary: Counter,
    /// Payload bytes read as JSON frames.
    pub rx_bytes_json: Counter,
    /// Payload bytes read as CGB1 binary frames.
    pub rx_bytes_binary: Counter,
    /// Frames moved in either direction, both codecs.
    pub frames: Counter,
    /// Binary frames that failed to decode (answered in band as typed
    /// errors, never a dropped connection).
    pub decode_errors: Counter,
    /// Calls issued through the pipelined (multi-in-flight) path.
    pub pipelined_calls: Counter,
    /// Connections negotiated up to the binary codec.
    pub negotiations: Counter,
    /// Negotiation attempts that fell back to JSON (old peer).
    pub fallbacks: Counter,
    /// Requests currently in flight on pipelined sockets.
    pub in_flight: Gauge,
    /// Wall time spent encoding binary frames.
    pub encode_wall: Histogram,
    /// Wall time spent decoding binary frames.
    pub decode_wall: Histogram,
}

impl WireStats {
    /// Captures the summary.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            tx_bytes_json: self.tx_bytes_json.get(),
            tx_bytes_binary: self.tx_bytes_binary.get(),
            rx_bytes_json: self.rx_bytes_json.get(),
            rx_bytes_binary: self.rx_bytes_binary.get(),
            frames: self.frames.get(),
            decode_errors: self.decode_errors.get(),
            pipelined_calls: self.pipelined_calls.get(),
            negotiations: self.negotiations.get(),
            fallbacks: self.fallbacks.get(),
            in_flight: self.in_flight.get(),
            encode_wall: self.encode_wall.snapshot(),
            decode_wall: self.decode_wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.tx_bytes_json.reset();
        self.tx_bytes_binary.reset();
        self.rx_bytes_json.reset();
        self.rx_bytes_binary.reset();
        self.frames.reset();
        self.decode_errors.reset();
        self.pipelined_calls.reset();
        self.negotiations.reset();
        self.fallbacks.reset();
        self.in_flight.reset();
        self.encode_wall.reset();
        self.decode_wall.reset();
    }
}

/// Serializable form of [`WireStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSnapshot {
    pub tx_bytes_json: u64,
    pub tx_bytes_binary: u64,
    pub rx_bytes_json: u64,
    pub rx_bytes_binary: u64,
    pub frames: u64,
    pub decode_errors: u64,
    pub pipelined_calls: u64,
    pub negotiations: u64,
    pub fallbacks: u64,
    pub in_flight: i64,
    pub encode_wall: HistogramSnapshot,
    pub decode_wall: HistogramSnapshot,
}

/// The telemetry registry for one process.
///
/// Most code uses the shared [`global`] instance; tests may build private
/// instances with [`Telemetry::new`].
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Per-request-kind service latency (`Ping`, `Step`, ...).
    pub requests: Family<Histogram>,
    /// Per-request-kind error responses.
    pub request_errors: Family<Counter>,
    /// Service requests currently being processed.
    pub in_flight: Gauge,
    /// Requests that hit the client deadline.
    pub timeouts: Counter,
    /// Session panics caught by the service runtime.
    pub panics: Counter,
    /// Service restarts (explicit or transparent-recovery).
    pub restarts: Counter,
    /// Episodes transparently restored mid-flight by action replay after a
    /// service fault.
    pub recoveries: Counter,
    /// Replays whose reward metric diverged from the pre-fault value
    /// (surfaced to callers as a typed error rather than silent corruption).
    pub replay_divergences: Counter,
    /// TCP client reconnects after an I/O error on the service socket.
    pub reconnects: Counter,
    /// Session checkpoints serialized by the service worker.
    pub checkpoints_taken: Counter,
    /// Recoveries that restored from a checkpoint (suffix replay) instead of
    /// replaying the full action history.
    pub checkpoint_restores: Counter,
    /// Sessions destroyed in-service for exceeding a resource budget
    /// (wall-clock or state-size), answered with a typed in-band error.
    pub budget_kills: Counter,
    /// Services proactively restarted by the watchdog after missed
    /// heartbeats.
    pub watchdog_restarts: Counter,
    /// Circuit-breaker transitions to the open state.
    pub breaker_trips: Counter,
    /// Calls rejected fast because a circuit was open.
    pub breaker_fast_fails: Counter,
    /// Circuit-breaker transitions from open to half-open (probe allowed).
    pub breaker_half_opens: Counter,
    /// Episode-level environment statistics.
    pub episode: EpisodeStats,
    /// Per-observation-space computation latency.
    pub observations: Family<Histogram>,
    /// Per-pass profiling table.
    pub passes: PassTable,
    /// Differential-fuzzer statistics (`cg fuzz`).
    pub fuzz: FuzzStats,
    /// Parallel-evaluation pool and evaluation-cache statistics.
    pub pool: PoolStats,
    /// Multi-tenant session-broker front-door statistics.
    pub broker: BrokerStats,
    /// Transition-store (WAL ingest, scrub, replay) statistics.
    pub stdb: StdbStats,
    /// Wire-protocol (codec + pipelining) statistics.
    pub wire: WireStats,
    /// Structured trace ring with the embedded episode flight recorder.
    pub trace: TraceBuffer,
    /// Step-latency service-level objective tracking.
    pub slo: StepSlo,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Captures every metric into a serializable snapshot with deterministic
    /// (sorted) key order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut requests = BTreeMap::new();
        self.requests.for_each(|k, h| {
            requests.insert(k.to_string(), h.snapshot());
        });
        let mut request_errors = BTreeMap::new();
        self.request_errors.for_each(|k, c| {
            request_errors.insert(k.to_string(), c.get());
        });
        let mut observations = BTreeMap::new();
        self.observations.for_each(|k, h| {
            observations.insert(k.to_string(), h.snapshot());
        });
        let mut passes = BTreeMap::new();
        self.passes.for_each(|k, p| {
            passes.insert(k.to_string(), p.snapshot());
        });
        TelemetrySnapshot {
            requests,
            request_errors,
            in_flight: self.in_flight.get(),
            timeouts: self.timeouts.get(),
            panics: self.panics.get(),
            restarts: self.restarts.get(),
            recoveries: self.recoveries.get(),
            replay_divergences: self.replay_divergences.get(),
            reconnects: self.reconnects.get(),
            checkpoints_taken: self.checkpoints_taken.get(),
            checkpoint_restores: self.checkpoint_restores.get(),
            budget_kills: self.budget_kills.get(),
            watchdog_restarts: self.watchdog_restarts.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_fast_fails: self.breaker_fast_fails.get(),
            breaker_half_opens: self.breaker_half_opens.get(),
            episode: self.episode.snapshot(),
            observations,
            passes,
            fuzz: self.fuzz.snapshot(),
            pool: self.pool.snapshot(),
            broker: self.broker.snapshot(),
            stdb: self.stdb.snapshot(),
            wire: self.wire.snapshot(),
            trace_events: self.trace.len() as u64,
            trace_dropped: self.trace.dropped(),
            episodes_recorded: self.trace.recorder().recorded(),
            episodes_dropped: self.trace.recorder().dropped_episodes(),
            episode_spans_dropped: self.trace.recorder().dropped_spans(),
            slo: self.slo.snapshot(),
        }
    }

    /// Zeroes every metric and clears the trace ring.
    pub fn reset(&self) {
        self.requests.for_each(|_, h| h.reset());
        self.request_errors.for_each(|_, c| c.reset());
        self.in_flight.reset();
        self.timeouts.reset();
        self.panics.reset();
        self.restarts.reset();
        self.recoveries.reset();
        self.replay_divergences.reset();
        self.reconnects.reset();
        self.checkpoints_taken.reset();
        self.checkpoint_restores.reset();
        self.budget_kills.reset();
        self.watchdog_restarts.reset();
        self.breaker_trips.reset();
        self.breaker_fast_fails.reset();
        self.breaker_half_opens.reset();
        self.episode.reset();
        self.observations.for_each(|_, h| h.reset());
        self.passes.for_each(|_, p| p.reset());
        self.fuzz.reset();
        self.pool.reset();
        self.broker.reset();
        self.stdb.reset();
        self.wire.reset();
        self.trace.clear();
        self.slo.reset();
    }
}

/// Point-in-time capture of a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub requests: BTreeMap<String, HistogramSnapshot>,
    pub request_errors: BTreeMap<String, u64>,
    pub in_flight: i64,
    pub timeouts: u64,
    pub panics: u64,
    pub restarts: u64,
    pub recoveries: u64,
    pub replay_divergences: u64,
    pub reconnects: u64,
    pub checkpoints_taken: u64,
    pub checkpoint_restores: u64,
    pub budget_kills: u64,
    pub watchdog_restarts: u64,
    pub breaker_trips: u64,
    pub breaker_fast_fails: u64,
    pub breaker_half_opens: u64,
    pub episode: EpisodeSnapshot,
    pub observations: BTreeMap<String, HistogramSnapshot>,
    pub passes: BTreeMap<String, PassSnapshot>,
    pub fuzz: FuzzSnapshot,
    pub pool: PoolSnapshot,
    pub broker: BrokerSnapshot,
    pub stdb: StdbSnapshot,
    pub wire: WireSnapshot,
    pub trace_events: u64,
    pub trace_dropped: u64,
    pub episodes_recorded: u64,
    pub episodes_dropped: u64,
    pub episode_spans_dropped: u64,
    pub slo: SloSnapshot,
}

/// The process-wide registry.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Microseconds elapsed since the first telemetry call in this process.
pub fn now_micros() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64
}

/// Times a region and records it into a histogram (and optionally the trace
/// ring) when dropped. Construct via [`Timer::start`].
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing.
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops and records into `hist`, returning the elapsed duration.
    pub fn observe(self, hist: &Histogram) -> Duration {
        let d = self.start.elapsed();
        hist.record_duration(d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_below_sixteen() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantiles_on_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err < 0.07, "q={q}: got {got}, want ~{want}, err {err}");
        }
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn histogram_snapshot_and_reset() {
        let h = Histogram::new();
        h.record(100);
        h.record(300);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_micros, 400);
        assert_eq!(s.mean_micros, 200.0);
        assert_eq!(s.min_micros, 100);
        assert_eq!(s.max_micros, 300);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_micros, 0);
        assert_eq!(s.p50_micros, 0);
    }

    #[test]
    fn histogram_concurrent_recording() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 79_999);
        let total: u64 = (0..8u64)
            .map(|t| (0..10_000).map(|i| t * 10_000 + i).sum::<u64>())
            .sum();
        assert_eq!(h.sum(), total);
    }

    #[test]
    fn counters_and_gauges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);

        let f = FloatSum::new();
        f.add(1.5);
        f.add(-0.25);
        assert!((f.get() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn float_sum_concurrent() {
        let f = Arc::new(FloatSum::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(f.get(), 2000.0);
    }

    #[test]
    fn family_reuses_instances() {
        let fam: Family<Counter> = Family::new();
        fam.get("a").inc();
        fam.get("a").inc();
        fam.get("b").inc();
        assert_eq!(fam.get("a").get(), 2);
        assert_eq!(fam.get("b").get(), 1);
        let mut keys = Vec::new();
        fam.for_each(|k, _| keys.push(k.to_string()));
        keys.sort();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn trace_ring_bounds_and_jsonl() {
        let t = TraceBuffer::with_capacity(4);
        for i in 0..6 {
            t.emit("step", format!("i={i}"), Duration::from_micros(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let events = t.events();
        assert_eq!(events[0].detail, "i=2");
        let jsonl = t.export_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        let back: SpanRecord = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back, events[0]);
    }

    #[test]
    fn span_jsonl_parses_as_legacy_trace_event() {
        let t = TraceBuffer::with_capacity(8);
        t.emit("step", "x", Duration::from_micros(7));
        let line = t.export_jsonl();
        let legacy: TraceEvent = serde_json::from_str(line.lines().next().unwrap()).unwrap();
        assert_eq!(legacy.span, "step");
        assert_eq!(legacy.detail, "x");
        assert_eq!(legacy.dur_micros, 7);
        // And the reverse: an old flat event parses as a span record with
        // defaulted span identity.
        let old = serde_json::to_string(&legacy).unwrap();
        let rec: SpanRecord = serde_json::from_str(&old).unwrap();
        assert_eq!(rec.span, "step");
        assert_eq!(rec.parent_id, None);
        assert_eq!(rec.status, SpanStatus::Ok);
    }

    #[test]
    fn histogram_quantile_edges_return_recorded_extremes() {
        // Two samples in the same log-linear bucket: the bucket midpoint is
        // neither of them, so only exact edge handling gets these right.
        let h = Histogram::new();
        h.record(1000);
        h.record(1023);
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(0.01), 1000);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        // A singleton histogram reports its sample at every quantile.
        let h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn spans_nest_and_propagate_context() {
        let t = TraceBuffer::with_capacity(64);
        {
            let root = t.span("env:step");
            let root_ctx = root.context();
            {
                let mut child = t.span("rpc:Step");
                child.set_status(SpanStatus::Retried);
                child.attr("attempt", "1");
                assert_eq!(child.context().trace_id, root_ctx.trace_id);
            }
            t.emit("pass:gvn", "delta=-3", Duration::from_micros(5));
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        // Children record before the root (drop order), all one trace.
        let child = &events[0];
        let emitted = &events[1];
        let root = &events[2];
        assert_eq!(root.span, "env:step");
        assert_eq!(root.parent_id, None);
        assert_eq!(child.span, "rpc:Step");
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_eq!(child.status, SpanStatus::Retried);
        assert_eq!(child.attrs, vec![("attempt".to_string(), "1".to_string())]);
        assert_eq!(emitted.parent_id, Some(root.span_id));
        assert!(events.iter().all(|e| e.trace_id == root.trace_id));
    }

    #[test]
    fn context_crosses_threads_via_guard() {
        let t = Arc::new(TraceBuffer::with_capacity(64));
        let root = t.span("root");
        let ctx = root.context();
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            let _g = enter_context(ctx);
            t2.emit("remote", "", Duration::ZERO);
        })
        .join()
        .unwrap();
        drop(root);
        let events = t.events();
        let remote = events.iter().find(|e| e.span == "remote").unwrap();
        let root = events.iter().find(|e| e.span == "root").unwrap();
        assert_eq!(remote.parent_id, Some(root.span_id));
        assert_eq!(remote.trace_id, root.trace_id);
    }

    #[test]
    fn flight_recorder_routes_bound_traces_and_bounds_memory() {
        let t = TraceBuffer::with_capacity(1024);
        let rec = t.recorder();
        let ep = t.begin_episode("llvm-v0", "benchmark://cbench-v1/qsort");
        {
            let root = t.span("env:step");
            t.bind_episode(root.context().trace_id, ep);
            t.emit("pass:gvn", "", Duration::ZERO);
        }
        // An unbound trace does not land in the episode.
        t.emit("unrelated", "", Duration::ZERO);
        t.end_episode(ep);
        let episode = rec.episode(ep).unwrap();
        assert_eq!(episode.spans.len(), 2);
        assert!(episode.spans.iter().all(|s| s.span != "unrelated"));
        assert!(episode.ended_micros >= episode.started_micros);
        assert_eq!(rec.last_episode_id(), Some(ep));

        // Per-episode span cap drops honestly.
        let small = EpisodeRecorder::new(2, 3);
        let id = small.begin("llvm-v0", "b");
        small.bind(42, id);
        for i in 0..5 {
            small.route(&SpanRecord {
                ts_micros: i,
                span: "s".to_string(),
                detail: String::new(),
                dur_micros: 0,
                trace_id: 42,
                span_id: i,
                parent_id: None,
                start_micros: i,
                status: SpanStatus::Ok,
                attrs: Vec::new(),
                seq: i,
            });
        }
        let got = small.episode(id).unwrap();
        assert_eq!(got.spans.len(), 3);
        assert_eq!(got.dropped_spans, 2);
        assert_eq!(small.dropped_spans(), 2);

        // Episode ring eviction unbinds and counts.
        let id2 = small.begin("llvm-v0", "b2");
        let id3 = small.begin("llvm-v0", "b3");
        assert!(small.episode(id).is_none());
        assert_eq!(small.dropped_episodes(), 1);
        assert!(small.episode(id2).is_some() && small.episode(id3).is_some());
        // Spans of the evicted episode's trace no longer route anywhere.
        small.route(&SpanRecord {
            ts_micros: 0,
            span: "late".to_string(),
            detail: String::new(),
            dur_micros: 0,
            trace_id: 42,
            span_id: 99,
            parent_id: None,
            start_micros: 0,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
            seq: 99,
        });
        assert!(small.episode(id2).unwrap().spans.is_empty());
    }

    #[test]
    fn slo_tracks_good_bad_and_burn_rate() {
        let slo = StepSlo::default();
        // Disabled: nothing records.
        slo.record(Duration::from_secs(10));
        assert_eq!(slo.good() + slo.bad(), 0);
        assert_eq!(slo.compliance(), 1.0);
        assert_eq!(slo.burn_rate(), 0.0);

        slo.configure(Duration::from_millis(2), 0.9);
        for _ in 0..9 {
            slo.record(Duration::from_millis(1));
        }
        slo.record(Duration::from_millis(50));
        assert_eq!(slo.good(), 9);
        assert_eq!(slo.bad(), 1);
        assert!((slo.compliance() - 0.9).abs() < 1e-9);
        // Bad fraction exactly at the allowed fraction: burn rate 1.0.
        assert!((slo.burn_rate() - 1.0).abs() < 1e-9);
        slo.reset();
        assert_eq!(slo.good() + slo.bad(), 0);
        assert_eq!(slo.objective_micros(), 2000);
    }

    #[test]
    fn registry_snapshot_roundtrips_through_json() {
        let t = Telemetry::new();
        t.requests.get("Step").record(120);
        t.request_errors.get("Step").inc();
        t.panics.inc();
        t.restarts.add(2);
        t.episode.steps.add(7);
        t.episode.reward_sum.add(3.5);
        t.passes
            .get("gvn")
            .record(Duration::from_micros(42), true, -5);
        t.trace.emit("step", "b", Duration::from_micros(9));

        let snap = t.snapshot();
        assert_eq!(snap.requests["Step"].count, 1);
        assert_eq!(snap.request_errors["Step"], 1);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.restarts, 2);
        assert_eq!(snap.episode.steps, 7);
        assert_eq!(snap.passes["gvn"].calls, 1);
        assert_eq!(snap.passes["gvn"].inst_delta, -5);
        assert_eq!(snap.trace_events, 1);

        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        t.reset();
        let snap = t.snapshot();
        assert_eq!(snap.panics, 0);
        assert_eq!(snap.requests["Step"].count, 0);
        assert_eq!(snap.passes["gvn"].calls, 0);
        assert_eq!(snap.trace_events, 0);
    }

    #[test]
    fn timer_observes_into_histogram() {
        let h = Histogram::new();
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(1));
        let d = t.observe(&h);
        assert!(d >= Duration::from_millis(1));
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1000);
    }
}
