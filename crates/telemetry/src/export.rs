//! Metrics export: Prometheus text exposition, JSONL, and a minimal HTTP
//! scrape endpoint.
//!
//! Both renderers draw from the same intermediate [`MetricFamily`] list built
//! out of a [`TelemetrySnapshot`], so the two formats can never disagree on
//! what is exported. Histograms are exported as Prometheus *summaries*
//! (`quantile` labels plus `_sum`/`_count`); the recorded min and max ride
//! along as `quantile="0"` / `quantile="1"`, which [`crate::Histogram`]
//! tracks exactly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use crate::{HistogramSnapshot, TelemetrySnapshot};

/// One exported sample: optional name suffix (`_sum`, `_count`), labels, and
/// a value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Appended to the family name (empty for the base series).
    pub suffix: &'static str,
    /// Label pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A named group of samples sharing a type and help string.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Metric name (`cg_` prefix throughout).
    pub name: String,
    /// One-line help text.
    pub help: &'static str,
    /// Prometheus type: `counter`, `gauge`, or `summary`.
    pub kind: &'static str,
    /// The samples.
    pub samples: Vec<Sample>,
}

fn counter(name: &str, help: &'static str, value: u64) -> MetricFamily {
    MetricFamily {
        name: name.to_string(),
        help,
        kind: "counter",
        samples: vec![Sample {
            suffix: "",
            labels: Vec::new(),
            value: value as f64,
        }],
    }
}

fn gauge(name: &str, help: &'static str, value: f64) -> MetricFamily {
    MetricFamily {
        name: name.to_string(),
        help,
        kind: "gauge",
        samples: vec![Sample {
            suffix: "",
            labels: Vec::new(),
            value,
        }],
    }
}

fn labeled(label: &str, key: &str) -> Vec<(String, String)> {
    vec![(label.to_string(), key.to_string())]
}

fn summary_samples(h: &HistogramSnapshot, labels: &[(String, String)]) -> Vec<Sample> {
    let quantile = |q: &str, v: u64| {
        let mut l = labels.to_vec();
        l.push(("quantile".to_string(), q.to_string()));
        Sample {
            suffix: "",
            labels: l,
            value: v as f64,
        }
    };
    vec![
        quantile("0", h.min_micros),
        quantile("0.5", h.p50_micros),
        quantile("0.9", h.p90_micros),
        quantile("0.99", h.p99_micros),
        quantile("1", h.max_micros),
        Sample {
            suffix: "_sum",
            labels: labels.to_vec(),
            value: h.sum_micros as f64,
        },
        Sample {
            suffix: "_count",
            labels: labels.to_vec(),
            value: h.count as f64,
        },
    ]
}

fn summary(name: &str, help: &'static str, h: &HistogramSnapshot) -> MetricFamily {
    MetricFamily {
        name: name.to_string(),
        help,
        kind: "summary",
        samples: summary_samples(h, &[]),
    }
}

/// Flattens a snapshot into the exported metric families, in a deterministic
/// order.
pub fn collect(snap: &TelemetrySnapshot) -> Vec<MetricFamily> {
    let mut out = Vec::new();

    // Service requests, per kind.
    let mut req_counts = Vec::new();
    let mut req_latency = Vec::new();
    for (kind, h) in &snap.requests {
        req_counts.push(Sample {
            suffix: "",
            labels: labeled("kind", kind),
            value: h.count as f64,
        });
        req_latency.extend(summary_samples(h, &labeled("kind", kind)));
    }
    out.push(MetricFamily {
        name: "cg_requests_total".to_string(),
        help: "Service requests handled, by request kind.",
        kind: "counter",
        samples: req_counts,
    });
    out.push(MetricFamily {
        name: "cg_request_latency_micros".to_string(),
        help: "Service request latency in microseconds, by request kind.",
        kind: "summary",
        samples: req_latency,
    });
    out.push(MetricFamily {
        name: "cg_request_errors_total".to_string(),
        help: "Error responses, by request kind.",
        kind: "counter",
        samples: snap
            .request_errors
            .iter()
            .map(|(kind, v)| Sample {
                suffix: "",
                labels: labeled("kind", kind),
                value: *v as f64,
            })
            .collect(),
    });
    out.push(gauge(
        "cg_in_flight",
        "Service requests currently being processed.",
        snap.in_flight as f64,
    ));

    // Fault-tolerance counters.
    for (name, help, v) in [
        (
            "cg_timeouts_total",
            "Requests that hit the client deadline.",
            snap.timeouts,
        ),
        (
            "cg_panics_total",
            "Session panics caught by the service runtime.",
            snap.panics,
        ),
        ("cg_restarts_total", "Service restarts.", snap.restarts),
        (
            "cg_recoveries_total",
            "Episodes transparently recovered by replay.",
            snap.recoveries,
        ),
        (
            "cg_replay_divergences_total",
            "Replays whose reward metric diverged.",
            snap.replay_divergences,
        ),
        (
            "cg_reconnects_total",
            "TCP client reconnects.",
            snap.reconnects,
        ),
        (
            "cg_checkpoints_taken_total",
            "Session checkpoints serialized.",
            snap.checkpoints_taken,
        ),
        (
            "cg_checkpoint_restores_total",
            "Recoveries restored from a checkpoint.",
            snap.checkpoint_restores,
        ),
        (
            "cg_budget_kills_total",
            "Sessions killed in-band by a resource budget.",
            snap.budget_kills,
        ),
        (
            "cg_watchdog_restarts_total",
            "Watchdog-initiated restarts.",
            snap.watchdog_restarts,
        ),
        (
            "cg_breaker_trips_total",
            "Circuit-breaker open transitions.",
            snap.breaker_trips,
        ),
        (
            "cg_breaker_fast_fails_total",
            "Calls rejected by an open circuit.",
            snap.breaker_fast_fails,
        ),
        (
            "cg_breaker_half_opens_total",
            "Circuit-breaker half-open probes.",
            snap.breaker_half_opens,
        ),
    ] {
        out.push(counter(name, help, v));
    }

    // Episode statistics.
    out.push(counter(
        "cg_episodes_total",
        "Completed reset() calls.",
        snap.episode.episodes,
    ));
    out.push(counter(
        "cg_steps_total",
        "Completed step() calls.",
        snap.episode.steps,
    ));
    out.push(counter(
        "cg_actions_total",
        "Actions applied.",
        snap.episode.actions_total,
    ));
    out.push(counter(
        "cg_actions_changed_total",
        "Actions that mutated program state.",
        snap.episode.actions_changed,
    ));
    out.push(gauge(
        "cg_reward_sum",
        "Sum of all step rewards.",
        snap.episode.reward_sum,
    ));
    out.push(summary(
        "cg_reset_latency_micros",
        "reset() wall time in microseconds.",
        &snap.episode.reset_wall,
    ));
    out.push(summary(
        "cg_step_latency_micros",
        "step() wall time in microseconds.",
        &snap.episode.step_wall,
    ));
    out.push(summary(
        "cg_fork_latency_micros",
        "fork() wall time in microseconds.",
        &snap.episode.fork_wall,
    ));

    // Observation spaces.
    let mut obs = Vec::new();
    for (space, h) in &snap.observations {
        obs.extend(summary_samples(h, &labeled("space", space)));
    }
    out.push(MetricFamily {
        name: "cg_observation_latency_micros".to_string(),
        help: "Observation computation latency in microseconds, by space.",
        kind: "summary",
        samples: obs,
    });

    // Per-pass profile.
    let mut pass_calls = Vec::new();
    let mut pass_wall = Vec::new();
    let mut pass_changed = Vec::new();
    let mut pass_delta = Vec::new();
    for (pass, p) in &snap.passes {
        let labels = labeled("pass", pass);
        pass_calls.push(Sample {
            suffix: "",
            labels: labels.clone(),
            value: p.calls as f64,
        });
        pass_wall.push(Sample {
            suffix: "",
            labels: labels.clone(),
            value: p.total_micros as f64,
        });
        pass_changed.push(Sample {
            suffix: "",
            labels: labels.clone(),
            value: p.changed as f64,
        });
        pass_delta.push(Sample {
            suffix: "",
            labels,
            value: p.inst_delta as f64,
        });
    }
    out.push(MetricFamily {
        name: "cg_pass_calls_total".to_string(),
        help: "Pass invocations, by pass.",
        kind: "counter",
        samples: pass_calls,
    });
    out.push(MetricFamily {
        name: "cg_pass_wall_micros_total".to_string(),
        help: "Cumulative pass wall time in microseconds, by pass.",
        kind: "counter",
        samples: pass_wall,
    });
    out.push(MetricFamily {
        name: "cg_pass_changed_total".to_string(),
        help: "Invocations that changed the module, by pass.",
        kind: "counter",
        samples: pass_changed,
    });
    out.push(MetricFamily {
        name: "cg_pass_inst_delta".to_string(),
        help: "Cumulative signed instruction-count delta, by pass.",
        kind: "gauge",
        samples: pass_delta,
    });

    // Pool and cache.
    for (name, help, v) in [
        (
            "cg_pool_jobs_total",
            "Evaluation jobs completed.",
            snap.pool.jobs,
        ),
        (
            "cg_pool_job_errors_total",
            "Jobs that finished with an error.",
            snap.pool.job_errors,
        ),
        (
            "cg_pool_job_panics_total",
            "Worker panics caught mid-job.",
            snap.pool.job_panics,
        ),
        (
            "cg_cache_hits_total",
            "Exact evaluation-cache hits.",
            snap.pool.cache_hits,
        ),
        (
            "cg_cache_misses_total",
            "Evaluation-cache misses.",
            snap.pool.cache_misses,
        ),
        (
            "cg_cache_prefix_hits_total",
            "Prefix-trie snapshot hits.",
            snap.pool.prefix_hits,
        ),
        (
            "cg_actions_executed_total",
            "Pass applications executed by workers.",
            snap.pool.actions_executed,
        ),
        (
            "cg_actions_saved_total",
            "Pass applications skipped via cache reuse.",
            snap.pool.actions_saved,
        ),
        (
            "cg_cache_evictions_total",
            "Cache entries evicted.",
            snap.pool.evictions,
        ),
    ] {
        out.push(counter(name, help, v));
    }
    out.push(gauge(
        "cg_pool_workers",
        "Worker threads alive.",
        snap.pool.workers as f64,
    ));
    out.push(gauge(
        "cg_pool_queue_depth",
        "Jobs queued, not yet running.",
        snap.pool.queue_depth as f64,
    ));
    out.push(summary(
        "cg_pool_batch_latency_micros",
        "evaluate_batch wall time in microseconds.",
        &snap.pool.batch_wall,
    ));
    out.push(summary(
        "cg_pool_job_latency_micros",
        "Evaluation job wall time in microseconds.",
        &snap.pool.job_wall,
    ));

    // Session-broker front door.
    for (name, help, v) in [
        (
            "cg_broker_admitted_total",
            "Sessions admitted through the front door.",
            snap.broker.admitted,
        ),
        (
            "cg_broker_refused_total",
            "Requests refused by admission control with a typed Overloaded.",
            snap.broker.refused,
        ),
        (
            "cg_broker_shed_total",
            "Queued work shed under overload.",
            snap.broker.shed,
        ),
        (
            "cg_broker_quota_refusals_total",
            "Refusals due to a per-tenant quota.",
            snap.broker.quota_refusals,
        ),
        (
            "cg_broker_drains_total",
            "Graceful drains initiated.",
            snap.broker.drains,
        ),
        (
            "cg_broker_drained_checkpoints_total",
            "Live sessions checkpointed during drain.",
            snap.broker.drained_checkpoints,
        ),
    ] {
        out.push(counter(name, help, v));
    }
    out.push(gauge(
        "cg_broker_sessions",
        "Live broker sessions.",
        snap.broker.sessions as f64,
    ));
    out.push(gauge(
        "cg_broker_queue_depth",
        "Requests queued in tenant FIFOs.",
        snap.broker.queue_depth as f64,
    ));
    out.push(gauge(
        "cg_broker_connections",
        "Open front-door TCP connections.",
        snap.broker.connections as f64,
    ));
    out.push(summary(
        "cg_broker_queue_wait_micros",
        "Time requests spend queued before dispatch, in microseconds.",
        &snap.broker.queue_wait,
    ));

    // Transition store.
    for (name, help, v) in [
        (
            "cg_stdb_ingest_records_total",
            "Records durably appended to the transition-store WAL.",
            snap.stdb.ingest_records,
        ),
        (
            "cg_stdb_ingest_bytes_total",
            "Payload bytes appended to the transition-store WAL.",
            snap.stdb.ingest_bytes,
        ),
        (
            "cg_stdb_dropped_records_total",
            "Records dropped by ingest backpressure or append failure.",
            snap.stdb.dropped_records,
        ),
        (
            "cg_stdb_append_retries_total",
            "Appends retried after a rolled-back torn write.",
            snap.stdb.append_retries,
        ),
        (
            "cg_stdb_replay_hits_total",
            "Replay-env steps answered from the store.",
            snap.stdb.replay_hits,
        ),
        (
            "cg_stdb_replay_misses_total",
            "Replay-env requests that fell through to the live compiler.",
            snap.stdb.replay_misses,
        ),
        (
            "cg_stdb_quarantined_records_total",
            "Corrupt records quarantined by recovery or scrub.",
            snap.stdb.quarantined_records,
        ),
        (
            "cg_stdb_torn_tails_total",
            "Torn WAL tails truncated during recovery-on-open.",
            snap.stdb.torn_tails,
        ),
        (
            "cg_stdb_scrub_corrupt_total",
            "Checksum failures found by scrub.",
            snap.stdb.scrub_corrupt,
        ),
        (
            "cg_stdb_scrub_repaired_total",
            "Corrupt records repaired from intact duplicates.",
            snap.stdb.scrub_repaired,
        ),
        (
            "cg_stdb_checkpoint_rejects_total",
            "Checkpoint files rejected at load (bad checksum or torn).",
            snap.stdb.checkpoint_rejects,
        ),
        (
            "cg_stdb_compactions_total",
            "Transition-store compactions completed.",
            snap.stdb.compactions,
        ),
    ] {
        out.push(counter(name, help, v));
    }
    out.push(gauge(
        "cg_stdb_segments",
        "Live transition-store WAL segments.",
        snap.stdb.segments as f64,
    ));
    out.push(gauge(
        "cg_stdb_store_bytes",
        "Bytes across live transition-store WAL segments.",
        snap.stdb.store_bytes as f64,
    ));
    out.push(summary(
        "cg_stdb_append_wall_micros",
        "WAL append wall time in microseconds.",
        &snap.stdb.append_wall,
    ));

    // Wire protocol (codec + pipelining).
    for (name, help, v) in [
        (
            "cg_wire_tx_bytes_json_total",
            "Payload bytes written as JSON frames.",
            snap.wire.tx_bytes_json,
        ),
        (
            "cg_wire_tx_bytes_binary_total",
            "Payload bytes written as CGB1 binary frames.",
            snap.wire.tx_bytes_binary,
        ),
        (
            "cg_wire_rx_bytes_json_total",
            "Payload bytes read as JSON frames.",
            snap.wire.rx_bytes_json,
        ),
        (
            "cg_wire_rx_bytes_binary_total",
            "Payload bytes read as CGB1 binary frames.",
            snap.wire.rx_bytes_binary,
        ),
        (
            "cg_wire_frames_total",
            "Frames moved in either direction, both codecs.",
            snap.wire.frames,
        ),
        (
            "cg_wire_decode_errors_total",
            "Binary frames that failed to decode (answered in band).",
            snap.wire.decode_errors,
        ),
        (
            "cg_wire_pipelined_calls_total",
            "Calls issued through the pipelined path.",
            snap.wire.pipelined_calls,
        ),
        (
            "cg_wire_negotiations_total",
            "Connections negotiated up to the binary codec.",
            snap.wire.negotiations,
        ),
        (
            "cg_wire_fallbacks_total",
            "Negotiations that fell back to JSON (old peer).",
            snap.wire.fallbacks,
        ),
    ] {
        out.push(counter(name, help, v));
    }
    out.push(gauge(
        "cg_wire_in_flight",
        "Requests currently in flight on pipelined sockets.",
        snap.wire.in_flight as f64,
    ));
    out.push(summary(
        "cg_wire_encode_micros",
        "Binary frame encode wall time in microseconds.",
        &snap.wire.encode_wall,
    ));
    out.push(summary(
        "cg_wire_decode_micros",
        "Binary frame decode wall time in microseconds.",
        &snap.wire.decode_wall,
    ));

    // Fuzzer.
    out.push(counter(
        "cg_fuzz_cases_total",
        "Fuzz cases executed.",
        snap.fuzz.cases,
    ));
    out.push(counter(
        "cg_fuzz_divergences_total",
        "Fuzz divergences found.",
        snap.fuzz.divergences,
    ));

    // Trace ring and flight recorder.
    out.push(gauge(
        "cg_trace_spans",
        "Span records currently buffered.",
        snap.trace_events as f64,
    ));
    out.push(counter(
        "cg_trace_dropped_total",
        "Span records evicted from the ring.",
        snap.trace_dropped,
    ));
    out.push(counter(
        "cg_episodes_recorded_total",
        "Flight-recorder episodes opened.",
        snap.episodes_recorded,
    ));
    out.push(counter(
        "cg_episodes_evicted_total",
        "Flight-recorder episodes evicted.",
        snap.episodes_dropped,
    ));
    out.push(counter(
        "cg_episode_spans_dropped_total",
        "Spans dropped by per-episode caps.",
        snap.episode_spans_dropped,
    ));

    // SLO.
    out.push(gauge(
        "cg_slo_objective_micros",
        "Configured step-latency objective (0 = disabled).",
        snap.slo.objective_micros as f64,
    ));
    out.push(gauge(
        "cg_slo_target",
        "Configured availability target.",
        snap.slo.target,
    ));
    out.push(counter(
        "cg_slo_good_total",
        "Steps meeting the latency objective.",
        snap.slo.good,
    ));
    out.push(counter(
        "cg_slo_bad_total",
        "Steps missing the latency objective.",
        snap.slo.bad,
    ));
    out.push(gauge(
        "cg_slo_compliance",
        "Fraction of steps meeting the objective.",
        snap.slo.compliance,
    ));
    out.push(gauge(
        "cg_slo_burn_rate",
        "Error-budget burn rate (1.0 = at budget).",
        snap.slo.burn_rate,
    ));

    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format (v0.0.4).
pub fn prometheus_text(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for family in collect(snap) {
        out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
        out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
        for s in &family.samples {
            out.push_str(&family.name);
            out.push_str(s.suffix);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&format_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// Renders a snapshot as JSON lines: one `{"name", "kind", "labels",
/// "value"}` object per sample.
pub fn metrics_jsonl(snap: &TelemetrySnapshot) -> String {
    use serde::value::Value;
    let mut out = String::new();
    for family in collect(snap) {
        for s in &family.samples {
            let line = Value::Object(vec![
                (
                    "name".to_string(),
                    Value::Str(format!("{}{}", family.name, s.suffix)),
                ),
                ("kind".to_string(), Value::Str(family.kind.to_string())),
                (
                    "labels".to_string(),
                    Value::Object(
                        s.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ),
                ("value".to_string(), Value::Float(s.value)),
            ]);
            out.push_str(&serde_json::to_string(&line).expect("metric line serializes"));
            out.push('\n');
        }
    }
    out
}

/// Binds `addr` and serves the global registry's metrics over HTTP on a
/// background thread, returning the bound address (useful with port 0).
///
/// # Errors
/// I/O errors from binding the listener.
pub fn spawn_metrics_server(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("cg-metrics".to_string())
        .spawn(move || serve_metrics(listener))
        .expect("spawn metrics server thread");
    Ok(local)
}

/// Serves Prometheus scrapes on `listener` forever: every request is
/// answered with a fresh render of the global registry, regardless of path.
pub fn serve_metrics(listener: TcpListener) {
    for conn in listener.incoming() {
        let Ok(mut stream) = conn else { continue };
        let _ = handle_scrape(&mut stream);
    }
}

fn handle_scrape(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request headers; ignore their content.
    let mut buf = [0u8; 4096];
    let mut read = 0;
    while read < buf.len() {
        let n = stream.read(&mut buf[read..])?;
        if n == 0 {
            break;
        }
        read += n;
        if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let body = prometheus_text(&crate::global().snapshot());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::time::Duration;

    fn sample_snapshot() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.requests.get("Step").record(120);
        t.request_errors.get("Step").inc();
        t.episode.episodes.inc();
        t.episode.steps.add(3);
        t.episode.step_wall.record(250);
        t.passes
            .get("gvn")
            .record(Duration::from_micros(42), true, -5);
        t.slo.configure(Duration::from_millis(1), 0.9);
        t.slo.record(Duration::from_micros(500));
        t.slo.record(Duration::from_millis(5));
        t.trace.emit("step", "x", Duration::ZERO);
        t.snapshot()
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = prometheus_text(&sample_snapshot());
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample has value");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                name.starts_with("cg_")
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in: {line}"
            );
            seen.insert(
                name.trim_end_matches("_sum")
                    .trim_end_matches("_count")
                    .to_string(),
            );
        }
        for required in [
            "cg_requests_total",
            "cg_request_latency_micros",
            "cg_episodes_total",
            "cg_steps_total",
            "cg_step_latency_micros",
            "cg_restarts_total",
            "cg_recoveries_total",
            "cg_reconnects_total",
            "cg_pass_calls_total",
            "cg_trace_spans",
            "cg_trace_dropped_total",
            "cg_slo_good_total",
            "cg_slo_bad_total",
            "cg_slo_burn_rate",
        ] {
            assert!(seen.contains(required), "missing metric {required}");
        }
    }

    #[test]
    fn jsonl_lines_parse_and_match_prometheus() {
        let snap = sample_snapshot();
        let jsonl = metrics_jsonl(&snap);
        let mut n = 0;
        for line in jsonl.lines() {
            let v = serde_json::parse_value(line).expect("line parses");
            assert!(v.get("name").and_then(|n| n.as_str()).is_some());
            assert!(v.get("value").is_some());
            n += 1;
        }
        let samples: usize = collect(&snap).iter().map(|f| f.samples.len()).sum();
        assert_eq!(n, samples);
    }

    #[test]
    fn slo_counters_flow_into_export() {
        let snap = sample_snapshot();
        assert_eq!(snap.slo.good, 1);
        assert_eq!(snap.slo.bad, 1);
        assert!((snap.slo.compliance - 0.5).abs() < 1e-9);
        // Bad fraction 0.5 against an allowed 0.1 burns at 5x.
        assert!((snap.slo.burn_rate - 5.0).abs() < 1e-9);
        let text = prometheus_text(&snap);
        assert!(text.contains("cg_slo_good_total 1"));
        assert!(text.contains("cg_slo_bad_total 1"));
    }

    #[test]
    fn scrape_endpoint_serves_exposition() {
        let addr = spawn_metrics_server("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "got: {response}");
        assert!(response.contains("cg_steps_total"));
    }
}
