//! The flag-driven compiler: maps a configuration (one choice per option)
//! to mid-end transformations and backend knobs, then compiles and sizes.

use cg_ir::Module;
use cg_llvm::pass::find_pass;

use crate::option_space::{BackendEffect, OptionKind, OptionSpace, ParamEffect, PassEffect};
use crate::rtl::{emit_asm, lower_module, BackendConfig};

/// The result of one compilation.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The rendered command line (for logs and leaderboards).
    pub command_line: String,
    /// Assembly text of the whole module.
    pub asm_text: String,
    /// Assembly size in bytes (length of the text — the paper's "size in
    /// bytes of the assembly").
    pub asm_size: u64,
    /// Object code size in bytes (encoded instruction bytes + alignment).
    pub obj_size: u64,
    /// Number of RTL instructions after backend optimization.
    pub rtl_count: u64,
    /// IR instruction count after the mid-end ran.
    pub ir_count: u64,
}

#[derive(Debug, Clone, Default)]
struct MidEndConfig {
    mem2reg: bool,
    sroa: bool,
    dce: bool,
    gvn: bool,
    sccp: bool,
    dse: bool,
    licm: bool,
    simplifycfg: bool,
    ipsccp: bool,
    mergefunc: bool,
    reassociate: bool,
    inline_threshold: u32,
    unroll_factor: u32,
    peel: u32,
}

fn level_defaults(level: usize) -> (MidEndConfig, BackendConfig) {
    let mut mid = MidEndConfig::default();
    let mut be = BackendConfig::default();
    // 0 = -O0, 1..3 = -O1..-O3, 4 = -Os, 5 = -Ofast.
    if level >= 1 {
        mid.mem2reg = true;
        mid.dce = true;
        mid.sccp = true;
        mid.simplifycfg = true;
        be.peephole = true;
        be.registers = 10;
    }
    if level >= 2 {
        mid.sroa = true;
        mid.gvn = true;
        mid.dse = true;
        mid.licm = true;
        mid.ipsccp = true;
        be.schedule = true;
        be.good_regalloc = true;
        be.omit_frame_pointer = true;
        be.rtl_dce = true;
    }
    match level {
        2 => {
            mid.inline_threshold = 50;
            be.align_functions = 16;
            be.align_loops = 8;
        }
        3 | 5 => {
            mid.inline_threshold = 200;
            mid.unroll_factor = 4;
            mid.peel = 1;
            mid.reassociate = level == 5;
            be.align_functions = 32;
            be.align_loops = 16;
        }
        4 => {
            // -Os: like -O2 but size-greedy — no alignment, tiny inlining,
            // identical-code folding. Like real GCC's -Os, it is NOT the
            // size optimum: interprocedural constant propagation, RTL DCE
            // and high register budgets are left for the tuner to find.
            mid.inline_threshold = 16;
            mid.mergefunc = true;
            mid.ipsccp = false;
            be.rtl_dce = false;
            be.align_functions = 1;
            be.align_loops = 1;
            be.section_anchors = true;
        }
        _ => {}
    }
    (mid, be)
}

fn decode(space: &OptionSpace, choices: &[usize]) -> (MidEndConfig, BackendConfig) {
    let level = match choices.first() {
        Some(&c) if c > 0 => c - 1,
        _ => 0,
    };
    let (mut mid, mut be) = level_defaults(level);
    for (o, &c) in space.options().iter().zip(choices) {
        if c == 0 {
            continue; // unspecified: keep level default
        }
        let on = c == 1; // tri-state: 1 = enabled, 2 = negated
        match o.kind {
            OptionKind::OptLevel | OptionKind::Inert => {}
            OptionKind::PassFlag(effect) => {
                let target: &mut bool = match effect {
                    PassEffect::Mem2Reg => &mut mid.mem2reg,
                    PassEffect::Sroa => &mut mid.sroa,
                    PassEffect::Dce => &mut mid.dce,
                    PassEffect::Gvn => &mut mid.gvn,
                    PassEffect::Sccp => &mut mid.sccp,
                    PassEffect::Dse => &mut mid.dse,
                    PassEffect::Licm => &mut mid.licm,
                    PassEffect::SimplifyCfg => &mut mid.simplifycfg,
                    PassEffect::IpSccp => &mut mid.ipsccp,
                    PassEffect::MergeFunc => &mut mid.mergefunc,
                    PassEffect::Reassociate => &mut mid.reassociate,
                    PassEffect::RtlDce => &mut be.rtl_dce,
                    PassEffect::Inline => {
                        if on && mid.inline_threshold == 0 {
                            mid.inline_threshold = 50;
                        } else if !on {
                            mid.inline_threshold = 0;
                        }
                        continue;
                    }
                    PassEffect::Unroll => {
                        if on && mid.unroll_factor == 0 {
                            mid.unroll_factor = 4;
                        } else if !on {
                            mid.unroll_factor = 0;
                        }
                        continue;
                    }
                    PassEffect::Peel => {
                        if on && mid.peel == 0 {
                            mid.peel = 1;
                        } else if !on {
                            mid.peel = 0;
                        }
                        continue;
                    }
                };
                *target = on;
            }
            OptionKind::BackendFlag(effect) => {
                let target: &mut bool = match effect {
                    BackendEffect::Peephole => &mut be.peephole,
                    BackendEffect::Schedule => &mut be.schedule,
                    BackendEffect::OmitFramePointer => &mut be.omit_frame_pointer,
                    BackendEffect::GoodRegAlloc => &mut be.good_regalloc,
                    BackendEffect::SectionAnchors => &mut be.section_anchors,
                    BackendEffect::AlignFunctions => {
                        be.align_functions = if on { 16 } else { 1 };
                        continue;
                    }
                    BackendEffect::AlignLoops => {
                        be.align_loops = if on { 8 } else { 1 };
                        continue;
                    }
                };
                *target = on;
            }
            OptionKind::Param(effect) => match effect {
                ParamEffect::InlineLimit => mid.inline_threshold = (c as u32) * 16,
                ParamEffect::UnrollFactor => mid.unroll_factor = c as u32,
                ParamEffect::PeelCount => mid.peel = c as u32,
                ParamEffect::FunctionAlignment => be.align_functions = 1u64 << c.min(8),
                ParamEffect::LoopAlignment => be.align_loops = 1u64 << c.min(6),
                ParamEffect::RegisterCount => be.registers = 4 + c as u32,
                ParamEffect::SchedWindow => be.schedule = c > 2,
                ParamEffect::Nothing => {}
            },
        }
    }
    (mid, be)
}

fn run_midend(m: &mut Module, mid: &MidEndConfig) {
    let mut names: Vec<String> = Vec::new();
    if mid.sroa {
        names.push("sroa".into());
    }
    if mid.mem2reg {
        names.push("mem2reg".into());
    }
    if mid.inline_threshold > 0 {
        // Snap to the nearest registry threshold.
        let avail = [
            0u32, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100, 120, 140, 160, 180,
            200, 225, 250, 275, 300, 400, 500, 750, 1000,
        ];
        let t = avail
            .iter()
            .min_by_key(|a| a.abs_diff(mid.inline_threshold))
            .unwrap();
        names.push(format!("inline-{t}"));
    }
    if mid.sccp {
        names.push("sccp".into());
    }
    if mid.ipsccp {
        names.push("ipsccp".into());
    }
    if mid.simplifycfg {
        names.push("simplifycfg-aggressive".into());
    }
    if mid.licm {
        names.push("loop-simplify".into());
        names.push("licm".into());
    }
    if mid.peel > 0 {
        names.push(format!("loop-peel-{}", mid.peel.clamp(1, 16)));
    }
    if mid.unroll_factor > 1 {
        let avail = [2u32, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 32];
        let u = avail
            .iter()
            .min_by_key(|a| a.abs_diff(mid.unroll_factor))
            .unwrap();
        names.push(format!("loop-unroll-{u}"));
    }
    if mid.gvn {
        names.push("gvn-pre".into());
    }
    if mid.reassociate {
        names.push("reassociate".into());
    }
    if mid.dse {
        names.push("dse".into());
        names.push("load-elim".into());
    }
    if mid.mergefunc {
        names.push("mergefunc".into());
        names.push("globaldce".into());
    }
    if mid.dce {
        names.push("adce".into());
        names.push("instcombine".into());
        names.push("simplifycfg".into());
    }
    for n in names {
        if let Some(p) = find_pass(&n) {
            p.run(m);
        }
    }
}

/// Compiles `module` under the configuration `choices` of `space`.
///
/// Deterministic: the same module and choices always produce the same
/// output (both rewards of the GCC environment are deterministic, §V-B).
pub fn compile(module: &Module, space: &OptionSpace, choices: &[usize]) -> CompileOutput {
    let (mid, be) = decode(space, choices);
    let mut m = module.clone();
    run_midend(&mut m, &mid);
    let fns = lower_module(&m, &be);
    let mut asm_text = String::new();
    let mut obj_size = 0u64;
    let mut rtl_count = 0u64;
    for f in &fns {
        asm_text.push_str(&emit_asm(f));
        obj_size += f.size(&be);
        rtl_count += f
            .insts
            .iter()
            .filter(|i| !matches!(i, crate::rtl::Rtl::Label { .. }))
            .count() as u64;
    }
    // Object overhead for global data addressing unless section anchors.
    if !be.section_anchors {
        obj_size += 8 * m.globals().len() as u64;
    }
    CompileOutput {
        command_line: space.command_line(choices),
        asm_size: asm_text.len() as u64,
        asm_text,
        obj_size,
        rtl_count,
        ir_count: m.inst_count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::option_space::GccSpec;

    fn setup() -> (Module, OptionSpace) {
        (
            cg_datasets::benchmark("chstone-v0/gsm").unwrap(),
            OptionSpace::for_version(&GccSpec::v11_2()),
        )
    }

    #[test]
    fn compilation_is_deterministic() {
        let (m, space) = setup();
        let c = space.choices_for_level(2);
        let a = compile(&m, &space, &c);
        let b = compile(&m, &space, &c);
        assert_eq!(a.obj_size, b.obj_size);
        assert_eq!(a.asm_text, b.asm_text);
    }

    #[test]
    fn optimization_levels_order_sizes_sensibly() {
        let (m, space) = setup();
        let o0 = compile(&m, &space, &space.choices_for_level(0));
        let o2 = compile(&m, &space, &space.choices_for_level(2));
        let os = compile(&m, &space, &space.choices_for_level(4));
        assert!(
            o2.obj_size < o0.obj_size,
            "O2 {} vs O0 {}",
            o2.obj_size,
            o0.obj_size
        );
        assert!(
            os.obj_size <= o2.obj_size,
            "Os {} vs O2 {}",
            os.obj_size,
            o2.obj_size
        );
    }

    #[test]
    fn individual_flags_change_output() {
        let (m, space) = setup();
        let base = space.choices_for_level(0);
        let baseline = compile(&m, &space, &base).obj_size;
        // Enabling mem2reg (-ftree-ter) alone shrinks -O0 code.
        let i = space
            .options()
            .iter()
            .position(|o| o.name == "-ftree-ter")
            .unwrap();
        let mut c = base.clone();
        c[i] = 1;
        let with_m2r = compile(&m, &space, &c).obj_size;
        assert!(with_m2r < baseline);
        // An inert flag changes nothing.
        let inert = space
            .options()
            .iter()
            .position(|o| matches!(o.kind, OptionKind::Inert))
            .unwrap();
        let mut c2 = base.clone();
        c2[inert] = 1;
        assert_eq!(compile(&m, &space, &c2).obj_size, baseline);
    }

    #[test]
    fn negating_a_default_on_flag_grows_o2() {
        let (m, space) = setup();
        let o2 = space.choices_for_level(2);
        let baseline = compile(&m, &space, &o2).obj_size;
        let i = space
            .options()
            .iter()
            .position(|o| o.name == "-ftree-ter")
            .unwrap();
        let mut c = o2.clone();
        c[i] = 2; // -fno-tree-ter
        let nerfed = compile(&m, &space, &c).obj_size;
        assert!(nerfed > baseline);
    }

    #[test]
    fn asm_and_obj_sizes_track_each_other() {
        let (m, space) = setup();
        let o0 = compile(&m, &space, &space.choices_for_level(0));
        let os = compile(&m, &space, &space.choices_for_level(4));
        assert!(os.asm_size < o0.asm_size);
        assert!(os.rtl_count < o0.rtl_count);
    }
}
