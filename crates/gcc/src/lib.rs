//! # cg-gcc: the simulated GCC backend
//!
//! Reproduces the substrate behind CompilerGym's GCC flag-tuning
//! environment (§V-B): a versioned command-line option space (`-O<n>`,
//! hundreds of `-f` flags, hundreds of `--param`s — 502 options on
//! "GCC 11.2", fewer on older versions), a compiler that honours those
//! options by gating mid-end transformations and backend code generation,
//! and the two deterministic size rewards (assembly bytes and object bytes).
//!
//! The mid-end reuses the shared transform library from [`cg_llvm`] (our
//! stand-in for GIMPLE passes); the backend lowers IR to an RTL-like
//! three-address form, allocates registers, applies flag-gated peephole and
//! scheduling, and emits assembly text plus a pseudo-encoded object.
//!
//! # Example
//!
//! ```
//! use cg_gcc::{GccSpec, OptionSpace};
//!
//! let spec = GccSpec::v11_2();
//! let space = OptionSpace::for_version(&spec);
//! assert_eq!(space.num_options(), 502);
//! let module = cg_datasets::benchmark("benchmark://chstone-v0/mips")?;
//! let baseline = space.choices_for_level(2); // -O2
//! let out = cg_gcc::compile(&module, &space, &baseline);
//! assert!(out.obj_size > 0);
//! # Ok::<(), cg_datasets::DatasetError>(())
//! ```

pub mod compiler;
pub mod option_space;
pub mod rtl;

pub use compiler::{compile, CompileOutput};
pub use option_space::{FlatAction, GccSpec, OptionDef, OptionKind, OptionSpace};
