//! The GCC command-line option space, extracted per compiler version.
//!
//! As in the paper, the space is derived from the version's own "help"
//! metadata: newer GCCs document more flags and parameters, so the space
//! grows with the version (GCC 5 ≈ 10^430 configurations, GCC 11.2 ≈
//! 10^4461). An [`OptionSpace`] is an ordered list of [`OptionDef`]s; a
//! configuration is one choice index per option; and a second, *flat*
//! action encoding exposes the space to RL agents as a single categorical
//! list (2,281 actions on GCC 11.2).

use serde::{Deserialize, Serialize};

/// A GCC version whose option space we model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GccSpec {
    /// Human-readable version, e.g. `"11.2.0"`.
    pub version: String,
    /// Number of `-f` style flags this version documents.
    pub num_flags: usize,
    /// Number of `--param`s this version documents.
    pub num_params: usize,
}

impl GccSpec {
    /// GCC 11.2.0 — the paper's reference version (502 options total).
    pub fn v11_2() -> GccSpec {
        GccSpec {
            version: "11.2.0".into(),
            num_flags: 241,
            num_params: 260,
        }
    }

    /// GCC 8.
    pub fn v8() -> GccSpec {
        GccSpec {
            version: "8.5.0".into(),
            num_flags: 210,
            num_params: 180,
        }
    }

    /// GCC 5 — reports its parameter space less completely, so the tool
    /// finds a smaller space (the paper's 10^430).
    pub fn v5() -> GccSpec {
        GccSpec {
            version: "5.5.0".into(),
            num_flags: 170,
            num_params: 60,
        }
    }

    /// Parses a docker-image-style or path-style specifier, as the paper's
    /// environment accepts (`"docker:gcc:11.2.0"` or `"/usr/bin/gcc-5"`).
    pub fn from_specifier(spec: &str) -> Option<GccSpec> {
        let s = spec.rsplit(&[':', '-', '/'][..]).next()?;
        if s.starts_with("11") {
            Some(GccSpec::v11_2())
        } else if s.starts_with('8') {
            Some(GccSpec::v8())
        } else if s.starts_with('5') {
            Some(GccSpec::v5())
        } else {
            None
        }
    }
}

/// What an option controls inside the simulated compiler.
///
/// Roughly half of the documented flags of a real GCC have no effect on any
/// given translation unit; we reproduce that by mapping the generated tail
/// of each category to [`OptionKind::Inert`] options that change the command
/// line (and thus the configuration) without changing codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptionKind {
    /// The `-O<n>` level: 0,1,2,3,s,fast.
    OptLevel,
    /// Tri-state `-f` flag wired to a mid-end pass (off / default / on).
    PassFlag(PassEffect),
    /// Tri-state `-f` flag wired to a backend knob.
    BackendFlag(BackendEffect),
    /// `--param name=<int>` wired to a numeric knob.
    Param(ParamEffect),
    /// Documented but inert for this backend.
    Inert,
}

/// Mid-end (GIMPLE-analogue) effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassEffect {
    /// `-ftree-ter`-ish: promote memory to registers.
    Mem2Reg,
    /// `-ftree-sra`: scalar replacement of aggregates.
    Sroa,
    /// `-ftree-dce`: dead code elimination.
    Dce,
    /// `-ftree-fre`/`-ftree-pre`: redundancy elimination.
    Gvn,
    /// `-ftree-ccp`: conditional constant propagation.
    Sccp,
    /// `-ftree-dse`: dead store elimination.
    Dse,
    /// `-finline-functions`.
    Inline,
    /// `-funroll-loops`.
    Unroll,
    /// `-fpeel-loops`.
    Peel,
    /// `-ftree-loop-im`: loop-invariant motion.
    Licm,
    /// `-fcrossjumping`/`-fthread-jumps`-ish CFG cleanup.
    SimplifyCfg,
    /// `-fipa-cp`: interprocedural constant propagation.
    IpSccp,
    /// `-fipa-icf`: identical code folding.
    MergeFunc,
    /// `-fdce` at RTL level.
    RtlDce,
    /// `-fguess-branch-probability`-ish reassociation.
    Reassociate,
}

/// Backend (RTL-analogue) effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendEffect {
    /// `-fpeephole2`: RTL peephole cleanup.
    Peephole,
    /// `-fschedule-insns`: scheduling (inserts pipeline nops when off).
    Schedule,
    /// `-fomit-frame-pointer`: shrinks prologues.
    OmitFramePointer,
    /// `-fira-*`-ish: better register allocation (fewer spills).
    GoodRegAlloc,
    /// `-falign-functions` (tri-state; magnitude from params).
    AlignFunctions,
    /// `-falign-loops`.
    AlignLoops,
    /// `-fsection-anchors`-ish data layout (object size only).
    SectionAnchors,
}

/// Numeric `--param` effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamEffect {
    /// `--param inline-unit-growth` etc.: inline threshold (instructions).
    InlineLimit,
    /// `--param max-unroll-times`: unroll factor.
    UnrollFactor,
    /// `--param max-peel-times`: peel count.
    PeelCount,
    /// `--param align-functions=N`: function alignment (bytes, pow2).
    FunctionAlignment,
    /// `--param align-loops=N`: loop alignment.
    LoopAlignment,
    /// Register pressure target: available registers.
    RegisterCount,
    /// Scheduling aggressiveness: nops removed/inserted.
    SchedWindow,
    /// Inert numeric parameter.
    Nothing,
}

/// One command-line option: a name and a set of choices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptionDef {
    /// Command-line name (`-O`, `-fpeel-loops`, `--param max-unroll-times`).
    pub name: String,
    /// Number of choices (choice 0 is always "not specified").
    pub cardinality: usize,
    /// What the option does.
    pub kind: OptionKind,
}

/// The full option space of one GCC version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptionSpace {
    /// The version this space was extracted from.
    pub spec: GccSpec,
    options: Vec<OptionDef>,
}

/// Names for the `-f` flags wired to real effects, paired with their effect.
fn effective_flags() -> Vec<(&'static str, OptionKind)> {
    use BackendEffect as B;
    use OptionKind::{BackendFlag, PassFlag};
    use PassEffect as P;
    vec![
        ("-ftree-ter", PassFlag(P::Mem2Reg)),
        ("-ftree-sra", PassFlag(P::Sroa)),
        ("-ftree-dce", PassFlag(P::Dce)),
        ("-ftree-fre", PassFlag(P::Gvn)),
        ("-ftree-ccp", PassFlag(P::Sccp)),
        ("-ftree-dse", PassFlag(P::Dse)),
        ("-finline-functions", PassFlag(P::Inline)),
        ("-funroll-loops", PassFlag(P::Unroll)),
        ("-fpeel-loops", PassFlag(P::Peel)),
        ("-ftree-loop-im", PassFlag(P::Licm)),
        ("-fthread-jumps", PassFlag(P::SimplifyCfg)),
        ("-fipa-cp", PassFlag(P::IpSccp)),
        ("-fipa-icf", PassFlag(P::MergeFunc)),
        ("-fdce", PassFlag(P::RtlDce)),
        ("-fassociative-math", PassFlag(P::Reassociate)),
        ("-fpeephole2", BackendFlag(B::Peephole)),
        ("-fschedule-insns", BackendFlag(B::Schedule)),
        ("-fomit-frame-pointer", BackendFlag(B::OmitFramePointer)),
        ("-fira-hoist-pressure", BackendFlag(B::GoodRegAlloc)),
        ("-falign-functions", BackendFlag(B::AlignFunctions)),
        ("-falign-loops", BackendFlag(B::AlignLoops)),
        ("-fsection-anchors", BackendFlag(B::SectionAnchors)),
    ]
}

/// Names for the `--param`s wired to real effects.
fn effective_params() -> Vec<(&'static str, ParamEffect, usize)> {
    use ParamEffect as E;
    vec![
        ("--param inline-unit-growth", E::InlineLimit, 64),
        ("--param max-inline-insns-auto", E::InlineLimit, 64),
        ("--param max-unroll-times", E::UnrollFactor, 16),
        ("--param max-peel-times", E::PeelCount, 16),
        ("--param align-functions", E::FunctionAlignment, 8),
        ("--param align-loops", E::LoopAlignment, 8),
        ("--param ira-max-loops-num", E::RegisterCount, 24),
        ("--param sched-pressure-algorithm", E::SchedWindow, 8),
    ]
}

/// Plausible inert flag stems used to fill the documented flag count.
const INERT_STEMS: &[&str] = &[
    "aggressive-loop-optimizations",
    "branch-count-reg",
    "caller-saves",
    "code-hoisting",
    "combine-stack-adjustments",
    "compare-elim",
    "cprop-registers",
    "cse-follow-jumps",
    "defer-pop",
    "delayed-branch",
    "devirtualize",
    "dse",
    "expensive-optimizations",
    "float-store",
    "forward-propagate",
    "gcse",
    "gcse-after-reload",
    "gcse-las",
    "gcse-lm",
    "gcse-sm",
    "graphite",
    "hoist-adjacent-loads",
    "if-conversion",
    "if-conversion2",
    "indirect-inlining",
    "inline-atomics",
    "inline-small-functions",
    "ipa-bit-cp",
    "ipa-modref",
    "ipa-profile",
    "ipa-pta",
    "ipa-pure-const",
    "ipa-ra",
    "ipa-reference",
    "ipa-sra",
    "ipa-vrp",
    "isolate-erroneous-paths-dereference",
    "ivopts",
    "jump-tables",
    "keep-gc-roots-live",
    "lifetime-dse",
    "limit-function-alignment",
    "live-range-shrinkage",
    "loop-interchange",
    "loop-nest-optimize",
    "loop-parallelize-all",
    "lra-remat",
    "math-errno",
    "modulo-sched",
    "move-loop-invariants",
    "non-call-exceptions",
    "nothrow-opt",
    "opt-info",
    "optimize-sibling-calls",
    "pack-struct",
    "partial-inlining",
    "plt",
    "predictive-commoning",
    "prefetch-loop-arrays",
    "printf-return-value",
    "profile-partial-training",
    "profile-reorder-functions",
    "reg-struct-return",
    "rename-registers",
    "reorder-blocks",
    "reorder-functions",
    "rerun-cse-after-loop",
    "rounding-math",
    "rtti",
    "sched-critical-path-heuristic",
    "sched-dep-count-heuristic",
    "sched-group-heuristic",
    "sched-interblock",
    "sched-last-insn-heuristic",
    "sched-rank-heuristic",
    "sched-spec",
    "sched-spec-insn-heuristic",
    "sched-stalled-insns",
    "sel-sched-pipelining",
    "sel-sched-reschedule-pipelined",
    "shrink-wrap",
    "shrink-wrap-separate",
    "signaling-nans",
    "signed-zeros",
    "single-precision-constant",
    "split-ivs-in-unroller",
    "split-loops",
    "split-paths",
    "split-wide-types",
    "ssa-backprop",
    "ssa-phiopt",
    "stack-clash-protection",
    "stack-protector",
    "stdarg-opt",
    "store-merging",
    "strict-aliasing",
    "strict-volatile-bitfields",
    "tracer",
    "trapping-math",
    "trapv",
    "tree-bit-ccp",
    "tree-builtin-call-dce",
    "tree-ch",
    "tree-coalesce-vars",
    "tree-copy-prop",
    "tree-cselim",
    "tree-dominator-opts",
    "tree-forwprop",
    "tree-loop-distribute-patterns",
    "tree-loop-distribution",
    "tree-loop-ivcanon",
    "tree-loop-optimize",
    "tree-loop-vectorize",
    "tree-lrs",
    "tree-partial-pre",
    "tree-phiprop",
    "tree-pta",
    "tree-reassoc",
    "tree-scev-cprop",
    "tree-sink",
    "tree-slp-vectorize",
    "tree-slsr",
    "tree-switch-conversion",
    "tree-tail-merge",
    "tree-vectorize",
    "tree-vrp",
    "unconstrained-commons",
    "unit-at-a-time",
    "unroll-all-loops",
    "unsafe-math-optimizations",
    "unswitch-loops",
    "unwind-tables",
    "variable-expansion-in-unroller",
    "vect-cost-model",
    "vpt",
    "web",
    "wrapv",
    "zero-initialized-in-bss",
];

impl OptionSpace {
    /// Extracts the option space of a GCC version (the analogue of parsing
    /// its `--help=optimizers,params` output).
    pub fn for_version(spec: &GccSpec) -> OptionSpace {
        let mut options = Vec::new();
        // The -O level: 0..=5 → {-O0,-O1,-O2,-O3,-Os,-Ofast}, plus
        // "unspecified".
        options.push(OptionDef {
            name: "-O".into(),
            cardinality: 7,
            kind: OptionKind::OptLevel,
        });
        // Effective flags first, then inert fill to the documented count.
        let eff = effective_flags();
        for (name, kind) in &eff {
            options.push(OptionDef {
                name: (*name).into(),
                cardinality: 3,
                kind: *kind,
            });
        }
        let mut i = 0usize;
        while options.len() - 1 < spec.num_flags {
            let stem = INERT_STEMS[i % INERT_STEMS.len()];
            let name = if i < INERT_STEMS.len() {
                format!("-f{stem}")
            } else {
                format!("-f{stem}{}", i / INERT_STEMS.len())
            };
            options.push(OptionDef {
                name,
                cardinality: 3,
                kind: OptionKind::Inert,
            });
            i += 1;
        }
        // Effective params, then inert numeric params.
        let effp = effective_params();
        let mut n_params = 0usize;
        for (name, effect, card) in &effp {
            if n_params >= spec.num_params {
                break;
            }
            options.push(OptionDef {
                name: (*name).into(),
                cardinality: *card,
                kind: OptionKind::Param(*effect),
            });
            n_params += 1;
        }
        let mut j = 0usize;
        while n_params < spec.num_params {
            let stem = INERT_STEMS[(j * 7 + 3) % INERT_STEMS.len()];
            let name = format!("--param {stem}-limit{}", j);
            // Varied cardinalities, like real params.
            let cardinality = 2 + (j * 13 + 5) % 99;
            options.push(OptionDef {
                name,
                cardinality,
                kind: OptionKind::Param(ParamEffect::Nothing),
            });
            n_params += 1;
            j += 1;
        }
        OptionSpace {
            spec: spec.clone(),
            options,
        }
    }

    /// The ordered option definitions.
    pub fn options(&self) -> &[OptionDef] {
        &self.options
    }

    /// Number of options (502 for GCC 11.2).
    pub fn num_options(&self) -> usize {
        self.options.len()
    }

    /// log10 of the number of distinct configurations.
    pub fn log10_size(&self) -> f64 {
        self.options
            .iter()
            .map(|o| (o.cardinality as f64).log10())
            .sum()
    }

    /// The all-default configuration (every option unspecified).
    pub fn default_choices(&self) -> Vec<usize> {
        vec![0; self.options.len()]
    }

    /// A configuration with only `-O<level>` set (level 0..=3, 4 = `-Os`,
    /// 5 = `-Ofast`).
    pub fn choices_for_level(&self, level: usize) -> Vec<usize> {
        let mut c = self.default_choices();
        c[0] = 1 + level.min(5);
        c
    }

    /// Renders a configuration as a command line.
    pub fn command_line(&self, choices: &[usize]) -> String {
        let mut parts = vec!["gcc".to_string()];
        for (o, &c) in self.options.iter().zip(choices) {
            if c == 0 {
                continue;
            }
            match o.kind {
                OptionKind::OptLevel => {
                    let lvl = ["-O0", "-O1", "-O2", "-O3", "-Os", "-Ofast"][(c - 1).min(5)];
                    parts.push(lvl.to_string());
                }
                OptionKind::Param(_) => parts.push(format!("{}={}", o.name, c)),
                _ => {
                    if c == 1 {
                        parts.push(o.name.clone());
                    } else {
                        parts.push(o.name.replacen("-f", "-fno-", 1));
                    }
                }
            }
        }
        parts.join(" ")
    }

    /// Clamps a raw choice vector into range (used by search algorithms
    /// which mutate choices blindly).
    pub fn clamp(&self, choices: &mut [usize]) {
        for (o, c) in self.options.iter().zip(choices.iter_mut()) {
            *c = (*c).min(o.cardinality - 1);
        }
    }

    /// Builds the flat categorical action list: direct-set actions for
    /// options with fewer than ten choices, and ±1/±10/±100/±1000 deltas
    /// for the rest (2,281 actions for GCC 11.2, as in the paper).
    pub fn flat_actions(&self) -> Vec<FlatAction> {
        let mut v = Vec::new();
        for (i, o) in self.options.iter().enumerate() {
            if o.cardinality < 10 {
                for c in 0..o.cardinality {
                    v.push(FlatAction::Set {
                        option: i,
                        choice: c,
                    });
                }
            } else {
                for delta in [1i64, 10, 100, 1000] {
                    v.push(FlatAction::Add { option: i, delta });
                    v.push(FlatAction::Add {
                        option: i,
                        delta: -delta,
                    });
                }
            }
        }
        v
    }

    /// Applies one flat action to a choice vector.
    pub fn apply_flat(&self, choices: &mut [usize], action: &FlatAction) {
        match action {
            FlatAction::Set { option, choice } => {
                choices[*option] = (*choice).min(self.options[*option].cardinality - 1);
            }
            FlatAction::Add { option, delta } => {
                let card = self.options[*option].cardinality as i64;
                let cur = choices[*option] as i64;
                choices[*option] = (cur + delta).clamp(0, card - 1) as usize;
            }
        }
    }
}

/// An action in the flat categorical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlatAction {
    /// Set option `option` to `choice` directly (small-cardinality options).
    Set {
        /// Option index.
        option: usize,
        /// Choice value.
        choice: usize,
    },
    /// Add `delta` to option `option`'s choice, clamped to range.
    Add {
        /// Option index.
        option: usize,
        /// Signed increment.
        delta: i64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v11_has_502_options_and_huge_space() {
        let space = OptionSpace::for_version(&GccSpec::v11_2());
        assert_eq!(space.num_options(), 502);
        // Paper: "a modest size of approximately 10^4461". Ours lands in the
        // same order-of-magnitude band (hundreds–thousands of digits).
        let digits = space.log10_size();
        assert!(digits > 400.0, "space too small: 10^{digits:.0}");
    }

    #[test]
    fn older_versions_expose_smaller_spaces() {
        let v11 = OptionSpace::for_version(&GccSpec::v11_2());
        let v5 = OptionSpace::for_version(&GccSpec::v5());
        assert!(v5.num_options() < v11.num_options());
        assert!(v5.log10_size() < v11.log10_size());
    }

    #[test]
    fn specifier_parsing() {
        assert_eq!(
            GccSpec::from_specifier("docker:gcc:11.2.0"),
            Some(GccSpec::v11_2())
        );
        assert_eq!(
            GccSpec::from_specifier("/usr/bin/gcc-5"),
            Some(GccSpec::v5())
        );
        assert_eq!(GccSpec::from_specifier("clang"), None);
    }

    #[test]
    fn command_line_rendering() {
        let space = OptionSpace::for_version(&GccSpec::v11_2());
        let mut c = space.choices_for_level(4);
        // Enable and negate a flag.
        c[1] = 1;
        c[2] = 2;
        let cmd = space.command_line(&c);
        assert!(cmd.starts_with("gcc -Os"));
        assert!(cmd.contains("-ftree-ter"));
        assert!(cmd.contains("-fno-tree-sra"));
    }

    #[test]
    fn flat_actions_cover_every_option() {
        let space = OptionSpace::for_version(&GccSpec::v11_2());
        let actions = space.flat_actions();
        // The paper reports 2,281 actions for GCC 11.2. Our space: the -O
        // option (7) + 241 tri-state flags (3 each) + small params direct +
        // large params as 8 delta actions.
        assert!(
            actions.len() > 1500 && actions.len() < 3500,
            "{}",
            actions.len()
        );
        let mut choices = space.default_choices();
        for a in actions.iter().take(200) {
            space.apply_flat(&mut choices, a);
        }
        // All still in range.
        let copy = choices.clone();
        space.clamp(&mut choices);
        assert_eq!(copy, choices);
    }

    #[test]
    fn add_actions_clamp_at_bounds() {
        let space = OptionSpace::for_version(&GccSpec::v11_2());
        let big = space
            .options()
            .iter()
            .position(|o| o.cardinality >= 10)
            .unwrap();
        let mut choices = space.default_choices();
        space.apply_flat(
            &mut choices,
            &FlatAction::Add {
                option: big,
                delta: -10,
            },
        );
        assert_eq!(choices[big], 0);
        space.apply_flat(
            &mut choices,
            &FlatAction::Add {
                option: big,
                delta: 1000,
            },
        );
        assert_eq!(choices[big], space.options()[big].cardinality - 1);
    }
}
