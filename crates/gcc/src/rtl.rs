//! The RTL-like backend: lowering, register allocation, peephole,
//! scheduling, and assembly/object emission.
//!
//! RTL here is a sizing model, not an executable form — semantics are fixed
//! by the IR (which the interpreter runs); the backend determines how many
//! bytes that IR costs under a given flag configuration, which is what the
//! GCC environment's rewards measure.

use std::collections::HashMap;
use std::fmt::Write as _;

use cg_ir::{BinOp, BlockId, Module, Op, Operand, Terminator};

/// An RTL operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Src {
    /// Virtual (pre-RA) or physical (post-RA) register.
    Reg(u32),
    /// Immediate.
    Imm(i64),
    /// Address of a global.
    Global(u32),
    /// A stack slot (spill or local).
    Slot(u32),
}

/// One RTL instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Rtl {
    /// Register copy / materialization.
    Mov {
        /// Destination register.
        dst: u32,
        /// Source operand.
        src: Src,
    },
    /// Two-operand ALU operation.
    Alu {
        /// IR opcode that produced it.
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Compare, writing a flag/bool register.
    Cmp {
        /// Destination (flag) register.
        dst: u32,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Conditional move (used for lowered selects under peephole).
    CMov {
        /// Destination register.
        dst: u32,
        /// Condition register.
        cond: u32,
        /// Value when true.
        a: Src,
        /// Value when false.
        b: Src,
    },
    /// Memory load.
    Load {
        /// Destination register.
        dst: u32,
        /// Address operand.
        addr: Src,
    },
    /// Memory store.
    Store {
        /// Address operand.
        addr: Src,
        /// Stored value.
        val: Src,
    },
    /// Address computation.
    Lea {
        /// Destination register.
        dst: u32,
        /// Base address.
        base: Src,
        /// Offset.
        off: Src,
    },
    /// Direct call.
    Call {
        /// Callee symbol.
        callee: String,
        /// Argument count (argument moves are emitted separately).
        args: usize,
    },
    /// Unconditional jump to a block label.
    Jmp {
        /// Target label.
        target: u32,
    },
    /// Conditional jump.
    Jcc {
        /// Condition register.
        cond: u32,
        /// Taken label.
        target: u32,
    },
    /// Return.
    Ret,
    /// Pipeline bubble (inserted when scheduling is disabled).
    Nop,
    /// Block label pseudo-instruction.
    Label {
        /// Label id (block id).
        id: u32,
        /// True if this label is a loop (backward-branch) target.
        loop_target: bool,
    },
}

impl Rtl {
    /// Encoded size in bytes under the simulated ISA.
    pub fn size(&self) -> u64 {
        let imm = |s: &Src| match s {
            Src::Imm(v) if !(-2048..2048).contains(v) => 4u64,
            Src::Global(_) => 4,
            _ => 0,
        };
        match self {
            Rtl::Mov { src, .. } => 2 + imm(src),
            Rtl::Alu { op, a, b, .. } => {
                let base = match op {
                    BinOp::Div | BinOp::Rem => 6,
                    BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => 4,
                    _ => 3,
                };
                base + imm(a) + imm(b)
            }
            Rtl::Cmp { a, b, .. } => 3 + imm(a) + imm(b),
            Rtl::CMov { a, b, .. } => 4 + imm(a) + imm(b),
            Rtl::Load { addr, .. } => 4 + imm(addr),
            Rtl::Store { addr, val } => 4 + imm(addr) + imm(val),
            Rtl::Lea { base, off, .. } => 3 + imm(base) + imm(off),
            Rtl::Call { args, .. } => 5 + 2 * *args as u64,
            Rtl::Jmp { .. } => 2,
            Rtl::Jcc { .. } => 3,
            Rtl::Ret => 1,
            Rtl::Nop => 1,
            Rtl::Label { .. } => 0,
        }
    }
}

/// Backend configuration derived from the flag set.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Run the peephole cleanups.
    pub peephole: bool,
    /// Schedule instructions (no hazard nops).
    pub schedule: bool,
    /// Omit the frame pointer (smaller prologues).
    pub omit_frame_pointer: bool,
    /// Better register allocation (more effective registers).
    pub good_regalloc: bool,
    /// Available physical registers.
    pub registers: u32,
    /// Function alignment in bytes (power of two).
    pub align_functions: u64,
    /// Loop-target alignment in bytes.
    pub align_loops: u64,
    /// Remove per-global addressing overhead in the object.
    pub section_anchors: bool,
    /// Eliminate dead RTL (unreferenced movs).
    pub rtl_dce: bool,
}

impl Default for BackendConfig {
    fn default() -> BackendConfig {
        BackendConfig {
            peephole: false,
            schedule: false,
            omit_frame_pointer: false,
            good_regalloc: false,
            registers: 6,
            align_functions: 1,
            align_loops: 1,
            section_anchors: false,
            rtl_dce: false,
        }
    }
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct RtlFunction {
    /// Symbol name.
    pub name: String,
    /// Instruction stream (with labels).
    pub insts: Vec<Rtl>,
    /// Bytes of prologue + epilogue.
    pub frame_overhead: u64,
}

impl RtlFunction {
    /// Encoded size in bytes, including frame overhead and loop-target
    /// alignment, rounded to the function alignment.
    pub fn size(&self, cfg: &BackendConfig) -> u64 {
        let mut s = self.frame_overhead;
        for i in &self.insts {
            s += i.size();
            if let Rtl::Label {
                loop_target: true, ..
            } = i
            {
                // Average padding of align/2 per aligned loop target.
                s += cfg.align_loops / 2;
            }
        }
        let a = cfg.align_functions.max(1);
        s.div_ceil(a) * a
    }
}

/// Lowers a module to RTL under the given backend configuration: virtual
/// registers from SSA values, φs resolved to copies, selects to
/// compare+cmov, switches to compare chains; then spills, peephole,
/// scheduling.
pub fn lower_module(m: &Module, cfg: &BackendConfig) -> Vec<RtlFunction> {
    m.func_ids()
        .iter()
        .map(|&fid| lower_function(m, fid, cfg))
        .collect()
}

fn src_of(o: &Operand) -> Src {
    match o {
        Operand::Value(v) => Src::Reg(v.0),
        Operand::Const(cg_ir::Constant::Int(i)) => Src::Imm(*i),
        Operand::Const(cg_ir::Constant::Bool(b)) => Src::Imm(*b as i64),
        Operand::Const(cg_ir::Constant::Float(f)) => Src::Imm(f.to_bits() as i64),
        Operand::Global(g) => Src::Global(g.0),
        Operand::Func(_) => Src::Imm(0),
    }
}

fn lower_function(m: &Module, fid: cg_ir::FuncId, cfg: &BackendConfig) -> RtlFunction {
    let f = m.func(fid);
    let mut insts: Vec<Rtl> = Vec::new();
    let mut next_reg = f.value_bound();
    let mut fresh = || {
        next_reg += 1;
        next_reg - 1
    };
    // Loop targets: labels that are targets of backward jumps in layout
    // order.
    let order: Vec<BlockId> = f.block_ids().to_vec();
    let pos: HashMap<BlockId, usize> = order.iter().enumerate().map(|(i, b)| (*b, i)).collect();
    let mut loop_targets: Vec<BlockId> = Vec::new();
    for (i, b) in order.iter().enumerate() {
        for s in f.block(*b).term.successors() {
            if pos.get(&s).copied().unwrap_or(usize::MAX) <= i && !loop_targets.contains(&s) {
                loop_targets.push(s);
            }
        }
    }
    // φ copies: at the end of each predecessor, mov φreg <- incoming.
    let mut phi_copies: HashMap<BlockId, Vec<(u32, Src)>> = HashMap::new();
    for b in f.blocks() {
        for inst in &b.insts {
            if let (Some(d), Op::Phi(incs)) = (inst.dest, &inst.op) {
                for (pred, v) in incs {
                    phi_copies.entry(*pred).or_default().push((d.0, src_of(v)));
                }
            }
        }
    }
    for &bid in &order {
        let b = f.block(bid);
        insts.push(Rtl::Label {
            id: bid.0,
            loop_target: loop_targets.contains(&bid),
        });
        for inst in &b.insts {
            let dst = inst.dest.map(|d| d.0);
            match &inst.op {
                Op::Phi(_) => {} // handled as pred copies
                Op::Bin(op, a, bb) => insts.push(Rtl::Alu {
                    op: *op,
                    dst: dst.unwrap(),
                    a: src_of(a),
                    b: src_of(bb),
                }),
                Op::Icmp(_, a, bb) | Op::Fcmp(_, a, bb) => insts.push(Rtl::Cmp {
                    dst: dst.unwrap(),
                    a: src_of(a),
                    b: src_of(bb),
                }),
                Op::Select {
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = match src_of(cond) {
                        Src::Reg(r) => r,
                        _ => {
                            let r = fresh();
                            insts.push(Rtl::Mov {
                                dst: r,
                                src: src_of(cond),
                            });
                            r
                        }
                    };
                    insts.push(Rtl::CMov {
                        dst: dst.unwrap(),
                        cond: c,
                        a: src_of(on_true),
                        b: src_of(on_false),
                    });
                }
                Op::Alloca { .. } => insts.push(Rtl::Lea {
                    dst: dst.unwrap(),
                    base: Src::Slot(0),
                    off: Src::Imm(0),
                }),
                Op::Load { ptr } => insts.push(Rtl::Load {
                    dst: dst.unwrap(),
                    addr: src_of(ptr),
                }),
                Op::Store { ptr, value } => insts.push(Rtl::Store {
                    addr: src_of(ptr),
                    val: src_of(value),
                }),
                Op::Gep { base, offset } => insts.push(Rtl::Lea {
                    dst: dst.unwrap(),
                    base: src_of(base),
                    off: src_of(offset),
                }),
                Op::Call { callee, args } => {
                    for (i, a) in args.iter().enumerate() {
                        insts.push(Rtl::Mov {
                            dst: 1_000_000 + i as u32,
                            src: src_of(a),
                        });
                    }
                    insts.push(Rtl::Call {
                        callee: m.func(*callee).name.clone(),
                        args: args.len(),
                    });
                    if let Some(d) = dst {
                        insts.push(Rtl::Mov {
                            dst: d,
                            src: Src::Reg(1_000_100),
                        });
                    }
                }
                Op::Cast(_, v) | Op::Not(v) | Op::Neg(v) | Op::FNeg(v) => insts.push(Rtl::Mov {
                    dst: dst.unwrap(),
                    src: src_of(v),
                }),
            }
        }
        // φ copies for successors, then terminator.
        if let Some(copies) = phi_copies.get(&bid) {
            for (dst, src) in copies {
                insts.push(Rtl::Mov {
                    dst: *dst,
                    src: *src,
                });
            }
        }
        match &b.term {
            Terminator::Br { target } => insts.push(Rtl::Jmp { target: target.0 }),
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                let c = match src_of(cond) {
                    Src::Reg(r) => r,
                    other => {
                        let r = fresh();
                        insts.push(Rtl::Mov { dst: r, src: other });
                        r
                    }
                };
                insts.push(Rtl::Jcc {
                    cond: c,
                    target: on_true.0,
                });
                insts.push(Rtl::Jmp { target: on_false.0 });
            }
            Terminator::Switch {
                value,
                cases,
                default,
            } => {
                for (cv, t) in cases {
                    let flag = fresh();
                    insts.push(Rtl::Cmp {
                        dst: flag,
                        a: src_of(value),
                        b: Src::Imm(*cv),
                    });
                    insts.push(Rtl::Jcc {
                        cond: flag,
                        target: t.0,
                    });
                }
                insts.push(Rtl::Jmp { target: default.0 });
            }
            Terminator::Ret { value } => {
                if let Some(v) = value {
                    insts.push(Rtl::Mov {
                        dst: 1_000_100,
                        src: src_of(v),
                    });
                }
                insts.push(Rtl::Ret);
            }
            Terminator::Unreachable => insts.push(Rtl::Nop),
        }
    }

    if cfg.peephole {
        peephole(&mut insts);
    }
    if cfg.rtl_dce {
        rtl_dce(&mut insts);
    }
    spill(&mut insts, cfg);
    if !cfg.schedule {
        insert_hazard_nops(&mut insts);
    }

    let frame_overhead = if cfg.omit_frame_pointer { 4 } else { 12 };
    RtlFunction {
        name: f.name.clone(),
        insts,
        frame_overhead,
    }
}

/// Peephole: drop no-op moves and identity ALU operations.
fn peephole(insts: &mut Vec<Rtl>) {
    insts.retain(|i| match i {
        Rtl::Mov {
            dst,
            src: Src::Reg(s),
        } => dst != s,
        Rtl::Alu {
            op,
            a: _,
            b: Src::Imm(0),
            ..
        } => !matches!(
            op,
            BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl
        ),
        Rtl::Alu {
            op, b: Src::Imm(1), ..
        } => !matches!(op, BinOp::Mul | BinOp::Div),
        _ => true,
    });
}

/// RTL-level DCE: removes moves whose destination register is never read.
fn rtl_dce(insts: &mut Vec<Rtl>) {
    use std::collections::HashSet;
    let mut read: HashSet<u32> = HashSet::new();
    let mark = |s: &Src, read: &mut HashSet<u32>| {
        if let Src::Reg(r) = s {
            read.insert(*r);
        }
    };
    for i in insts.iter() {
        match i {
            Rtl::Mov { src, .. } => mark(src, &mut read),
            Rtl::Alu { a, b, .. }
            | Rtl::Cmp { a, b, .. }
            | Rtl::Lea {
                base: a, off: b, ..
            } => {
                mark(a, &mut read);
                mark(b, &mut read);
            }
            Rtl::CMov { cond, a, b, .. } => {
                read.insert(*cond);
                mark(a, &mut read);
                mark(b, &mut read);
            }
            Rtl::Load { addr, .. } => mark(addr, &mut read),
            Rtl::Store { addr, val } => {
                mark(addr, &mut read);
                mark(val, &mut read);
            }
            Rtl::Jcc { cond, .. } => {
                read.insert(*cond);
            }
            _ => {}
        }
    }
    insts.retain(|i| match i {
        Rtl::Mov { dst, .. } => read.contains(dst) || *dst >= 1_000_000,
        _ => true,
    });
}

/// Spill model: registers beyond the allocatable set cost a reload per use
/// and a store per definition.
fn spill(insts: &mut Vec<Rtl>, cfg: &BackendConfig) {
    let k = cfg.registers + if cfg.good_regalloc { 6 } else { 0 };
    // Occurrence counts per virtual register (ABI regs >= 1_000_000 are
    // physical and never spill).
    let mut occur: HashMap<u32, u32> = HashMap::new();
    let bump = |s: &Src, occur: &mut HashMap<u32, u32>| {
        if let Src::Reg(r) = s {
            if *r < 1_000_000 {
                *occur.entry(*r).or_default() += 1;
            }
        }
    };
    for i in insts.iter() {
        match i {
            Rtl::Mov { dst, src } => {
                bump(&Src::Reg(*dst), &mut occur);
                bump(src, &mut occur);
            }
            Rtl::Alu { dst, a, b, .. } | Rtl::CMov { dst, a, b, .. } => {
                bump(&Src::Reg(*dst), &mut occur);
                bump(a, &mut occur);
                bump(b, &mut occur);
            }
            Rtl::Cmp { dst, a, b } => {
                bump(&Src::Reg(*dst), &mut occur);
                bump(a, &mut occur);
                bump(b, &mut occur);
            }
            Rtl::Lea { dst, base, off } => {
                bump(&Src::Reg(*dst), &mut occur);
                bump(base, &mut occur);
                bump(off, &mut occur);
            }
            Rtl::Load { dst, addr } => {
                bump(&Src::Reg(*dst), &mut occur);
                bump(addr, &mut occur);
            }
            Rtl::Store { addr, val } => {
                bump(addr, &mut occur);
                bump(val, &mut occur);
            }
            Rtl::Jcc { cond, .. } => bump(&Src::Reg(*cond), &mut occur),
            _ => {}
        }
    }
    if occur.len() <= k as usize {
        return;
    }
    // Keep the k hottest registers; the rest spill.
    let mut by_heat: Vec<(u32, u32)> = occur.into_iter().collect();
    by_heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let spilled: std::collections::HashSet<u32> =
        by_heat.iter().skip(k as usize).map(|(r, _)| *r).collect();
    let mut out: Vec<Rtl> = Vec::with_capacity(insts.len() * 2);
    for inst in insts.drain(..) {
        // Reloads before, stores after.
        let mut uses: Vec<u32> = Vec::new();
        let mut defs: Vec<u32> = Vec::new();
        let collect = |s: &Src, uses: &mut Vec<u32>| {
            if let Src::Reg(r) = s {
                if spilled.contains(r) {
                    uses.push(*r);
                }
            }
        };
        match &inst {
            Rtl::Mov { dst, src } => {
                collect(src, &mut uses);
                if spilled.contains(dst) {
                    defs.push(*dst);
                }
            }
            Rtl::Alu { dst, a, b, .. } | Rtl::CMov { dst, a, b, .. } => {
                collect(a, &mut uses);
                collect(b, &mut uses);
                if spilled.contains(dst) {
                    defs.push(*dst);
                }
            }
            Rtl::Cmp { dst, a, b } => {
                collect(a, &mut uses);
                collect(b, &mut uses);
                if spilled.contains(dst) {
                    defs.push(*dst);
                }
            }
            Rtl::Lea { dst, base, off } => {
                collect(base, &mut uses);
                collect(off, &mut uses);
                if spilled.contains(dst) {
                    defs.push(*dst);
                }
            }
            Rtl::Load { dst, addr } => {
                collect(addr, &mut uses);
                if spilled.contains(dst) {
                    defs.push(*dst);
                }
            }
            Rtl::Store { addr, val } => {
                collect(addr, &mut uses);
                collect(val, &mut uses);
            }
            Rtl::Jcc { cond, .. } if spilled.contains(cond) => {
                uses.push(*cond);
            }
            _ => {}
        }
        for r in uses {
            out.push(Rtl::Load {
                dst: r,
                addr: Src::Slot(r),
            });
        }
        out.push(inst);
        for r in defs {
            out.push(Rtl::Store {
                addr: Src::Slot(r),
                val: Src::Reg(r),
            });
        }
    }
    *insts = out;
}

/// Without scheduling, a load immediately followed by a consumer of its
/// destination stalls: insert a nop.
fn insert_hazard_nops(insts: &mut Vec<Rtl>) {
    let mut out: Vec<Rtl> = Vec::with_capacity(insts.len());
    let mut pending: Option<u32> = None;
    for inst in insts.drain(..) {
        if let Some(loaded) = pending.take() {
            let mut uses_loaded = false;
            let check = |s: &Src, hit: &mut bool| {
                if *s == Src::Reg(loaded) {
                    *hit = true;
                }
            };
            match &inst {
                Rtl::Mov { src, .. } => check(src, &mut uses_loaded),
                Rtl::Alu { a, b, .. }
                | Rtl::Cmp { a, b, .. }
                | Rtl::Lea {
                    base: a, off: b, ..
                } => {
                    check(a, &mut uses_loaded);
                    check(b, &mut uses_loaded);
                }
                Rtl::CMov { cond, a, b, .. } => {
                    uses_loaded |= *cond == loaded;
                    check(a, &mut uses_loaded);
                    check(b, &mut uses_loaded);
                }
                Rtl::Store { addr, val } => {
                    check(addr, &mut uses_loaded);
                    check(val, &mut uses_loaded);
                }
                Rtl::Jcc { cond, .. } => uses_loaded |= *cond == loaded,
                _ => {}
            }
            if uses_loaded {
                out.push(Rtl::Nop);
            }
        }
        if let Rtl::Load { dst, .. } = &inst {
            pending = Some(*dst);
        }
        out.push(inst);
    }
    *insts = out;
}

/// Emits assembly text for a lowered function.
pub fn emit_asm(f: &RtlFunction) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{}:", f.name);
    let src = |o: &Src| match o {
        Src::Reg(r) => format!("r{r}"),
        Src::Imm(v) => format!("${v}"),
        Src::Global(g) => format!("g{g}(%rip)"),
        Src::Slot(k) => format!("{k}(%sp)"),
    };
    for i in &f.insts {
        match i {
            Rtl::Label { id, .. } => {
                let _ = writeln!(s, ".L{id}:");
            }
            Rtl::Mov { dst, src: x } => {
                let _ = writeln!(s, "\tmov r{dst}, {}", src(x));
            }
            Rtl::Alu { op, dst, a, b } => {
                let _ = writeln!(s, "\t{} r{dst}, {}, {}", op.mnemonic(), src(a), src(b));
            }
            Rtl::Cmp { dst, a, b } => {
                let _ = writeln!(s, "\tcmp r{dst}, {}, {}", src(a), src(b));
            }
            Rtl::CMov { dst, cond, a, b } => {
                let _ = writeln!(s, "\tcmov r{dst}, r{cond}, {}, {}", src(a), src(b));
            }
            Rtl::Load { dst, addr } => {
                let _ = writeln!(s, "\tld r{dst}, [{}]", src(addr));
            }
            Rtl::Store { addr, val } => {
                let _ = writeln!(s, "\tst [{}], {}", src(addr), src(val));
            }
            Rtl::Lea { dst, base, off } => {
                let _ = writeln!(s, "\tlea r{dst}, {} + {}", src(base), src(off));
            }
            Rtl::Call { callee, .. } => {
                let _ = writeln!(s, "\tcall {callee}");
            }
            Rtl::Jmp { target } => {
                let _ = writeln!(s, "\tjmp .L{target}");
            }
            Rtl::Jcc { cond, target } => {
                let _ = writeln!(s, "\tjnz r{cond}, .L{target}");
            }
            Rtl::Ret => {
                let _ = writeln!(s, "\tret");
            }
            Rtl::Nop => {
                let _ = writeln!(s, "\tnop");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        cg_datasets::benchmark("chstone-v0/sha").unwrap()
    }

    #[test]
    fn lowering_produces_rtl_for_every_function() {
        let m = sample();
        let fns = lower_module(&m, &BackendConfig::default());
        assert_eq!(fns.len(), m.num_functions());
        assert!(fns.iter().all(|f| !f.insts.is_empty()));
    }

    #[test]
    fn peephole_and_regalloc_shrink_code() {
        let m = sample();
        let bad = BackendConfig::default();
        let good = BackendConfig {
            peephole: true,
            schedule: true,
            omit_frame_pointer: true,
            good_regalloc: true,
            registers: 12,
            rtl_dce: true,
            ..BackendConfig::default()
        };
        let size_bad: u64 = lower_module(&m, &bad).iter().map(|f| f.size(&bad)).sum();
        let size_good: u64 = lower_module(&m, &good).iter().map(|f| f.size(&good)).sum();
        assert!(
            size_good < size_bad,
            "optimized backend should be smaller: {size_good} vs {size_bad}"
        );
    }

    #[test]
    fn alignment_increases_size() {
        let m = sample();
        let plain = BackendConfig::default();
        let aligned = BackendConfig {
            align_functions: 64,
            align_loops: 16,
            ..BackendConfig::default()
        };
        let a: u64 = lower_module(&m, &plain)
            .iter()
            .map(|f| f.size(&plain))
            .sum();
        let b: u64 = lower_module(&m, &aligned)
            .iter()
            .map(|f| f.size(&aligned))
            .sum();
        assert!(b > a);
    }

    #[test]
    fn asm_emission_mentions_every_function() {
        let m = sample();
        let fns = lower_module(&m, &BackendConfig::default());
        for f in &fns {
            let asm = emit_asm(f);
            assert!(asm.starts_with(&format!("{}:", f.name)));
            assert!(asm.contains("\tret"));
        }
    }
}
