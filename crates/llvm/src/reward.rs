//! The three optimization targets of the LLVM environment (§V-A):
//! IR instruction count ("code size"), object-code size ("binary size"),
//! and simulated runtime.
//!
//! Code size is platform-independent and deterministic; binary size is
//! deterministic but depends on the (simulated) target encoding; runtime is
//! nondeterministic — the environment layers measurement noise over the
//! deterministic cycle count, as real wall-clock measurement does.

use cg_ir::interp::{run_main, ExecError, ExecLimits};
use cg_ir::{BinOp, Module, Op, Operand, Terminator};

/// The `IrInstructionCount` metric: total instructions incl. terminators.
pub fn ir_instruction_count(m: &Module) -> u64 {
    m.inst_count() as u64
}

/// Estimated size in bytes of one encoded instruction under the simulated
/// target ISA (a RISC-ish variable-length encoding: immediates outside
/// ±2^11 need extension words, calls carry relocations, etc.).
fn encoded_size(op: &Op) -> u64 {
    let imm_cost = |o: &Operand| -> u64 {
        match o.as_const_int() {
            Some(v) if !(-2048..2048).contains(&v) => 4,
            Some(_) => 0,
            None => match o {
                Operand::Const(_) => 4,  // float immediates are materialized
                Operand::Global(_) => 4, // address relocation
                _ => 0,
            },
        }
    };
    match op {
        Op::Bin(b, x, y) => {
            let base = match b {
                BinOp::Div | BinOp::Rem => 6,
                BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => 4,
                _ => 3,
            };
            base + imm_cost(x) + imm_cost(y)
        }
        Op::Icmp(_, x, y) | Op::Fcmp(_, x, y) => 3 + imm_cost(x) + imm_cost(y),
        Op::Select { .. } => 6,
        Op::Alloca { .. } => 4,
        Op::Load { ptr } => 4 + imm_cost(ptr),
        Op::Store { ptr, value } => 4 + imm_cost(ptr) + imm_cost(value),
        Op::Gep { base, offset } => 3 + imm_cost(base) + imm_cost(offset),
        Op::Call { args, .. } => 5 + 2 * args.len() as u64,
        Op::Phi(_) => 0, // resolved by register allocation
        Op::Cast(..) => 2,
        Op::Not(_) | Op::Neg(_) | Op::FNeg(_) => 3,
    }
}

fn terminator_size(t: &Terminator) -> u64 {
    match t {
        Terminator::Br { .. } => 2,
        Terminator::CondBr { .. } => 4,
        Terminator::Switch { cases, .. } => 4 + 4 * cases.len() as u64,
        Terminator::Ret { .. } => 2,
        Terminator::Unreachable => 1,
    }
}

/// The `.text`-section size of the module under the simulated encoding:
/// per-instruction bytes plus per-function prologue/epilogue and 16-byte
/// function alignment.
pub fn binary_size(m: &Module) -> u64 {
    let mut total = 0u64;
    for fid in m.func_ids_vec() {
        let f = m.func(fid);
        let mut fsize = 12; // prologue + epilogue
        for b in f.blocks() {
            for inst in &b.insts {
                fsize += encoded_size(&inst.op);
            }
            fsize += terminator_size(&b.term);
        }
        total += fsize.div_ceil(16) * 16; // function alignment
    }
    total
}

/// The deterministic core of the runtime metric: the weighted cycle count of
/// executing the benchmark's `main`.
///
/// # Errors
/// Propagates interpreter traps and resource exhaustion (non-runnable
/// benchmarks have no runtime reward, as in the paper).
pub fn runtime_cycles(m: &Module, limits: &ExecLimits) -> Result<u64, ExecError> {
    run_main(m, limits).map(|o| o.cycles)
}

/// A runtime measurement with simulated wall-clock noise: multiplicative
/// jitter drawn from `seed` (the environment uses distinct seeds per
/// measurement, making runtime the paper's "platform-specific and
/// nondeterministic" signal).
///
/// # Errors
/// See [`runtime_cycles`].
pub fn runtime_measurement(m: &Module, limits: &ExecLimits, seed: u64) -> Result<f64, ExecError> {
    let cycles = runtime_cycles(m, limits)? as f64;
    // ±2% triangular-ish noise derived deterministically from the seed.
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    let jitter = 0.98 + 0.04 * u;
    Ok(cycles * jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_size_tracks_inst_count_loosely() {
        let m = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
        let bs = binary_size(&m);
        let ic = ir_instruction_count(&m);
        assert!(bs > 2 * ic, "encoded bytes exceed raw inst count");
        assert_eq!(bs % 16, 0, "aligned");
    }

    #[test]
    fn binary_size_shrinks_under_oz() {
        let mut m = cg_datasets::benchmark("cbench-v1/qsort").unwrap();
        let before = binary_size(&m);
        crate::pipeline::run_oz(&mut m);
        assert!(binary_size(&m) < before);
    }

    #[test]
    fn runtime_noise_is_bounded_and_seeded() {
        let m = cg_datasets::benchmark("cbench-v1/bitcount").unwrap();
        let limits = ExecLimits::default();
        let base = runtime_cycles(&m, &limits).unwrap() as f64;
        let a = runtime_measurement(&m, &limits, 1).unwrap();
        let b = runtime_measurement(&m, &limits, 2).unwrap();
        let a2 = runtime_measurement(&m, &limits, 1).unwrap();
        assert_eq!(a, a2, "same seed, same measurement");
        assert_ne!(a, b, "different seeds differ");
        for x in [a, b] {
            assert!(x >= 0.98 * base && x <= 1.02 * base);
        }
    }

    #[test]
    fn runtime_errors_on_non_runnable() {
        // llvm-stress programs may trap; a module with no main certainly
        // errors.
        let m = cg_ir::Module::new("empty");
        assert!(runtime_cycles(&m, &ExecLimits::default()).is_err());
    }
}
