//! Fixed optimization pipelines: the `-O0`/`-O1`/`-O2`/`-O3`/`-Oz`
//! orderings that serve as reward baselines (§V-A: rewards "can optionally
//! be scaled against the gains achieved by the compiler's default phase
//! orderings, -Oz for size reduction and -O3 for runtime").

use cg_ir::Module;

use crate::pass::find_pass;

/// Pass sequences by optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Light cleanup.
    O1,
    /// Standard optimization.
    O2,
    /// Aggressive, runtime-focused optimization.
    O3,
    /// Size-focused optimization.
    Oz,
}

impl OptLevel {
    /// The pass names of this level's pipeline, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        match self {
            OptLevel::O0 => vec![],
            OptLevel::O1 => vec![
                "mem2reg",
                "instcombine",
                "simplifycfg",
                "early-cse",
                "sccp",
                "dce",
                "simplifycfg",
            ],
            OptLevel::O2 => vec![
                "function-attrs",
                "always-inline",
                "inline-100",
                "sroa",
                "mem2reg",
                "early-cse-memssa",
                "instcombine",
                "simplifycfg",
                "sccp",
                "jump-threading",
                "loop-simplify",
                "licm",
                "gvn",
                "dse",
                "load-elim",
                "instcombine",
                "adce",
                "simplifycfg-aggressive",
            ],
            OptLevel::O3 => vec![
                "function-attrs",
                "always-inline",
                "inline-250",
                "sroa",
                "mem2reg",
                "early-cse-memssa",
                "instcombine",
                "reassociate",
                "simplifycfg",
                "ipsccp",
                "sccp",
                "jump-threading",
                "loop-simplify",
                "licm",
                "indvars",
                "loop-unroll-full-256",
                "loop-unroll-4",
                "strength-reduce",
                "gvn-pre",
                "dse",
                "load-elim",
                "instcombine",
                "adce",
                "loop-deletion",
                "simplifycfg-aggressive",
                "globaldce",
            ],
            OptLevel::Oz => vec![
                "function-attrs",
                "always-inline",
                "inline-25",
                "sroa",
                "mem2reg",
                "instcombine",
                "early-cse-memssa",
                "ipsccp",
                "sccp",
                "gvn",
                "reassociate",
                "instcombine",
                "dse",
                "load-elim",
                "adce",
                "phi-simplify",
                "loop-deletion",
                "jump-threading",
                "simplifycfg-aggressive",
                "mergefunc",
                "deadargelim",
                "globalopt",
                "globaldce",
                "instcombine",
                "adce",
                "simplifycfg-aggressive",
            ],
        }
    }
}

/// Runs a sequence of named passes over a module. Unknown names panic (the
/// pipelines only reference registry passes, checked by tests).
///
/// One [`cg_ir::AnalysisManager`] persists across the whole sequence, so a
/// pass whose predecessor left a function (or its CFG shape) unchanged
/// reuses the cached dominator tree and loop forest instead of recomputing.
pub fn run_passes(module: &mut Module, names: &[&str]) -> bool {
    let mut am = cg_ir::AnalysisManager::new();
    run_passes_with(module, names, &mut am)
}

/// Like [`run_passes`], but against a caller-supplied analysis manager.
///
/// Callers that run several pipelines over the same module (searchers,
/// benchmark harnesses) can keep one manager alive across calls; passing
/// [`cg_ir::AnalysisManager::disabled`] instead measures the
/// always-recompute cost (the `--no-analysis-cache` mode of `cg bench-ir`).
pub fn run_passes_with(
    module: &mut Module,
    names: &[&str],
    am: &mut cg_ir::AnalysisManager,
) -> bool {
    let mut changed = false;
    for name in names {
        let pass = find_pass(name).unwrap_or_else(|| panic!("unknown pass `{name}`"));
        changed |= crate::pass::run_pass_with(pass.as_ref(), module, am).changed;
    }
    changed
}

/// Runs a sequence of named passes, failing fast instead of panicking.
///
/// Used by reproducer replay (`cg-difftest`), where pipelines come from
/// checked-in JSON files rather than compile-time constants: an unknown pass
/// name (e.g. after a registry rename) must surface as an error the
/// regression runner can report, not a panic.
pub fn try_run_passes(module: &mut Module, names: &[String]) -> Result<bool, String> {
    let mut am = cg_ir::AnalysisManager::new();
    let mut changed = false;
    for name in names {
        let pass = find_pass(name).ok_or_else(|| format!("unknown pass `{name}`"))?;
        changed |= crate::pass::run_pass_with(pass.as_ref(), module, &mut am).changed;
    }
    Ok(changed)
}

/// Runs the pipeline for `level` over a module.
pub fn run_level(module: &mut Module, level: OptLevel) -> bool {
    run_passes(module, &level.pass_names())
}

/// Runs the `-Oz` size pipeline (the baseline for size rewards).
pub fn run_oz(module: &mut Module) -> bool {
    run_level(module, OptLevel::Oz)
}

/// Runs the `-O3` pipeline (the baseline for runtime rewards).
pub fn run_o3(module: &mut Module) -> bool {
    run_level(module, OptLevel::O3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    #[test]
    fn all_pipeline_pass_names_resolve() {
        for level in [
            OptLevel::O0,
            OptLevel::O1,
            OptLevel::O2,
            OptLevel::O3,
            OptLevel::Oz,
        ] {
            for name in level.pass_names() {
                assert!(
                    find_pass(name).is_some(),
                    "{level:?} references unknown `{name}`"
                );
            }
        }
    }

    #[test]
    fn oz_shrinks_cbench() {
        // The size pipeline must actually reduce instruction counts on real
        // benchmarks (it is the denominator of every size-reward experiment).
        let mut total_before = 0usize;
        let mut total_after = 0usize;
        for name in ["crc32", "qsort", "sha", "bitcount", "gsm"] {
            let mut m = cg_datasets::benchmark(&format!("cbench-v1/{name}")).unwrap();
            let before = m.inst_count();
            run_oz(&mut m);
            verify_module(&m).unwrap();
            let after = m.inst_count();
            assert!(after <= before, "{name}: Oz grew the module");
            total_before += before;
            total_after += after;
        }
        assert!(
            (total_after as f64) < 0.9 * total_before as f64,
            "Oz only achieved {total_before} -> {total_after}"
        );
    }

    #[test]
    fn o3_reduces_cycles_on_cbench() {
        let mut m = cg_datasets::benchmark("cbench-v1/sha").unwrap();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        run_o3(&mut m);
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret, "O3 broke sha");
        assert!(
            after.cycles < before.cycles,
            "O3 did not speed up sha: {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn pipelines_preserve_semantics_across_cbench() {
        let limits = ExecLimits::default();
        for name in cg_datasets::CBENCH {
            let m = cg_datasets::benchmark(&format!("cbench-v1/{name}")).unwrap();
            let reference = run_main(&m, &limits).unwrap();
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::Oz] {
                let mut opt = m.clone();
                run_level(&mut opt, level);
                verify_module(&opt).unwrap_or_else(|e| panic!("{name} under {level:?}: {e}"));
                let out = run_main(&opt, &limits)
                    .unwrap_or_else(|e| panic!("{name} under {level:?} trapped: {e}"));
                assert_eq!(out.ret, reference.ret, "{name} under {level:?}");
            }
        }
    }
}
