//! The discrete action space of the LLVM phase-ordering environment.
//!
//! 124 actions, one per registry pass (mirroring the paper's 124 passes
//! "extracted automatically from LLVM"). The quarantined nondeterministic
//! [`crate::passes::gvn::GvnSink`] is deliberately **not** part of the
//! space, matching the paper's removal of `-gvn-sink` after state
//! validation exposed it.

use crate::pass::{reconcile_analyses, registry, PassEffect, PassRef};
use cg_ir::AnalysisManager;

/// The discrete action space: an indexed list of passes.
#[derive(Debug, Clone)]
pub struct ActionSpace {
    passes: Vec<PassRef>,
}

impl Default for ActionSpace {
    fn default() -> ActionSpace {
        ActionSpace::new()
    }
}

impl ActionSpace {
    /// Builds the full 124-action space.
    pub fn new() -> ActionSpace {
        ActionSpace { passes: registry() }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True if the space is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass behind action index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn pass(&self, i: usize) -> &PassRef {
        &self.passes[i]
    }

    /// Action names, in index order.
    pub fn names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The index of a named action.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.passes.iter().position(|p| p.name() == name)
    }

    /// Applies action `i` to the module, returning whether it changed.
    ///
    /// Every application accrues into the global per-pass profile
    /// (invocations, cumulative wall time, instruction-count delta) and
    /// emits a `pass:<name>` trace event, so `cg stats` can attribute
    /// optimization time to individual passes.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn apply(&self, module: &mut cg_ir::Module, i: usize) -> bool {
        self.apply_tracked(module, i).changed
    }

    /// Like [`ActionSpace::apply`], but additionally reports which functions
    /// the pass touched (the invalidation signal for incremental
    /// observations). Same telemetry side effects as `apply`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn apply_tracked(&self, module: &mut cg_ir::Module, i: usize) -> PassEffect {
        self.apply_with(module, i, &mut AnalysisManager::new())
    }

    /// Like [`ActionSpace::apply_tracked`], but runs against a caller-owned
    /// [`AnalysisManager`]. A session that keeps one manager across actions
    /// lets each pass reuse CFG/dominator/loop analyses computed by its
    /// predecessors; after the pass runs, the cache is reconciled with the
    /// reported effect and the pass's `preserved()` declaration.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn apply_with(
        &self,
        module: &mut cg_ir::Module,
        i: usize,
        am: &mut AnalysisManager,
    ) -> PassEffect {
        let pass = &self.passes[i];
        let before = module.inst_count() as i64;
        // A real span (not a flat emit): when the application runs under a
        // service dispatch span, the per-pass timing lands in the step's
        // span tree, attributable across the RPC boundary.
        let mut span = cg_telemetry::global()
            .trace
            .span(format!("pass:{}", pass.name()));
        let timer = cg_telemetry::Timer::start();
        let effect = if am.known_noop(&pass.name(), module) {
            // No-op memo: this pass already ran on byte-identical content
            // and changed nothing — skip the application entirely. The
            // span/stats still record the (near-zero) invocation.
            PassEffect::unchanged()
        } else {
            let effect = pass.run_with(module, am);
            reconcile_analyses(module, am, &effect, pass.preserved());
            if !effect.changed {
                am.note_noop(&pass.name(), module);
            }
            effect
        };
        let dur = timer.elapsed();
        let delta = module.inst_count() as i64 - before;
        span.set_detail(format!("delta={delta}"));
        span.attr("changed", effect.changed.to_string());
        span.finish();
        let tel = cg_telemetry::global();
        tel.passes
            .get(&pass.name())
            .record(dur, effect.changed, delta);
        effect
    }
}

/// The 42-action subset used to replicate the Autophase environment in the
/// paper's RL experiments (§VII-G: "42 actions (out of 124 total)").
pub fn autophase_subset() -> &'static [&'static str] {
    &[
        "dce",
        "adce",
        "die",
        "constfold",
        "instcombine",
        "instsimplify",
        "reassociate",
        "early-cse",
        "early-cse-memssa",
        "sink",
        "phi-simplify",
        "strength-reduce",
        "simplifycfg",
        "simplifycfg-aggressive",
        "remove-unreachable",
        "merge-blocks",
        "fold-branches",
        "lowerswitch",
        "jump-threading",
        "break-crit-edges",
        "mergereturn",
        "mem2reg",
        "sroa",
        "dse",
        "globalopt",
        "load-elim",
        "gvn",
        "gvn-pre",
        "newgvn",
        "sccp",
        "ipsccp",
        "loop-simplify",
        "licm",
        "loop-deletion",
        "indvars",
        "loop-unroll-4",
        "loop-unroll-full-64",
        "loop-peel-1",
        "inline-100",
        "always-inline",
        "deadargelim",
        "globaldce",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_124_actions() {
        let space = ActionSpace::new();
        assert_eq!(space.len(), 124);
        assert!(!space.is_empty());
    }

    #[test]
    fn gvn_sink_is_quarantined() {
        let space = ActionSpace::new();
        assert_eq!(space.index_of("gvn-sink"), None);
    }

    #[test]
    fn autophase_subset_is_42_valid_actions() {
        let space = ActionSpace::new();
        let subset = autophase_subset();
        assert_eq!(subset.len(), 42);
        for name in subset {
            assert!(space.index_of(name).is_some(), "missing action {name}");
        }
    }

    #[test]
    fn apply_by_index() {
        let space = ActionSpace::new();
        let mut m = cg_datasets::benchmark("cbench-v1/qsort").unwrap();
        let idx = space.index_of("mem2reg").unwrap();
        space.apply(&mut m, idx);
        cg_ir::verify::verify_module(&m).unwrap();
    }
}
