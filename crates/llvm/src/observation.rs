//! The five observation spaces of the LLVM environment (Table III):
//! LLVM-IR text, InstCount (70-D), Autophase (56-D), inst2vec (200-D
//! embeddings) and ProGraML (typed program graphs).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock, RwLock};

use cg_ir::printer::{print_module, print_module_into};
use cg_ir::{BinOp, BlockId, FuncId, Module, Op, Operand, Terminator, Type};

use crate::pass::Touched;

/// Dimensionality of the [`inst_count`] feature vector.
pub const INST_COUNT_DIM: usize = 70;
/// Dimensionality of the [`autophase`] feature vector.
pub const AUTOPHASE_DIM: usize = 56;
/// Dimensionality of the [`inst2vec`] embedding.
pub const INST2VEC_DIM: usize = 200;

/// The textual IR observation.
pub fn ir_text(m: &Module) -> String {
    print_module(m)
}

/// The textual IR observation, printed into a reusable buffer (cleared
/// first). Sessions that observe `Ir` or checkpoint every step reuse one
/// buffer instead of growing a fresh `String` each time.
pub fn ir_text_into(out: &mut String, m: &Module) {
    print_module_into(out, m);
}

/// The InstCount observation: 70 integer counters — one per opcode, plus
/// terminator kinds and module-level totals.
pub fn inst_count(m: &Module) -> Vec<i64> {
    let mut v = vec![0i64; INST_COUNT_DIM];
    let mut max_block = 0i64;
    let mut max_func = 0i64;
    let mut edges = 0i64;
    let mut multi_pred = 0i64;
    for &fid in m.func_ids() {
        let f = m.func(fid);
        max_func = max_func.max(f.inst_count() as i64);
        v[61] += f.params.len() as i64;
        let mut preds: HashMap<BlockId, i64> = HashMap::new();
        for b in f.blocks() {
            max_block = max_block.max(b.insts.len() as i64);
            v[49] += 1; // blocks
            for inst in &b.insts {
                v[inst.op.opcode_index()] += 1; // 0..43
                v[48] += 1;
                match inst.ty {
                    Type::I1 => v[52] += 1,
                    Type::I64 => v[53] += 1,
                    Type::F64 => v[54] += 1,
                    Type::Ptr => v[55] += 1,
                    Type::Void => {}
                }
                inst.op.for_each_operand(|o| match o {
                    Operand::Const(_) => v[56] += 1,
                    Operand::Value(_) => v[57] += 1,
                    Operand::Global(_) => v[58] += 1,
                    Operand::Func(_) => {}
                });
                if let Op::Phi(incs) = &inst.op {
                    v[59] += incs.len() as i64;
                }
                if let Op::Call { args, .. } = &inst.op {
                    v[60] += args.len() as i64;
                }
            }
            v[48] += 1; // terminator counts toward total
            match &b.term {
                Terminator::Br { .. } => v[43] += 1,
                Terminator::CondBr { .. } => v[44] += 1,
                Terminator::Switch { cases, .. } => {
                    v[45] += 1;
                    v[64] += cases.len() as i64;
                }
                Terminator::Ret { .. } => v[46] += 1,
                Terminator::Unreachable => v[47] += 1,
            }
            for s in b.term.successors() {
                edges += 1;
                *preds.entry(s).or_default() += 1;
            }
            if b.insts.len() <= 1 {
                v[69] += 1;
            }
        }
        multi_pred += preds.values().filter(|c| **c > 1).count() as i64;
        v[50] += 1; // functions
    }
    v[51] = m.globals().len() as i64;
    v[62] = max_block;
    v[63] = edges;
    v[65] = m.globals().iter().map(|g| g.slots as i64).sum();
    v[66] = m.globals().iter().filter(|g| g.constant).count() as i64;
    v[67] = max_func;
    v[68] = multi_pred;
    v
}

/// One function's contribution to [`inst_count`]. Additive indices hold the
/// function's own counts; index 62 holds the function's largest block, 67 its
/// instruction count (both MAX-combined across functions); the module-global
/// indices 51/65/66 are left zero and filled in by [`combine_inst_count`].
pub fn inst_count_func(m: &Module, fid: FuncId) -> Vec<i64> {
    let mut v = vec![0i64; INST_COUNT_DIM];
    let f = m.func(fid);
    v[67] = f.inst_count() as i64;
    v[61] += f.params.len() as i64;
    let mut preds: HashMap<BlockId, i64> = HashMap::new();
    for b in f.blocks() {
        v[62] = v[62].max(b.insts.len() as i64);
        v[49] += 1; // blocks
        for inst in &b.insts {
            v[inst.op.opcode_index()] += 1; // 0..43
            v[48] += 1;
            match inst.ty {
                Type::I1 => v[52] += 1,
                Type::I64 => v[53] += 1,
                Type::F64 => v[54] += 1,
                Type::Ptr => v[55] += 1,
                Type::Void => {}
            }
            inst.op.for_each_operand(|o| match o {
                Operand::Const(_) => v[56] += 1,
                Operand::Value(_) => v[57] += 1,
                Operand::Global(_) => v[58] += 1,
                Operand::Func(_) => {}
            });
            if let Op::Phi(incs) = &inst.op {
                v[59] += incs.len() as i64;
            }
            if let Op::Call { args, .. } = &inst.op {
                v[60] += args.len() as i64;
            }
        }
        v[48] += 1; // terminator counts toward total
        match &b.term {
            Terminator::Br { .. } => v[43] += 1,
            Terminator::CondBr { .. } => v[44] += 1,
            Terminator::Switch { cases, .. } => {
                v[45] += 1;
                v[64] += cases.len() as i64;
            }
            Terminator::Ret { .. } => v[46] += 1,
            Terminator::Unreachable => v[47] += 1,
        }
        for s in b.term.successors() {
            v[63] += 1;
            *preds.entry(s).or_default() += 1;
        }
        if b.insts.len() <= 1 {
            v[69] += 1;
        }
    }
    v[68] += preds.values().filter(|c| **c > 1).count() as i64;
    v[50] += 1; // functions
    v
}

/// Combines per-function [`inst_count_func`] vectors into the module vector:
/// indices 62 and 67 take the max across functions, 51/65/66 are recomputed
/// from the module's globals, everything else sums.
pub fn combine_inst_count<'a>(funcs: impl Iterator<Item = &'a Vec<i64>>, m: &Module) -> Vec<i64> {
    let mut v = vec![0i64; INST_COUNT_DIM];
    for fv in funcs {
        for (i, (slot, x)) in v.iter_mut().zip(fv.iter()).enumerate() {
            match i {
                62 | 67 => *slot = (*slot).max(*x),
                _ => *slot += x,
            }
        }
    }
    v[51] = m.globals().len() as i64;
    v[65] = m.globals().iter().map(|g| g.slots as i64).sum();
    v[66] = m.globals().iter().filter(|g| g.constant).count() as i64;
    v
}

/// The Autophase observation: 56 structural program features in the style of
/// Haj-Ali et al. — block-shape histograms, opcode groups, φ statistics, and
/// constant occurrences.
pub fn autophase(m: &Module) -> Vec<i64> {
    let mut v = vec![0i64; AUTOPHASE_DIM];
    for &fid in m.func_ids() {
        let f = m.func(fid);
        v[2] += 1; // functions
                   // Per-block pred counts.
        let mut preds: HashMap<BlockId, i64> = HashMap::new();
        let mut succs: HashMap<BlockId, i64> = HashMap::new();
        for b in f.blocks() {
            let ss = b.term.successors();
            succs.insert(b.id, ss.len() as i64);
            for s in ss {
                *preds.entry(s).or_default() += 1;
            }
        }
        for b in f.blocks() {
            v[0] += 1; // basic blocks
            let np = preds.get(&b.id).copied().unwrap_or(0);
            let ns = succs.get(&b.id).copied().unwrap_or(0);
            v[3] += ns; // edges
                        // Critical edges: multi-succ source to multi-pred target.
            if ns > 1 {
                for s in b.term.successors() {
                    if preds.get(&s).copied().unwrap_or(0) > 1 {
                        v[4] += 1;
                    }
                }
            }
            match np {
                1 => v[5] += 1,
                2 => v[6] += 1,
                x if x > 2 => v[7] += 1,
                _ => {}
            }
            match ns {
                1 => v[8] += 1,
                2 => v[9] += 1,
                x if x > 2 => v[10] += 1,
                _ => {}
            }
            if np == 1 && ns == 1 {
                v[11] += 1;
            }
            if np == 1 && ns == 2 {
                v[12] += 1;
            }
            if np == 2 && ns == 1 {
                v[13] += 1;
            }
            if np == 2 && ns == 2 {
                v[14] += 1;
            }
            let n = b.insts.len();
            if n >= 50 {
                v[15] += 1;
            } else if n >= 15 {
                v[16] += 1;
            } else {
                v[17] += 1;
            }
            match &b.term {
                Terminator::Br { .. } => v[18] += 1,
                Terminator::CondBr { .. } => v[19] += 1,
                Terminator::Switch { .. } => v[20] += 1,
                Terminator::Ret { .. } => v[21] += 1,
                Terminator::Unreachable => v[22] += 1,
            }
            let phis = b.phi_count() as i64;
            v[23] += phis;
            if phis == 0 {
                v[25] += 1;
            } else if phis <= 3 {
                v[26] += 1;
            } else {
                v[27] += 1;
            }
            for inst in &b.insts {
                v[1] += 1; // instructions
                match &inst.op {
                    Op::Phi(incs) => {
                        v[24] += incs.len() as i64;
                        if incs.len() > 4 {
                            v[28] += 1;
                        }
                    }
                    Op::Bin(op, x, y) => {
                        v[29] += 1;
                        if x.is_const() || y.is_const() {
                            v[30] += 1;
                        }
                        match op {
                            BinOp::Add => v[31] += 1,
                            BinOp::Sub => v[32] += 1,
                            BinOp::Mul => v[33] += 1,
                            BinOp::Div | BinOp::Rem => v[34] += 1,
                            BinOp::And => v[35] += 1,
                            BinOp::Or => v[36] += 1,
                            BinOp::Xor => v[37] += 1,
                            BinOp::Shl => v[38] += 1,
                            BinOp::AShr | BinOp::LShr => v[39] += 1,
                            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => v[40] += 1,
                        }
                    }
                    Op::Icmp(..) => v[41] += 1,
                    Op::Fcmp(..) => v[42] += 1,
                    Op::Select { .. } => v[43] += 1,
                    Op::Load { .. } => v[44] += 1,
                    Op::Store { .. } => v[45] += 1,
                    Op::Gep { .. } => v[46] += 1,
                    Op::Alloca { .. } => v[47] += 1,
                    Op::Call { args, .. } => {
                        v[48] += 1;
                        v[49] += args.iter().filter(|a| a.is_const()).count() as i64;
                    }
                    Op::Cast(..) => v[50] += 1,
                    Op::Not(_) | Op::Neg(_) | Op::FNeg(_) => v[51] += 1,
                }
                inst.op.for_each_operand(|o| {
                    if let Some(c) = o.as_const_int() {
                        v[52] += 1;
                        if c == 0 {
                            v[53] += 1;
                        }
                        if c == 1 {
                            v[54] += 1;
                        }
                    }
                });
                if matches!(inst.op, Op::Load { .. } | Op::Store { .. }) {
                    v[55] += 1;
                }
            }
        }
    }
    v
}

/// One function's contribution to [`autophase`]. Every Autophase feature is
/// per-function additive, so the module vector is the element-wise sum of
/// these across live functions.
pub fn autophase_func(m: &Module, fid: FuncId) -> Vec<i64> {
    let mut v = vec![0i64; AUTOPHASE_DIM];
    let f = m.func(fid);
    v[2] += 1; // functions
               // Per-block pred counts.
    let mut preds: HashMap<BlockId, i64> = HashMap::new();
    let mut succs: HashMap<BlockId, i64> = HashMap::new();
    for b in f.blocks() {
        let ss = b.term.successors();
        succs.insert(b.id, ss.len() as i64);
        for s in ss {
            *preds.entry(s).or_default() += 1;
        }
    }
    for b in f.blocks() {
        v[0] += 1; // basic blocks
        let np = preds.get(&b.id).copied().unwrap_or(0);
        let ns = succs.get(&b.id).copied().unwrap_or(0);
        v[3] += ns; // edges
                    // Critical edges: multi-succ source to multi-pred target.
        if ns > 1 {
            for s in b.term.successors() {
                if preds.get(&s).copied().unwrap_or(0) > 1 {
                    v[4] += 1;
                }
            }
        }
        match np {
            1 => v[5] += 1,
            2 => v[6] += 1,
            x if x > 2 => v[7] += 1,
            _ => {}
        }
        match ns {
            1 => v[8] += 1,
            2 => v[9] += 1,
            x if x > 2 => v[10] += 1,
            _ => {}
        }
        if np == 1 && ns == 1 {
            v[11] += 1;
        }
        if np == 1 && ns == 2 {
            v[12] += 1;
        }
        if np == 2 && ns == 1 {
            v[13] += 1;
        }
        if np == 2 && ns == 2 {
            v[14] += 1;
        }
        let n = b.insts.len();
        if n >= 50 {
            v[15] += 1;
        } else if n >= 15 {
            v[16] += 1;
        } else {
            v[17] += 1;
        }
        match &b.term {
            Terminator::Br { .. } => v[18] += 1,
            Terminator::CondBr { .. } => v[19] += 1,
            Terminator::Switch { .. } => v[20] += 1,
            Terminator::Ret { .. } => v[21] += 1,
            Terminator::Unreachable => v[22] += 1,
        }
        let phis = b.phi_count() as i64;
        v[23] += phis;
        if phis == 0 {
            v[25] += 1;
        } else if phis <= 3 {
            v[26] += 1;
        } else {
            v[27] += 1;
        }
        for inst in &b.insts {
            v[1] += 1; // instructions
            match &inst.op {
                Op::Phi(incs) => {
                    v[24] += incs.len() as i64;
                    if incs.len() > 4 {
                        v[28] += 1;
                    }
                }
                Op::Bin(op, x, y) => {
                    v[29] += 1;
                    if x.is_const() || y.is_const() {
                        v[30] += 1;
                    }
                    match op {
                        BinOp::Add => v[31] += 1,
                        BinOp::Sub => v[32] += 1,
                        BinOp::Mul => v[33] += 1,
                        BinOp::Div | BinOp::Rem => v[34] += 1,
                        BinOp::And => v[35] += 1,
                        BinOp::Or => v[36] += 1,
                        BinOp::Xor => v[37] += 1,
                        BinOp::Shl => v[38] += 1,
                        BinOp::AShr | BinOp::LShr => v[39] += 1,
                        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => v[40] += 1,
                    }
                }
                Op::Icmp(..) => v[41] += 1,
                Op::Fcmp(..) => v[42] += 1,
                Op::Select { .. } => v[43] += 1,
                Op::Load { .. } => v[44] += 1,
                Op::Store { .. } => v[45] += 1,
                Op::Gep { .. } => v[46] += 1,
                Op::Alloca { .. } => v[47] += 1,
                Op::Call { args, .. } => {
                    v[48] += 1;
                    v[49] += args.iter().filter(|a| a.is_const()).count() as i64;
                }
                Op::Cast(..) => v[50] += 1,
                Op::Not(_) | Op::Neg(_) | Op::FNeg(_) => v[51] += 1,
            }
            inst.op.for_each_operand(|o| {
                if let Some(c) = o.as_const_int() {
                    v[52] += 1;
                    if c == 0 {
                        v[53] += 1;
                    }
                    if c == 1 {
                        v[54] += 1;
                    }
                }
            });
            if matches!(inst.op, Op::Load { .. } | Op::Store { .. }) {
                v[55] += 1;
            }
        }
    }
    v
}

/// Per-function feature cache backing the incremental InstCount/Autophase
/// observations. Passes report which functions they touched
/// ([`Touched`]); only those functions are re-scanned on the next
/// observation, so an action that rewrites one small function does not pay
/// to re-featurize the whole module. Consistency with the monolithic
/// [`inst_count`]/[`autophase`] scans is enforced by debug-assert
/// cross-checks at the observation site and a proptest over random
/// pipelines.
#[derive(Debug, Default, Clone)]
pub struct IncrementalFeatures {
    inst_count: HashMap<u32, Vec<i64>>,
    autophase: HashMap<u32, Vec<i64>>,
}

impl IncrementalFeatures {
    /// An empty cache: the first observation scans every function.
    pub fn new() -> IncrementalFeatures {
        IncrementalFeatures::default()
    }

    /// Drops everything. Call on reset or whenever the module is replaced
    /// wholesale (e.g. `load_state`).
    pub fn clear(&mut self) {
        self.inst_count.clear();
        self.autophase.clear();
    }

    /// Invalidates the functions a pass reported touching.
    pub fn invalidate(&mut self, touched: &Touched) {
        match touched {
            Touched::None => {}
            Touched::All => self.clear(),
            Touched::Funcs(ids) => {
                for id in ids {
                    self.inst_count.remove(&id.0);
                    self.autophase.remove(&id.0);
                }
            }
        }
    }

    /// Number of functions with a cached feature vector (for tests/stats).
    pub fn cached_functions(&self) -> usize {
        self.inst_count.len().max(self.autophase.len())
    }

    /// The InstCount observation, recomputing only dirty functions.
    pub fn inst_count(&mut self, m: &Module) -> Vec<i64> {
        let live = m.func_ids();
        prune(&mut self.inst_count, live);
        for fid in live {
            self.inst_count
                .entry(fid.0)
                .or_insert_with(|| inst_count_func(m, *fid));
        }
        combine_inst_count(live.iter().map(|f| &self.inst_count[&f.0]), m)
    }

    /// The Autophase observation, recomputing only dirty functions. Every
    /// Autophase feature is additive, so combining is an element-wise sum.
    pub fn autophase(&mut self, m: &Module) -> Vec<i64> {
        let live = m.func_ids();
        prune(&mut self.autophase, live);
        let mut v = vec![0i64; AUTOPHASE_DIM];
        for fid in live {
            let fv = self
                .autophase
                .entry(fid.0)
                .or_insert_with(|| autophase_func(m, *fid));
            for (slot, x) in v.iter_mut().zip(fv.iter()) {
                *slot += x;
            }
        }
        v
    }
}

/// Drops cache entries for functions no longer in the module (FuncIds are
/// never reused, so a dead id can simply be forgotten).
fn prune(cache: &mut HashMap<u32, Vec<i64>>, live: &[FuncId]) {
    if cache.len() > live.len() {
        let live_set: HashSet<u32> = live.iter().map(|f| f.0).collect();
        cache.retain(|id, _| live_set.contains(id));
    }
}

/// The inst2vec observation: a 200-D float embedding per module, the mean of
/// deterministic pseudo-embeddings looked up per instruction. Deliberately
/// the second most expensive observation (each instruction expands to a full
/// 200-D vector, as in the real embedding lookup), matching its cost
/// position in Table III.
pub fn inst2vec(m: &Module) -> Vec<f32> {
    let mut acc = vec![0f64; INST2VEC_DIM];
    let mut count = 0u64;
    for &fid in m.func_ids() {
        let f = m.func(fid);
        for b in f.blocks() {
            for inst in &b.insts {
                // The embedding key mirrors inst2vec's statement
                // canonicalization: opcode, result type, operand kinds.
                let mut key = cg_ir::fnv1a(inst.op.mnemonic().as_bytes());
                key ^= (inst.ty as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut arity = 0u64;
                inst.op.for_each_operand(|o| {
                    arity = arity.wrapping_mul(31).wrapping_add(match o {
                        Operand::Value(_) => 1,
                        Operand::Const(_) => 2,
                        Operand::Global(_) => 3,
                        Operand::Func(_) => 4,
                    });
                });
                key ^= arity.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let embedding = inst2vec_embedding(key);
                for (slot, val) in acc.iter_mut().zip(embedding.iter()) {
                    *slot += val;
                }
                count += 1;
            }
        }
    }
    if count > 0 {
        for slot in acc.iter_mut() {
            *slot /= count as f64;
        }
    }
    acc.into_iter().map(|x| x as f32).collect()
}

/// Expands one canonicalized-statement key into its 200-D embedding,
/// memoized process-wide: the statement vocabulary is small, so after warmup
/// each instruction costs one hash lookup instead of 200 mix rounds. The
/// expansion is deterministic, so caching cannot change the observation.
fn inst2vec_embedding(key: u64) -> Arc<[f64; INST2VEC_DIM]> {
    static MEMO: OnceLock<RwLock<HashMap<u64, Arc<[f64; INST2VEC_DIM]>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(e) = memo.read().unwrap().get(&key) {
        return Arc::clone(e);
    }
    let mut v = [0f64; INST2VEC_DIM];
    let mut z = key;
    for slot in v.iter_mut() {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        *slot = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    let embedding = Arc::new(v);
    let mut w = memo.write().unwrap();
    // Bound the table against adversarial key floods; the real vocabulary is
    // a few thousand entries at most.
    if w.len() < 1 << 16 {
        w.insert(key, Arc::clone(&embedding));
    }
    embedding
}

/// Node kinds in a ProGraML-style program graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// An instruction node (one per instruction and terminator).
    Instruction,
    /// A variable node (one per SSA value).
    Variable,
    /// A constant node (one per distinct constant).
    Constant,
    /// A function entry node.
    Function,
}

/// Edge kinds (flows) in a ProGraML-style program graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Control flow between instructions.
    Control,
    /// Data flow between values and instructions.
    Data,
    /// Call edges between call sites and function entries.
    Call,
}

/// One node of a [`ProgramGraph`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GraphNode {
    /// The node's kind.
    pub kind: NodeKind,
    /// A short text label (opcode mnemonic, value id, constant text).
    pub label: String,
    /// The opcode index for instruction nodes (0 otherwise); the GGNN cost
    /// model embeds nodes by this index.
    pub opcode: u32,
}

/// A typed directed multigraph over a module: the ProGraML representation
/// (instruction + variable + constant nodes; control, data and call edges).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ProgramGraph {
    /// Graph nodes.
    pub nodes: Vec<GraphNode>,
    /// `(source, target, kind)` edges.
    pub edges: Vec<(u32, u32, EdgeKind)>,
}

impl ProgramGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Builds the ProGraML-style graph of a module. The most expensive
/// observation (graph construction allocates per instruction, value and
/// edge), matching its position in Table III.
pub fn programl(m: &Module) -> ProgramGraph {
    let mut g = ProgramGraph::default();
    let mut const_nodes: HashMap<String, u32> = HashMap::new();
    // function id -> entry instruction node (for call edges); filled first
    // pass with function nodes.
    let mut fn_nodes: HashMap<u32, u32> = HashMap::new();
    for &fid in m.func_ids() {
        let idx = g.nodes.len() as u32;
        g.nodes.push(GraphNode {
            kind: NodeKind::Function,
            label: m.func(fid).name.clone(),
            opcode: 0,
        });
        fn_nodes.insert(fid.0, idx);
    }
    for &fid in m.func_ids() {
        let f = m.func(fid);
        let mut value_nodes: HashMap<u32, u32> = HashMap::new();
        let mut node_of_value = |g: &mut ProgramGraph, v: cg_ir::ValueId| -> u32 {
            *value_nodes.entry(v.0).or_insert_with(|| {
                let idx = g.nodes.len() as u32;
                g.nodes.push(GraphNode {
                    kind: NodeKind::Variable,
                    label: format!("%{}", v.0),
                    opcode: 0,
                });
                idx
            })
        };
        // Block-first instruction nodes, recording per-block first/last for
        // control edges.
        let mut block_first: HashMap<BlockId, u32> = HashMap::new();
        let mut block_last: HashMap<BlockId, u32> = HashMap::new();
        for b in f.blocks() {
            let mut prev: Option<u32> = None;
            for inst in b.insts.iter() {
                let idx = g.nodes.len() as u32;
                g.nodes.push(GraphNode {
                    kind: NodeKind::Instruction,
                    label: inst.op.mnemonic().to_string(),
                    opcode: inst.op.opcode_index() as u32 + 1,
                });
                if let Some(p) = prev {
                    g.edges.push((p, idx, EdgeKind::Control));
                }
                block_first.entry(b.id).or_insert(idx);
                prev = Some(idx);
                // Data edges.
                inst.op.for_each_operand(|o| match o {
                    Operand::Value(v) => {
                        let vn = node_of_value(&mut g, *v);
                        g.edges.push((vn, idx, EdgeKind::Data));
                    }
                    Operand::Const(c) => {
                        let key = c.to_string();
                        let cn = *const_nodes.entry(key.clone()).or_insert_with(|| {
                            let ci = g.nodes.len() as u32;
                            g.nodes.push(GraphNode {
                                kind: NodeKind::Constant,
                                label: key,
                                opcode: 0,
                            });
                            ci
                        });
                        g.edges.push((cn, idx, EdgeKind::Data));
                    }
                    _ => {}
                });
                if let Some(d) = inst.dest {
                    let vn = node_of_value(&mut g, d);
                    g.edges.push((idx, vn, EdgeKind::Data));
                }
                if let Op::Call { callee, .. } = &inst.op {
                    if let Some(&fe) = fn_nodes.get(&callee.0) {
                        g.edges.push((idx, fe, EdgeKind::Call));
                    }
                }
            }
            // Terminator node.
            let tidx = g.nodes.len() as u32;
            g.nodes.push(GraphNode {
                kind: NodeKind::Instruction,
                label: match &b.term {
                    Terminator::Br { .. } => "br",
                    Terminator::CondBr { .. } => "condbr",
                    Terminator::Switch { .. } => "switch",
                    Terminator::Ret { .. } => "ret",
                    Terminator::Unreachable => "unreachable",
                }
                .to_string(),
                opcode: 44
                    + match &b.term {
                        Terminator::Br { .. } => 0,
                        Terminator::CondBr { .. } => 1,
                        Terminator::Switch { .. } => 2,
                        Terminator::Ret { .. } => 3,
                        Terminator::Unreachable => 4,
                    },
            });
            if let Some(p) = prev {
                g.edges.push((p, tidx, EdgeKind::Control));
            }
            block_first.entry(b.id).or_insert(tidx);
            block_last.insert(b.id, tidx);
            b.term.for_each_operand(|o| {
                if let Operand::Value(v) = o {
                    let vn = node_of_value(&mut g, *v);
                    g.edges.push((vn, tidx, EdgeKind::Data));
                }
            });
        }
        // Cross-block control edges.
        for b in f.blocks() {
            let from = block_last[&b.id];
            for s in b.term.successors() {
                if let Some(&to) = block_first.get(&s) {
                    g.edges.push((from, to, EdgeKind::Control));
                }
            }
        }
        // Function entry edge.
        if let Some(&fe) = fn_nodes.get(&fid.0) {
            if let Some(&first) = f.block_ids().first().and_then(|e| block_first.get(e)) {
                g.edges.push((fe, first, EdgeKind::Call));
            }
        }
    }
    g
}

/// The observation spaces of the LLVM environment, by name.
pub const SPACE_NAMES: &[&str] = &["Ir", "InstCount", "Autophase", "Inst2vec", "Programl"];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        cg_datasets::benchmark("cbench-v1/crc32").unwrap()
    }

    #[test]
    fn dimensions_are_stable() {
        let m = sample();
        assert_eq!(inst_count(&m).len(), INST_COUNT_DIM);
        assert_eq!(autophase(&m).len(), AUTOPHASE_DIM);
        assert_eq!(inst2vec(&m).len(), INST2VEC_DIM);
    }

    #[test]
    fn inst_count_totals_match_module() {
        let m = sample();
        let v = inst_count(&m);
        assert_eq!(v[48], m.inst_count() as i64);
        assert_eq!(v[50], m.num_functions() as i64);
        assert_eq!(v[51], m.globals().len() as i64);
    }

    #[test]
    fn autophase_counts_blocks_and_insts() {
        let m = sample();
        let v = autophase(&m);
        let blocks: usize = m.func_ids().iter().map(|f| m.func(*f).num_blocks()).sum();
        assert_eq!(v[0], blocks as i64);
        assert!(v[44] > 0, "crc32 loads from its table");
        assert!(v[1] > 0);
    }

    #[test]
    fn features_distinguish_programs() {
        let a = autophase(&sample());
        let b = autophase(&cg_datasets::benchmark("cbench-v1/qsort").unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn features_change_under_optimization() {
        let mut m = sample();
        let before = autophase(&m);
        crate::pipeline::run_oz(&mut m);
        assert_ne!(before, autophase(&m));
    }

    #[test]
    fn inst2vec_is_deterministic() {
        let m = sample();
        assert_eq!(inst2vec(&m), inst2vec(&m));
    }

    #[test]
    fn programl_graph_shape() {
        let m = sample();
        let g = programl(&m);
        // At least one node per instruction plus variables and constants.
        assert!(g.node_count() > m.inst_count());
        assert!(g.edge_count() > g.node_count());
        let has_kind = |k: EdgeKind| g.edges.iter().any(|(_, _, e)| *e == k);
        assert!(has_kind(EdgeKind::Control));
        assert!(has_kind(EdgeKind::Data));
        assert!(has_kind(EdgeKind::Call));
        // Edge endpoints are valid.
        for (s, t, _) in &g.edges {
            assert!((*s as usize) < g.node_count());
            assert!((*t as usize) < g.node_count());
        }
    }
}
