//! Shared analysis helpers for the pass library.

use std::collections::HashMap;

use cg_ir::interp::{eval_bin, eval_cast, eval_fcmp, eval_icmp, Value};
use cg_ir::{AnalysisManager, Constant, FuncId, Function, Module, Op, Operand, Type, ValueId};

use crate::pass::PassEffect;

/// Runs a function-local transform over every function with access to the
/// shared analysis cache, recording exactly which functions changed — the
/// precise invalidation set for incremental observations. The body fetches
/// whatever analyses it needs via `am.cfg(fid, m.func(fid))` and friends
/// *before* taking `m.func_mut(fid)`; a session-owned manager turns those
/// fetches into cache hits whenever the preceding pass left the function
/// (or its CFG shape) untouched.
pub fn for_each_function_with(
    m: &mut Module,
    am: &mut AnalysisManager,
    mut body: impl FnMut(FuncId, &mut Module, &mut AnalysisManager) -> bool,
) -> PassEffect {
    let mut touched = Vec::new();
    for fid in m.func_ids_vec() {
        if body(fid, m, am) {
            touched.push(fid);
        }
    }
    PassEffect::funcs(touched)
}

/// Dense per-value use counts (indexed by `ValueId.0`), counting uses in
/// instructions and terminators.
pub fn use_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.value_bound() as usize];
    for id in f.block_ids_vec() {
        let b = f.block(id);
        for inst in &b.insts {
            inst.op.for_each_operand(|o| {
                if let Some(v) = o.as_value() {
                    counts[v.0 as usize] += 1;
                }
            });
        }
        b.term.for_each_operand(|o| {
            if let Some(v) = o.as_value() {
                counts[v.0 as usize] += 1;
            }
        });
    }
    counts
}

/// Map from value id to the type of the value (parameters + definitions).
pub fn value_types(f: &Function) -> HashMap<ValueId, Type> {
    let mut types = HashMap::new();
    for (v, t) in &f.params {
        types.insert(*v, *t);
    }
    for id in f.block_ids_vec() {
        for inst in &f.block(id).insts {
            if let Some(d) = inst.dest {
                types.insert(d, inst.ty);
            }
        }
    }
    types
}

fn const_to_value(c: Constant) -> Value {
    match c {
        Constant::Bool(b) => Value::Bool(b),
        Constant::Int(i) => Value::Int(i),
        Constant::Float(f) => Value::Float(f),
    }
}

fn value_to_const(v: Value) -> Option<Constant> {
    match v {
        Value::Bool(b) => Some(Constant::Bool(b)),
        Value::Int(i) => Some(Constant::Int(i)),
        Value::Float(f) => Some(Constant::Float(f)),
        Value::Ptr(_) => None,
    }
}

/// Attempts to evaluate an operation whose operands are all constants,
/// using the *interpreter's own* evaluators so folding can never diverge
/// from execution semantics. Trapping operations (div by zero) fold to
/// `None` and are left in place.
pub fn fold_op(op: &Op) -> Option<Constant> {
    let c = |o: &Operand| o.as_const();
    match op {
        Op::Bin(b, x, y) => {
            let (x, y) = (c(x)?, c(y)?);
            let v = eval_bin(*b, const_to_value(x), const_to_value(y)).ok()?;
            value_to_const(v)
        }
        Op::Icmp(p, x, y) => {
            let (x, y) = (c(x)?, c(y)?);
            let (Constant::Int(a), Constant::Int(b)) = (x, y) else {
                return None;
            };
            Some(Constant::Bool(eval_icmp(*p, a, b)))
        }
        Op::Fcmp(p, x, y) => {
            let (x, y) = (c(x)?, c(y)?);
            let (Constant::Float(a), Constant::Float(b)) = (x, y) else {
                return None;
            };
            Some(Constant::Bool(eval_fcmp(*p, a, b)))
        }
        Op::Select {
            cond,
            on_true,
            on_false,
        } => {
            let Constant::Bool(b) = c(cond)? else {
                return None;
            };
            if b {
                c(on_true)
            } else {
                c(on_false)
            }
        }
        Op::Cast(kind, v) => {
            let v = c(v)?;
            let out = eval_cast(*kind, const_to_value(v)).ok()?;
            value_to_const(out)
        }
        Op::Not(v) => match c(v)? {
            Constant::Int(i) => Some(Constant::Int(!i)),
            Constant::Bool(b) => Some(Constant::Bool(!b)),
            _ => None,
        },
        Op::Neg(v) => match c(v)? {
            Constant::Int(i) => Some(Constant::Int(i.wrapping_neg())),
            _ => None,
        },
        Op::FNeg(v) => match c(v)? {
            Constant::Float(f) => Some(Constant::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// Applies a batch of value substitutions to a function, resolving chains
/// (`d2 → d1, d1 → x` must rewrite uses of `d2` to `x`, not to the deleted
/// `d1`), then deletes the substituted pure definitions.
///
/// Every simplification pass that batches replacements must go through this
/// helper; applying substitutions in discovery order resurrects deleted
/// values whenever one replacement's target is another's key.
///
/// Contract: callers may only substitute values whose defining instruction
/// is safe to delete — proven-redundant pure computations, or trapping ops
/// proven non-trapping (e.g. a constant-folded division, which evaluated
/// without trapping by construction). The definitions of all non-cyclic
/// keys are removed.
pub fn apply_substitutions(f: &mut Function, subs: Vec<(ValueId, Operand)>) {
    if subs.is_empty() {
        return;
    }
    let map: HashMap<ValueId, Operand> = subs.iter().cloned().collect();
    // Resolve each key's final replacement; keys whose chains form a cycle
    // (e.g. two mutually-trivial φs in a degenerate loop) are dropped — they
    // keep their definitions, which is always sound.
    let mut resolved: HashMap<ValueId, Operand> = HashMap::new();
    #[allow(clippy::mutable_key_type)]
    let mut cyclic: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
    for &k in map.keys() {
        let mut seen = vec![k];
        let mut o = map[&k];
        loop {
            match o.as_value() {
                Some(v) if seen.contains(&v) => {
                    cyclic.extend(seen.iter().copied());
                    break;
                }
                Some(v) if map.contains_key(&v) => {
                    seen.push(v);
                    o = map[&v];
                }
                _ => {
                    resolved.insert(k, o);
                    break;
                }
            }
        }
    }
    let dead: std::collections::HashSet<ValueId> = resolved
        .keys()
        .copied()
        .filter(|k| !cyclic.contains(k))
        .collect();
    resolved.retain(|k, _| dead.contains(k));
    // One sweep over the function rewrites every use (per-substitution
    // `replace_all_uses` would be quadratic on large modules).
    for bid in f.block_ids_vec() {
        let block = f.block_mut(bid);
        for inst in &mut block.insts {
            inst.op.for_each_operand_mut(|o| {
                if let Some(v) = o.as_value() {
                    if let Some(rep) = resolved.get(&v) {
                        *o = *rep;
                    }
                }
            });
        }
        block.term.for_each_operand_mut(|o| {
            if let Some(v) = o.as_value() {
                if let Some(rep) = resolved.get(&v) {
                    *o = *rep;
                }
            }
        });
        block.insts.retain(|i| match i.dest {
            Some(d) => !dead.contains(&d),
            None => true,
        });
    }
}

/// Counts the number of call sites of each function in the module, as a
/// dense table indexed by `FuncId.0`.
pub fn call_counts(m: &Module) -> Vec<u32> {
    let mut counts = vec![0u32; m.func_bound() as usize];
    for fid in m.func_ids_vec() {
        for b in m.func(fid).blocks() {
            for inst in &b.insts {
                if let Op::Call { callee, .. } = &inst.op {
                    counts[callee.0 as usize] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::BinOp;

    #[test]
    fn fold_arithmetic() {
        let op = Op::Bin(BinOp::Add, Operand::const_int(2), Operand::const_int(3));
        assert_eq!(fold_op(&op), Some(Constant::Int(5)));
        let trap = Op::Bin(BinOp::Div, Operand::const_int(1), Operand::const_int(0));
        assert_eq!(fold_op(&trap), None);
    }

    #[test]
    fn fold_select_and_cast() {
        let op = Op::Select {
            cond: Operand::const_bool(true),
            on_true: Operand::const_int(7),
            on_false: Operand::const_int(9),
        };
        assert_eq!(fold_op(&op), Some(Constant::Int(7)));
        let cast = Op::Cast(cg_ir::CastKind::IntToFloat, Operand::const_int(2));
        assert_eq!(fold_op(&cast), Some(Constant::Float(2.0)));
    }

    #[test]
    fn fold_partial_constants_returns_none() {
        let op = Op::Bin(
            BinOp::Add,
            Operand::Value(ValueId(0)),
            Operand::const_int(3),
        );
        assert_eq!(fold_op(&op), None);
    }
}
