//! The [`Pass`] abstraction and the pass registry.

use cg_ir::{AnalysisManager, FuncId, Module};
use std::fmt;
use std::sync::Arc;

/// Which functions a pass invocation may have modified.
///
/// This is the contract behind incremental observations: per-function
/// feature vectors (`InstCount`, `Autophase`) stay valid for every function
/// *not* named here. A pass that cannot bound its effect must report
/// [`Touched::All`]; over-approximation is always sound, under-approximation
/// is a correctness bug (caught by the debug-assert cross-check against full
/// recomputation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Touched {
    /// No function was modified (the pass was a no-op).
    None,
    /// Exactly these functions may have been modified. Function-local
    /// passes report the precise set.
    Funcs(Vec<FuncId>),
    /// Anything may have changed, including the set of functions itself
    /// (inlining, function deletion, global rewrites).
    All,
}

impl Touched {
    /// Merges another effect into this one (set union, saturating at `All`).
    pub fn merge(&mut self, other: Touched) {
        match (&mut *self, other) {
            (Touched::All, _) | (_, Touched::None) => {}
            (_, Touched::All) => *self = Touched::All,
            (Touched::None, o) => *self = o,
            (Touched::Funcs(a), Touched::Funcs(b)) => {
                for id in b {
                    if !a.contains(&id) {
                        a.push(id);
                    }
                }
            }
        }
    }
}

/// The result of one tracked pass invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassEffect {
    /// Whether the module was changed at all.
    pub changed: bool,
    /// Which functions may have been modified.
    pub touched: Touched,
}

impl PassEffect {
    /// An invocation that changed nothing.
    pub fn unchanged() -> PassEffect {
        PassEffect {
            changed: false,
            touched: Touched::None,
        }
    }

    /// The conservative effect: if `changed`, anything may differ.
    pub fn whole_module(changed: bool) -> PassEffect {
        PassEffect {
            changed,
            touched: if changed { Touched::All } else { Touched::None },
        }
    }

    /// A function-local effect touching exactly `funcs` (empty → unchanged).
    pub fn funcs(funcs: Vec<FuncId>) -> PassEffect {
        if funcs.is_empty() {
            PassEffect::unchanged()
        } else {
            PassEffect {
                changed: true,
                touched: Touched::Funcs(funcs),
            }
        }
    }
}

/// Which cached analyses a pass leaves valid for the functions it *did*
/// modify. (Functions a pass reports untouched always keep their analyses.)
///
/// Over-claiming preservation is a soundness bug — the analysis-cache
/// soundness property test compares every cached analysis against a fresh
/// recompute after each pass, so a wrong declaration fails loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preserved {
    /// Nothing: all cached analyses for touched functions are dropped.
    /// Always sound; the default.
    #[default]
    None,
    /// CFG shape: the pass rewrites instructions but never terminators,
    /// layout order or the block set, so `Cfg`, dominators, frontiers and
    /// the loop forest stay valid; value-level analyses (liveness, def-use)
    /// are dropped.
    Cfg,
    /// Everything: the pass changes no IR structure analyses depend on
    /// (e.g. it only flips function attributes).
    All,
}

/// An optimization pass: a named module transformation.
///
/// Passes must be deterministic (the state-validation machinery replays
/// action sequences and compares module hashes) — the deliberately broken
/// [`crate::passes::gvn::GvnSink`] is the one exception, mirroring the
/// `-gvn-sink` nondeterminism bug the paper found in LLVM.
///
/// Implement exactly one of `run` or `run_with` (the other, plus
/// `run_tracked`, is defaulted in terms of it). Function-local passes
/// implement `run_with` to report the precise set of modified functions and
/// to fetch CFG/dominator/loop analyses from the shared
/// [`AnalysisManager`] instead of recomputing them; module-restructuring
/// passes (inlining, global rewrites) implement `run` and inherit the
/// conservative [`Touched::All`]-when-changed effect.
pub trait Pass: Send + Sync {
    /// The pass name as it appears in the action space (kebab-case, possibly
    /// with a parameter suffix, e.g. `inline-250`).
    fn name(&self) -> String;

    /// Runs the pass. Returns `true` if the module was changed.
    fn run(&self, module: &mut Module) -> bool {
        self.run_with(module, &mut AnalysisManager::new()).changed
    }

    /// Runs the pass with a throwaway analysis cache, reporting which
    /// functions it touched.
    fn run_tracked(&self, module: &mut Module) -> PassEffect {
        self.run_with(module, &mut AnalysisManager::new())
    }

    /// Runs the pass against a shared analysis cache. The pass may consume
    /// cached analyses; it must not reconcile the cache afterwards — the
    /// runner does that from the returned effect and [`Pass::preserved`]
    /// (see [`run_pass_with`]).
    fn run_with(&self, module: &mut Module, am: &mut AnalysisManager) -> PassEffect {
        let _ = am;
        PassEffect::whole_module(self.run(module))
    }

    /// Which analyses survive this pass for the functions it modified.
    fn preserved(&self) -> Preserved {
        Preserved::None
    }

    /// A one-line description for `--help`-style listings.
    fn description(&self) -> String {
        String::new()
    }
}

/// Runs `pass` against `am`, then reconciles the cache with the reported
/// effect: analyses of untouched functions are revalidated (their stamps
/// moved during scanning, their content did not), touched functions keep
/// whatever [`Pass::preserved`] declares, and module-restructuring effects
/// ([`Touched::All`]) flush the cache entirely.
pub fn run_pass_with(pass: &dyn Pass, m: &mut Module, am: &mut AnalysisManager) -> PassEffect {
    let name = pass.name();
    // No-op memo: if this pass already ran on byte-identical content and
    // changed nothing, skip the whole application (scan included).
    if am.known_noop(&name, m) {
        return PassEffect::unchanged();
    }
    let effect = pass.run_with(m, am);
    reconcile_analyses(m, am, &effect, pass.preserved());
    if !effect.changed {
        am.note_noop(&name, m);
    }
    effect
}

/// The cache-reconciliation half of [`run_pass_with`], exposed for runners
/// that time or trace the pass invocation themselves.
pub fn reconcile_analyses(
    m: &Module,
    am: &mut AnalysisManager,
    effect: &PassEffect,
    preserved: Preserved,
) {
    match &effect.touched {
        Touched::None => {
            for &fid in m.func_ids() {
                am.revalidate(fid, m.func(fid));
            }
        }
        Touched::Funcs(touched) => {
            for &fid in m.func_ids() {
                if touched.contains(&fid) {
                    match preserved {
                        Preserved::None => am.invalidate(fid),
                        Preserved::Cfg => am.preserve_cfg(fid, m.func(fid)),
                        Preserved::All => am.revalidate(fid, m.func(fid)),
                    }
                } else {
                    am.revalidate(fid, m.func(fid));
                }
            }
        }
        Touched::All => match preserved {
            Preserved::All => {
                for &fid in m.func_ids() {
                    am.revalidate(fid, m.func(fid));
                }
            }
            _ => am.invalidate_all(),
        },
    }
}

impl fmt::Debug for dyn Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pass({})", self.name())
    }
}

/// A shared, clonable handle to a pass.
pub type PassRef = Arc<dyn Pass>;

/// Builds the full pass registry: every distinct pass object, including
/// parameterized variants. See [`crate::action_space`] for the 124-entry
/// action space assembled from this registry.
pub fn registry() -> Vec<PassRef> {
    use crate::passes::*;
    let mut v: Vec<PassRef> = vec![
        // Scalar cleanups (12).
        Arc::new(scalar::Dce),
        Arc::new(scalar::Adce),
        Arc::new(scalar::Die),
        Arc::new(scalar::ConstFold),
        Arc::new(scalar::InstCombine::full()),
        Arc::new(scalar::InstCombine::simplify_only()),
        Arc::new(scalar::Reassociate),
        Arc::new(scalar::EarlyCse),
        Arc::new(scalar::EarlyCseMemssa),
        Arc::new(scalar::Sink),
        Arc::new(scalar::PhiSimplify),
        Arc::new(scalar::StrengthReduce),
        // CFG (9).
        Arc::new(cfg::SimplifyCfg::default()),
        Arc::new(cfg::SimplifyCfg::aggressive()),
        Arc::new(cfg::RemoveUnreachable),
        Arc::new(cfg::MergeBlocks),
        Arc::new(cfg::FoldBranches),
        Arc::new(cfg::LowerSwitch),
        Arc::new(cfg::JumpThreading),
        Arc::new(cfg::BreakCritEdges),
        Arc::new(cfg::MergeReturn),
        // Memory (4 + 8 SROA granularities below).
        Arc::new(memory::Mem2Reg),
        Arc::new(memory::Dse),
        Arc::new(memory::GlobalOpt),
        Arc::new(memory::LoadElim),
    ];
    for max in [4u32, 6, 8, 12, 16, 24, 32, 64] {
        v.push(Arc::new(memory::Sroa::with_max_slots(max)));
    }

    // Value numbering (3).
    v.push(Arc::new(gvn::Gvn::default()));
    v.push(Arc::new(gvn::Gvn::with_loads()));
    v.push(Arc::new(gvn::NewGvnAlias));

    // Constant propagation (2).
    v.push(Arc::new(sccp::Sccp));
    v.push(Arc::new(sccp::IpSccp));

    // Loops (4 + 16 partial-unroll + 16 full-unroll + 16 peel).
    v.push(Arc::new(loops::LoopSimplify));
    v.push(Arc::new(loops::Licm));
    v.push(Arc::new(loops::LoopDeletion));
    v.push(Arc::new(loops::IndVarSimplify));
    for factor in [2u32, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 32] {
        v.push(Arc::new(loops::LoopUnroll::partial(factor)));
    }
    for cap in [
        8u64, 12, 16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 256, 384, 512, 1024,
    ] {
        v.push(Arc::new(loops::LoopUnroll::full(cap)));
    }
    for k in 1u32..=16 {
        v.push(Arc::new(loops::LoopPeel::new(k)));
    }

    // Interprocedural (5 + 29 inline thresholds).
    v.push(Arc::new(ipo::AlwaysInline));
    v.push(Arc::new(ipo::FunctionAttrs));
    v.push(Arc::new(ipo::DeadArgElim));
    v.push(Arc::new(ipo::GlobalDce));
    v.push(Arc::new(ipo::MergeFunc));
    for threshold in [
        0u32, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100, 120, 140, 160, 180, 200,
        225, 250, 275, 300, 400, 500, 750, 1000,
    ] {
        v.push(Arc::new(ipo::Inline::with_threshold(threshold)));
    }

    v
}

/// Looks up a pass by name in the registry.
pub fn find_pass(name: &str) -> Option<PassRef> {
    registry().into_iter().find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_124_passes() {
        // The paper's LLVM environment exposes 124 actions; our registry is
        // sized to match (see action_space.rs for the mapping).
        assert_eq!(registry().len(), 124);
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<String> = registry().iter().map(|p| p.name()).collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len(), "duplicate pass names");
    }

    #[test]
    fn find_pass_by_name() {
        assert!(find_pass("dce").is_some());
        assert!(find_pass("inline-250").is_some());
        assert!(find_pass("no-such-pass").is_none());
    }

    #[test]
    fn every_pass_preserves_validity_on_cbench() {
        // The fundamental pass contract: run on a real benchmark, the module
        // must still verify.
        let base = cg_datasets::benchmark("cbench-v1/qsort").unwrap();
        for pass in registry() {
            let mut m = base.clone();
            pass.run(&mut m);
            cg_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} broke the module: {e}", pass.name()));
        }
    }

    #[test]
    fn every_pass_preserves_semantics_on_cbench() {
        use cg_ir::interp::{run_main, ExecLimits};
        let base = cg_datasets::benchmark("cbench-v1/bitcount").unwrap();
        let limits = ExecLimits::default();
        let reference = run_main(&base, &limits).unwrap();
        for pass in registry() {
            let mut m = base.clone();
            pass.run(&mut m);
            let out = run_main(&m, &limits)
                .unwrap_or_else(|e| panic!("{} made the program trap: {e}", pass.name()));
            assert_eq!(out.ret, reference.ret, "{} changed the result", pass.name());
            assert_eq!(
                out.globals_hash,
                reference.globals_hash,
                "{} changed observable memory",
                pass.name()
            );
        }
    }
}
