//! Sparse conditional constant propagation, intraprocedural and
//! interprocedural.

use std::collections::{HashMap, HashSet, VecDeque};

use cg_ir::{BlockId, Constant, FuncId, Function, Module, Op, Operand, Terminator, ValueId};

use crate::pass::{Pass, PassEffect};
use crate::util::fold_op;

/// The SCCP lattice.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Lattice {
    /// Not yet known (top).
    Unknown,
    /// Proven constant.
    Const(Constant),
    /// Not a constant (bottom).
    Over,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Unknown, x) | (x, Lattice::Unknown) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Over,
        }
    }
}

/// Runs the SCCP dataflow on one function. `arg_consts` optionally supplies
/// known-constant parameter values (used by the interprocedural variant).
/// Returns the per-value lattice and the set of executable blocks.
fn sccp_solve(
    f: &Function,
    arg_consts: &HashMap<ValueId, Lattice>,
) -> (HashMap<ValueId, Lattice>, HashSet<BlockId>) {
    let mut values: HashMap<ValueId, Lattice> = HashMap::new();
    for (v, _) in &f.params {
        values.insert(*v, arg_consts.get(v).copied().unwrap_or(Lattice::Over));
    }
    let mut executable: HashSet<BlockId> = HashSet::new();
    let mut block_queue: VecDeque<BlockId> = VecDeque::new();
    let mut revisit = true;
    block_queue.push_back(f.entry());

    let op_lattice = |values: &HashMap<ValueId, Lattice>, o: &Operand| -> Lattice {
        match o {
            Operand::Const(c) => Lattice::Const(*c),
            Operand::Value(v) => values.get(v).copied().unwrap_or(Lattice::Unknown),
            _ => Lattice::Over,
        }
    };

    // Iterate to a fixpoint: evaluate executable blocks, expanding the
    // executable set through branch conditions that are known constants.
    while revisit {
        revisit = false;
        while let Some(b) = block_queue.pop_front() {
            if !executable.insert(b) {
                continue;
            }
            revisit = true;
        }
        for b in f.block_ids_vec() {
            if !executable.contains(&b) {
                continue;
            }
            let block = f.block(b);
            for inst in &block.insts {
                let Some(d) = inst.dest else { continue };
                let old = values.get(&d).copied().unwrap_or(Lattice::Unknown);
                let new = match &inst.op {
                    Op::Phi(incs) => {
                        let mut acc = Lattice::Unknown;
                        for (p, v) in incs {
                            if executable.contains(p) {
                                acc = acc.meet(op_lattice(&values, v));
                            }
                        }
                        acc
                    }
                    op if op.reads_memory()
                        || op.has_side_effects()
                        || matches!(op, Op::Alloca { .. } | Op::Call { .. }) =>
                    {
                        Lattice::Over
                    }
                    op => {
                        // Substitute known constants into a copy and fold.
                        let mut k = op.clone();
                        let mut all_known = true;
                        let mut any_over = false;
                        k.for_each_operand_mut(|o| match op_lattice(&values, o) {
                            Lattice::Const(c) => *o = Operand::Const(c),
                            Lattice::Over => {
                                any_over = true;
                                all_known = false;
                            }
                            Lattice::Unknown => all_known = false,
                        });
                        if all_known {
                            match fold_op(&k) {
                                Some(c) => Lattice::Const(c),
                                None => Lattice::Over, // traps at runtime
                            }
                        } else if any_over {
                            Lattice::Over
                        } else {
                            Lattice::Unknown
                        }
                    }
                };
                let met = old.meet(new);
                // Monotonic update only (meet can only lower).
                if met != old {
                    values.insert(d, met);
                    revisit = true;
                }
            }
            // Mark successor edges executable.
            match &block.term {
                Terminator::Br { target } if !executable.contains(target) => {
                    block_queue.push_back(*target);
                }
                Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                } => match op_lattice(&values, cond) {
                    Lattice::Const(Constant::Bool(true)) => {
                        if !executable.contains(on_true) {
                            block_queue.push_back(*on_true);
                        }
                    }
                    Lattice::Const(Constant::Bool(false)) => {
                        if !executable.contains(on_false) {
                            block_queue.push_back(*on_false);
                        }
                    }
                    Lattice::Unknown => {}
                    _ => {
                        for t in [on_true, on_false] {
                            if !executable.contains(t) {
                                block_queue.push_back(*t);
                            }
                        }
                    }
                },
                Terminator::Switch {
                    value,
                    cases,
                    default,
                } => match op_lattice(&values, value) {
                    Lattice::Const(Constant::Int(v)) => {
                        let t = cases
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, b)| *b)
                            .unwrap_or(*default);
                        if !executable.contains(&t) {
                            block_queue.push_back(t);
                        }
                    }
                    Lattice::Unknown => {}
                    _ => {
                        for (_, t) in cases {
                            if !executable.contains(t) {
                                block_queue.push_back(*t);
                            }
                        }
                        if !executable.contains(default) {
                            block_queue.push_back(*default);
                        }
                    }
                },
                _ => {}
            }
        }
    }
    (values, executable)
}

/// Applies a solved SCCP result to the function: proven constants replace
/// their instructions, and branches into non-executable blocks are folded.
fn sccp_apply(
    f: &mut Function,
    values: &HashMap<ValueId, Lattice>,
    executable: &HashSet<BlockId>,
) -> bool {
    let mut changed = false;
    // Replace constant values.
    let consts: Vec<(ValueId, Constant)> = values
        .iter()
        .filter_map(|(v, l)| match l {
            Lattice::Const(c) if !f.params.iter().any(|(p, _)| p == v) => Some((*v, *c)),
            _ => None,
        })
        .collect();
    if !consts.is_empty() {
        crate::util::apply_substitutions(
            f,
            consts
                .into_iter()
                .map(|(v, c)| (v, Operand::Const(c)))
                .collect(),
        );
        changed = true;
    }
    // Fold branches leading into unexecutable blocks.
    for bid in f.block_ids_vec() {
        if !executable.contains(&bid) {
            continue;
        }
        let term = f.block(bid).term.clone();
        if let Terminator::CondBr {
            cond: _,
            on_true,
            on_false,
        } = term
        {
            let t_dead = !executable.contains(&on_true);
            let e_dead = !executable.contains(&on_false);
            if t_dead != e_dead {
                let taken = if t_dead { on_false } else { on_true };
                let lost = if t_dead { on_true } else { on_false };
                f.block_mut(bid).term = Terminator::Br { target: taken };
                // Remove φ incomings in the lost block.
                for inst in &mut f.block_mut(lost).insts {
                    if let Op::Phi(incs) = &mut inst.op {
                        incs.retain(|(b, _)| *b != bid);
                    }
                }
                changed = true;
            }
        }
    }
    changed
}

/// Intraprocedural sparse conditional constant propagation.
#[derive(Debug, Default)]
pub struct Sccp;

impl Pass for Sccp {
    fn name(&self) -> String {
        "sccp".into()
    }

    fn description(&self) -> String {
        "sparse conditional constant propagation".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let mut touched = Vec::new();
        for fid in m.func_ids_vec() {
            let f = m.func_mut(fid);
            let (values, executable) = sccp_solve(f, &HashMap::new());
            if sccp_apply(f, &values, &executable) {
                touched.push(fid);
            }
        }
        PassEffect::funcs(touched)
    }
}

/// Interprocedural SCCP: parameters that receive the same constant at every
/// call site propagate into the callee.
#[derive(Debug, Default)]
pub struct IpSccp;

impl Pass for IpSccp {
    fn name(&self) -> String {
        "ipsccp".into()
    }

    fn description(&self) -> String {
        "interprocedural constant propagation into parameters".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        // Gather, per function parameter, the meet of all actual arguments.
        let mut param_lattice: HashMap<FuncId, Vec<Lattice>> = HashMap::new();
        let mut called: HashSet<FuncId> = HashSet::new();
        for fid in m.func_ids_vec() {
            for b in m.func(fid).blocks() {
                for inst in &b.insts {
                    if let Op::Call { callee, args } = &inst.op {
                        called.insert(*callee);
                        let entry = param_lattice
                            .entry(*callee)
                            .or_insert_with(|| vec![Lattice::Unknown; args.len()]);
                        for (slot, a) in entry.iter_mut().zip(args) {
                            let l = match a {
                                Operand::Const(c) => Lattice::Const(*c),
                                _ => Lattice::Over,
                            };
                            *slot = slot.meet(l);
                        }
                    }
                }
            }
        }
        let mut touched = Vec::new();
        for fid in m.func_ids_vec() {
            // Entry points (uncalled functions, e.g. main) have unknown
            // external parameters — treat as Over.
            let seeds: HashMap<ValueId, Lattice> = match param_lattice.get(&fid) {
                Some(ls) if called.contains(&fid) => m
                    .func(fid)
                    .params
                    .iter()
                    .zip(ls)
                    .map(|((v, _), l)| (*v, *l))
                    .collect(),
                _ => HashMap::new(),
            };
            let f = m.func_mut(fid);
            let (values, executable) = sccp_solve(f, &seeds);
            let mut func_changed = sccp_apply(f, &values, &executable);
            // Materialize proven-constant parameters inside the callee.
            for (v, l) in &seeds {
                if let Lattice::Const(c) = l {
                    f.replace_all_uses(*v, Operand::Const(*c));
                    let _ = values;
                    func_changed = true;
                }
            }
            if func_changed {
                touched.push(fid);
            }
        }
        PassEffect::funcs(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::verify::verify_module;
    use cg_ir::{BinOp, Pred, Type};

    #[test]
    fn sccp_proves_branch_dead() {
        // x = 3; if (x < 10) ret 1 else ret huge-computation
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let x = fb.bin(BinOp::Add, Operand::const_int(1), Operand::const_int(2));
        let c = fb.icmp(Pred::Lt, x, Operand::const_int(10));
        let t = fb.new_block();
        let e = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.ret(Some(Operand::const_int(1)));
        fb.switch_to(e);
        let p = fb.param(0);
        let big = fb.bin(BinOp::Mul, p, p);
        fb.ret(Some(big));
        fb.finish();
        let mut m = mb.finish();
        assert!(Sccp.run(&mut m));
        verify_module(&m).unwrap();
        // The false branch is proven dead: terminator folded to br t.
        let f = m.func(m.find_func("f").unwrap());
        assert!(matches!(f.block(f.entry()).term, Terminator::Br { .. }));
    }

    #[test]
    fn sccp_propagates_through_phi() {
        // Both arms assign the same constant: φ is constant.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        let phi = fb.phi(
            Type::I64,
            vec![(t, Operand::const_int(7)), (e, Operand::const_int(7))],
        );
        let r = fb.bin(BinOp::Add, phi, Operand::const_int(1));
        fb.ret(Some(r));
        fb.finish();
        let mut m = mb.finish();
        assert!(Sccp.run(&mut m));
        verify_module(&m).unwrap();
        let f = m.func(m.find_func("f").unwrap());
        // φ and add both folded; the join returns 8 directly.
        let join_term = &f
            .blocks()
            .find(|b| matches!(b.term, Terminator::Ret { .. }))
            .unwrap()
            .term;
        match join_term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v.as_const_int(), Some(8)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn ipsccp_propagates_constant_arguments() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("helper", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let r = fb.bin(BinOp::Mul, p, Operand::const_int(2));
        fb.ret(Some(r));
        let helper = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let a = fb
            .call(helper, Type::I64, vec![Operand::const_int(21)])
            .unwrap();
        fb.ret(Some(a));
        fb.finish();
        let mut m = mb.finish();
        assert!(IpSccp.run(&mut m));
        verify_module(&m).unwrap();
        // helper's body is now `ret 42`.
        let f = m.func(m.find_func("helper").unwrap());
        match &f.block(f.entry()).term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v.as_const_int(), Some(42)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn sccp_keeps_loop_variant_values() {
        use cg_ir::interp::{run_main, ExecLimits};
        let mut m = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
        let reference = run_main(&m, &ExecLimits::default()).unwrap();
        Sccp.run(&mut m);
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(reference.ret, after.ret);
    }
}
